//! The lane backend must be *bit-identical* to the scalar backend — and
//! therefore to the interpreted oracle the scalar backend is already
//! pinned against — per batch entry. Every `f64` is compared with `==`,
//! not a tolerance, across the robot zoo, random robots, and batch sizes
//! 1..=8 (covering whole lane groups, scalar remainders, and mixes).
//! These tests must pass with and without `--features simd`.

use rand::{Rng, SeedableRng};
use roboshape_arch::{AcceleratorDesign, AcceleratorKnobs, KernelKind};
use roboshape_robots::{random_robot, zoo, RandomRobotConfig, Zoo};
use roboshape_sim::{shared_program_for, BackendKind, SimScratch};

fn inputs(n: usize, rng: &mut rand::rngs::StdRng) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    (
        (0..n).map(|_| rng.gen_range(-1.2..1.2)).collect(),
        (0..n).map(|_| rng.gen_range(-0.8..0.8)).collect(),
        (0..n).map(|_| rng.gen_range(-1.5..1.5)).collect(),
    )
}

fn random_knobs(n: usize, rng: &mut rand::rngs::StdRng) -> AcceleratorKnobs {
    AcceleratorKnobs::new(
        rng.gen_range(1..n + 1),
        rng.gen_range(1..n + 1),
        rng.gen_range(1..n + 1),
    )
}

#[test]
fn gradient_lanes_bit_identical_to_scalar_across_zoo() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6011);
    for which in Zoo::ALL {
        let robot = zoo(which);
        let n = robot.num_links();
        let design = AcceleratorDesign::generate(robot.topology(), random_knobs(n, &mut rng));
        let scalar = shared_program_for(&design, BackendKind::Scalar);
        let lanes = shared_program_for(&design, BackendKind::Lanes);
        let mut scratch_s = SimScratch::new();
        let mut scratch_l = SimScratch::new();
        for batch in 1..=8usize {
            let steps: Vec<_> = (0..batch).map(|_| inputs(n, &mut rng)).collect();
            let (ref_out, ref_mk) = scalar
                .execute_batch(&robot, &mut scratch_s, &steps)
                .unwrap();
            let (lane_out, lane_mk) = lanes.execute_batch(&robot, &mut scratch_l, &steps).unwrap();
            // Derived PartialEq compares every f64 of tau, ∂q̈/∂q,
            // ∂q̈/∂q̇, and the stats block exactly, per entry.
            assert_eq!(ref_out, lane_out, "{which:?} batch {batch}");
            assert_eq!(ref_mk, lane_mk, "{which:?} batch {batch} makespan");
        }
    }
}

#[test]
fn gradient_lanes_bit_identical_on_random_robots() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6012);
    for trial in 0..4 {
        let robot = random_robot(
            &mut rng,
            RandomRobotConfig {
                links: 3 + trial * 3,
                branch_prob: 0.35,
                new_limb_prob: 0.25,
                allow_prismatic: true,
            },
        );
        let n = robot.num_links();
        let design = AcceleratorDesign::generate(robot.topology(), random_knobs(n, &mut rng));
        let scalar = shared_program_for(&design, BackendKind::Scalar);
        let lanes = shared_program_for(&design, BackendKind::Lanes);
        let mut scratch_s = SimScratch::new();
        let mut scratch_l = SimScratch::new();
        for batch in [1, 3, 4, 5, 7, 8] {
            let steps: Vec<_> = (0..batch).map(|_| inputs(n, &mut rng)).collect();
            let (ref_out, _) = scalar
                .execute_batch(&robot, &mut scratch_s, &steps)
                .unwrap();
            let (lane_out, _) = lanes.execute_batch(&robot, &mut scratch_l, &steps).unwrap();
            assert_eq!(ref_out, lane_out, "random robot {trial} batch {batch}");
        }
    }
}

#[test]
fn inverse_dynamics_lanes_bit_identical_across_zoo() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6013);
    for which in Zoo::ALL {
        let robot = zoo(which);
        let n = robot.num_links();
        let design = AcceleratorDesign::generate_for_kernel(
            robot.topology(),
            random_knobs(n, &mut rng),
            KernelKind::InverseDynamics,
        );
        let scalar = shared_program_for(&design, BackendKind::Scalar);
        let lanes = shared_program_for(&design, BackendKind::Lanes);
        let mut scratch_s = SimScratch::new();
        let mut scratch_l = SimScratch::new();
        for batch in 1..=8usize {
            let steps: Vec<_> = (0..batch).map(|_| inputs(n, &mut rng)).collect();
            let (ref_taus, ref_mk) = scalar
                .execute_inverse_dynamics_batch(&robot, &mut scratch_s, &steps)
                .unwrap();
            let (lane_taus, lane_mk) = lanes
                .execute_inverse_dynamics_batch(&robot, &mut scratch_l, &steps)
                .unwrap();
            assert_eq!(ref_taus, lane_taus, "{which:?} ID batch {batch}");
            assert_eq!(ref_mk, lane_mk, "{which:?} ID batch {batch} makespan");
        }
    }
}

#[test]
fn lane_groups_fall_back_to_scalar_errors_on_bad_input() {
    let robot = zoo(Zoo::Iiwa);
    let n = robot.num_links();
    let design = AcceleratorDesign::generate(robot.topology(), AcceleratorKnobs::symmetric(2, 3));
    let scalar = shared_program_for(&design, BackendKind::Scalar);
    let lanes = shared_program_for(&design, BackendKind::Lanes);
    let mut scratch = SimScratch::new();
    let good = (vec![0.1; n], vec![0.0; n], vec![0.2; n]);
    let mut bad = good.clone();
    bad.0[1] = f64::NAN;
    // A full lane group with one poisoned entry: the group is re-run
    // through the scalar path, so the error is exactly the scalar
    // loop's first error.
    let steps = vec![good.clone(), good.clone(), bad, good];
    let lane_err = lanes
        .execute_batch(&robot, &mut scratch, &steps)
        .unwrap_err();
    let ref_err = scalar
        .execute_batch(&robot, &mut scratch, &steps)
        .unwrap_err();
    assert_eq!(format!("{lane_err:?}"), format!("{ref_err:?}"));
}

#[test]
fn exec_backend_counters_attribute_lane_and_remainder_evals() {
    let m = roboshape_obs::metrics();
    let robot = zoo(Zoo::Hyq);
    let n = robot.num_links();
    // Knobs no other test uses, so this program is compiled fresh.
    let design = AcceleratorDesign::generate(robot.topology(), AcceleratorKnobs::new(3, 1, 5));
    let lanes = shared_program_for(&design, BackendKind::Lanes);
    let mut scratch = SimScratch::new();
    let steps: Vec<_> = (0..6)
        .map(|i| (vec![0.1 * (i + 1) as f64; n], vec![0.02; n], vec![0.3; n]))
        .collect();
    let lane_before = m.counter("sim.exec.lanes.evals").get();
    let scalar_before = m.counter("sim.exec.scalar.evals").get();
    lanes.execute_batch(&robot, &mut scratch, &steps).unwrap();
    assert_eq!(
        m.counter("sim.exec.lanes.evals").get(),
        lane_before + 4,
        "one whole lane group of the 6-entry batch"
    );
    assert_eq!(
        m.counter("sim.exec.scalar.evals").get(),
        scalar_before + 2,
        "two remainder entries fall back to the scalar path"
    );
}
