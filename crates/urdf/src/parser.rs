//! The URDF semantic layer: XML → [`RobotModel`].

use crate::model::{LinkModel, RobotModel};
use crate::xml::{self, XmlElement, XmlError};
use core::fmt;
use roboshape_linalg::{Mat3, Vec3};
use roboshape_spatial::{Joint, SpatialInertia, Xform};
use roboshape_topology::Topology;
use std::collections::HashMap;

/// Error produced while parsing a URDF document.
#[derive(Debug, Clone, PartialEq)]
pub enum UrdfError {
    /// The underlying XML was malformed.
    Xml(XmlError),
    /// The root element is not `<robot>`.
    NotARobot,
    /// A required attribute was missing.
    MissingAttr {
        /// The element the attribute belongs to.
        element: String,
        /// The missing attribute.
        attr: String,
    },
    /// A numeric attribute failed to parse.
    BadNumber {
        /// The element containing the attribute.
        element: String,
        /// The attribute name.
        attr: String,
        /// The raw text that failed to parse.
        text: String,
    },
    /// A joint declared an unsupported type.
    UnknownJointType(String),
    /// A joint referenced a link that was never declared.
    MissingLink(String),
    /// Two links share a name.
    DuplicateLink(String),
    /// A link is the child of more than one joint.
    MultipleParents(String),
    /// The link/joint graph has no unique root, or is cyclic/disconnected.
    BadTree(String),
}

impl fmt::Display for UrdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrdfError::Xml(e) => write!(f, "{e}"),
            UrdfError::NotARobot => write!(f, "root element is not <robot>"),
            UrdfError::MissingAttr { element, attr } => {
                write!(f, "element <{element}> is missing attribute `{attr}`")
            }
            UrdfError::BadNumber {
                element,
                attr,
                text,
            } => {
                write!(
                    f,
                    "element <{element}> attribute `{attr}` has invalid number `{text}`"
                )
            }
            UrdfError::UnknownJointType(t) => write!(f, "unsupported joint type `{t}`"),
            UrdfError::MissingLink(l) => write!(f, "joint references undeclared link `{l}`"),
            UrdfError::DuplicateLink(l) => write!(f, "duplicate link `{l}`"),
            UrdfError::MultipleParents(l) => write!(f, "link `{l}` has multiple parent joints"),
            UrdfError::BadTree(msg) => write!(f, "invalid kinematic tree: {msg}"),
        }
    }
}

impl std::error::Error for UrdfError {}

impl From<XmlError> for UrdfError {
    fn from(e: XmlError) -> Self {
        UrdfError::Xml(e)
    }
}

/// Parses a URDF document into a [`RobotModel`].
///
/// The URDF root link (the one that is never a joint child) becomes the
/// fixed base and is *not* a moving link. Fixed joints are fused: their
/// child links' inertias are folded into the nearest moving ancestor (or
/// discarded when that ancestor is the base), exactly as dynamics libraries
/// like Pinocchio do before running RNEA.
///
/// # Errors
///
/// Returns a [`UrdfError`] describing the first problem found: malformed
/// XML, missing attributes, bad numbers, unsupported joint types
/// (`planar`/`floating`), dangling link references, or a graph that is not
/// a tree.
pub fn parse_urdf(input: &str) -> Result<RobotModel, UrdfError> {
    let root = xml::parse(input)?;
    if root.name != "robot" {
        return Err(UrdfError::NotARobot);
    }
    let robot_name = root.attr("name").unwrap_or("robot").to_string();

    // Collect links.
    let mut link_inertia: HashMap<String, SpatialInertia> = HashMap::new();
    let mut link_order: Vec<String> = Vec::new();
    for link_el in root.children_named("link") {
        let name = require_attr(link_el, "name")?.to_string();
        if link_inertia.contains_key(&name) {
            return Err(UrdfError::DuplicateLink(name));
        }
        link_order.push(name.clone());
        link_inertia.insert(name, parse_inertial(link_el)?);
    }

    // Collect joints.
    struct RawJoint {
        name: String,
        kind: String,
        parent: String,
        child: String,
        origin: Xform,
        axis: Vec3,
    }
    let mut joints = Vec::new();
    for joint_el in root.children_named("joint") {
        let name = require_attr(joint_el, "name")?.to_string();
        let kind = require_attr(joint_el, "type")?.to_string();
        let parent = joint_el
            .child("parent")
            .ok_or_else(|| UrdfError::MissingAttr {
                element: "joint".into(),
                attr: "parent".into(),
            })
            .and_then(|p| require_attr(p, "link").map(str::to_string))?;
        let child = joint_el
            .child("child")
            .ok_or_else(|| UrdfError::MissingAttr {
                element: "joint".into(),
                attr: "child".into(),
            })
            .and_then(|c| require_attr(c, "link").map(str::to_string))?;
        for l in [&parent, &child] {
            if !link_inertia.contains_key(l) {
                return Err(UrdfError::MissingLink(l.clone()));
            }
        }
        let origin = parse_origin(joint_el)?;
        let axis = match joint_el.child("axis") {
            Some(a) => parse_vec3(a, "xyz")?,
            None => Vec3::unit_x(),
        };
        joints.push(RawJoint {
            name,
            kind,
            parent,
            child,
            origin,
            axis,
        });
    }

    // Resolve the tree: find the unique root.
    let mut child_of: HashMap<&str, usize> = HashMap::new();
    for (ji, j) in joints.iter().enumerate() {
        if child_of.insert(j.child.as_str(), ji).is_some() {
            return Err(UrdfError::MultipleParents(j.child.clone()));
        }
    }
    let roots: Vec<&String> = link_order
        .iter()
        .filter(|l| !child_of.contains_key(l.as_str()))
        .collect();
    let root_link = match roots.as_slice() {
        [r] => (*r).clone(),
        [] => return Err(UrdfError::BadTree("no root link (cycle)".into())),
        _ => {
            return Err(UrdfError::BadTree(format!(
                "multiple root links: {}",
                roots
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )))
        }
    };

    // Children adjacency by parent link name.
    let mut joints_of_parent: HashMap<&str, Vec<usize>> = HashMap::new();
    for (ji, j) in joints.iter().enumerate() {
        joints_of_parent
            .entry(j.parent.as_str())
            .or_default()
            .push(ji);
    }

    // Depth-first walk from the root in joint document order, fusing fixed
    // joints. Depth-first matters for determinism: link indices then match
    // the natural "one limb after another" order a human (or the
    // RobotBuilder) would write, and round-tripping through write_urdf is
    // index-stable.
    //
    // For every URDF link we track (moving_parent, offset): the index of the
    // nearest moving ancestor link (None = the fixed base) and the transform
    // from that ancestor's frame to this link's frame.
    struct Walk<'j> {
        joints: &'j [RawJoint],
        joints_of_parent: HashMap<&'j str, Vec<usize>>,
        parents: Vec<Option<usize>>,
        links: Vec<LinkModel>,
        out_joints: Vec<Joint>,
        joint_names: Vec<String>,
        link_inertia: HashMap<String, SpatialInertia>,
        visited: usize,
    }

    impl Walk<'_> {
        fn visit(
            &mut self,
            link_name: &str,
            moving_parent: Option<usize>,
            offset: Xform,
        ) -> Result<(), UrdfError> {
            let mut child_joints = self
                .joints_of_parent
                .get(link_name)
                .cloned()
                .unwrap_or_default();
            child_joints.sort_unstable();
            for ji in child_joints {
                let (kind, child, name, axis, origin) = {
                    let j = &self.joints[ji];
                    (
                        j.kind.clone(),
                        j.child.clone(),
                        j.name.clone(),
                        j.axis,
                        j.origin,
                    )
                };
                self.visited += 1;
                // Transform from the nearest moving ancestor's frame to the
                // child link frame at q = 0.
                let tree = origin.compose(&offset);
                match kind.as_str() {
                    "revolute" | "continuous" | "prismatic" => {
                        let joint = if kind == "prismatic" {
                            Joint::prismatic(axis)
                        } else {
                            Joint::revolute(axis)
                        }
                        .with_tree_xform(tree);
                        self.parents.push(moving_parent);
                        self.out_joints.push(joint);
                        self.joint_names.push(name);
                        self.links.push(LinkModel {
                            name: child.clone(),
                            inertia: self.link_inertia[&child],
                        });
                        let idx = self.links.len() - 1;
                        self.visit(&child, Some(idx), Xform::identity())?;
                    }
                    "fixed" => {
                        // Fold the child inertia into the moving ancestor.
                        if let Some(p) = moving_parent {
                            let folded = self.link_inertia[&child].transform(&tree.inverse());
                            self.links[p].inertia = self.links[p].inertia.add(&folded);
                        }
                        self.visit(&child, moving_parent, tree)?;
                    }
                    other => return Err(UrdfError::UnknownJointType(other.to_string())),
                }
            }
            Ok(())
        }
    }

    let mut walk = Walk {
        joints: &joints,
        joints_of_parent,
        parents: Vec::new(),
        links: Vec::new(),
        out_joints: Vec::new(),
        joint_names: Vec::new(),
        link_inertia,
        visited: 1,
    };
    walk.visit(&root_link, None, Xform::identity())?;
    let Walk {
        parents,
        links,
        out_joints,
        joint_names,
        visited,
        link_inertia,
        ..
    } = walk;
    let link_order_len = link_order.len();
    let _ = link_inertia;

    if visited != link_order_len {
        return Err(UrdfError::BadTree(format!(
            "{visited} of {link_order_len} links reachable from root"
        )));
    }
    if links.is_empty() {
        return Err(UrdfError::BadTree("robot has no moving links".into()));
    }

    let topology = Topology::new(parents).map_err(|e| UrdfError::BadTree(e.to_string()))?;
    Ok(RobotModel::from_parts(
        robot_name,
        topology,
        links,
        out_joints,
        joint_names,
    ))
}

fn require_attr<'a>(el: &'a XmlElement, attr: &str) -> Result<&'a str, UrdfError> {
    el.attr(attr).ok_or_else(|| UrdfError::MissingAttr {
        element: el.name.clone(),
        attr: attr.to_string(),
    })
}

fn parse_floats(el: &XmlElement, attr: &str, expected: usize) -> Result<Vec<f64>, UrdfError> {
    let text = require_attr(el, attr)?;
    let vals: Result<Vec<f64>, _> = text.split_whitespace().map(str::parse::<f64>).collect();
    match vals {
        Ok(v) if v.len() == expected => Ok(v),
        _ => Err(UrdfError::BadNumber {
            element: el.name.clone(),
            attr: attr.to_string(),
            text: text.to_string(),
        }),
    }
}

fn parse_vec3(el: &XmlElement, attr: &str) -> Result<Vec3, UrdfError> {
    let v = parse_floats(el, attr, 3)?;
    Ok(Vec3::new(v[0], v[1], v[2]))
}

fn parse_scalar(el: &XmlElement, attr: &str) -> Result<f64, UrdfError> {
    Ok(parse_floats(el, attr, 1)?[0])
}

/// Parses an `<origin xyz=".." rpy="..">` child into a frame transform.
fn parse_origin(el: &XmlElement) -> Result<Xform, UrdfError> {
    match el.child("origin") {
        None => Ok(Xform::identity()),
        Some(o) => {
            let xyz = if o.attr("xyz").is_some() {
                parse_vec3(o, "xyz")?
            } else {
                Vec3::ZERO
            };
            let rpy = if o.attr("rpy").is_some() {
                let v = parse_floats(o, "rpy", 3)?;
                [v[0], v[1], v[2]]
            } else {
                [0.0; 3]
            };
            Ok(Xform::from_origin(xyz, rpy))
        }
    }
}

/// Parses a link's `<inertial>` block into a spatial inertia in the link
/// frame. Links without an inertial block are massless.
fn parse_inertial(link_el: &XmlElement) -> Result<SpatialInertia, UrdfError> {
    let Some(inertial) = link_el.child("inertial") else {
        return Ok(SpatialInertia::zero());
    };
    let mass = match inertial.child("mass") {
        Some(m) => {
            let v = parse_scalar(m, "value")?;
            if v < 0.0 || !v.is_finite() {
                return Err(UrdfError::BadNumber {
                    element: "mass".into(),
                    attr: "value".into(),
                    text: format!("{v} (mass must be a non-negative finite number)"),
                });
            }
            v
        }
        None => 0.0,
    };
    let (com, rot) = match inertial.child("origin") {
        Some(o) => {
            let xyz = if o.attr("xyz").is_some() {
                parse_vec3(o, "xyz")?
            } else {
                Vec3::ZERO
            };
            let rpy = if o.attr("rpy").is_some() {
                let v = parse_floats(o, "rpy", 3)?;
                Mat3::from_rpy(v[0], v[1], v[2])
            } else {
                Mat3::identity()
            };
            (xyz, rpy)
        }
        None => (Vec3::ZERO, Mat3::identity()),
    };
    let i_com = match inertial.child("inertia") {
        Some(i) => {
            let ixx = parse_scalar(i, "ixx")?;
            let iyy = parse_scalar(i, "iyy")?;
            let izz = parse_scalar(i, "izz")?;
            let ixy = if i.attr("ixy").is_some() {
                parse_scalar(i, "ixy")?
            } else {
                0.0
            };
            let ixz = if i.attr("ixz").is_some() {
                parse_scalar(i, "ixz")?
            } else {
                0.0
            };
            let iyz = if i.attr("iyz").is_some() {
                parse_scalar(i, "iyz")?
            } else {
                0.0
            };
            let local = Mat3::from_rows([[ixx, ixy, ixz], [ixy, iyy, iyz], [ixz, iyz, izz]]);
            // Rotate the inertia from the inertial frame into the link frame.
            rot * local * rot.transpose()
        }
        None => Mat3::zero(),
    };
    Ok(SpatialInertia::from_mass_com_inertia(mass, com, i_com))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_LINK: &str = r#"
        <robot name="two_link">
          <link name="base"/>
          <link name="upper">
            <inertial>
              <origin xyz="0 0 -0.2"/>
              <mass value="1.5"/>
              <inertia ixx="0.01" iyy="0.01" izz="0.002"/>
            </inertial>
          </link>
          <link name="lower">
            <inertial>
              <origin xyz="0 0 -0.15"/>
              <mass value="0.8"/>
              <inertia ixx="0.005" iyy="0.005" izz="0.001"/>
            </inertial>
          </link>
          <joint name="shoulder" type="revolute">
            <parent link="base"/>
            <child link="upper"/>
            <axis xyz="0 1 0"/>
          </joint>
          <joint name="elbow" type="revolute">
            <parent link="upper"/>
            <child link="lower"/>
            <origin xyz="0 0 -0.4"/>
            <axis xyz="0 1 0"/>
          </joint>
        </robot>"#;

    #[test]
    fn parses_two_link_arm() {
        let m = parse_urdf(TWO_LINK).unwrap();
        assert_eq!(m.name(), "two_link");
        assert_eq!(m.num_links(), 2);
        assert_eq!(m.link(0).name, "upper");
        assert_eq!(m.link(1).name, "lower");
        assert_eq!(m.joint_name(0), "shoulder");
        assert_eq!(m.topology().parent(1), Some(0));
        assert!((m.joint(1).tree_xform().translation().z - (-0.4)).abs() < 1e-12);
        assert!((m.link(0).inertia.mass() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fixed_joints_are_fused() {
        let urdf = r#"
        <robot name="fused">
          <link name="base"/>
          <link name="arm">
            <inertial><mass value="1.0"/><inertia ixx="0.1" iyy="0.1" izz="0.1"/></inertial>
          </link>
          <link name="tool">
            <inertial><origin xyz="0 0 0"/><mass value="0.5"/><inertia ixx="0.01" iyy="0.01" izz="0.01"/></inertial>
          </link>
          <joint name="j1" type="revolute">
            <parent link="base"/><child link="arm"/><axis xyz="0 0 1"/>
          </joint>
          <joint name="mount" type="fixed">
            <parent link="arm"/><child link="tool"/>
            <origin xyz="0 0 -0.3"/>
          </joint>
        </robot>"#;
        let m = parse_urdf(urdf).unwrap();
        assert_eq!(m.num_links(), 1);
        // The tool's 0.5 kg folded into the arm.
        assert!((m.link(0).inertia.mass() - 1.5).abs() < 1e-12);
        // CoM pulled toward the tool (at z = -0.3 in arm coordinates).
        let com = m.link(0).inertia.com().unwrap();
        assert!(com.z < -1e-6, "com z = {}", com.z);
    }

    #[test]
    fn branching_robot_parses_with_base_roots() {
        let urdf = r#"
        <robot name="torso">
          <link name="chest"/>
          <link name="head"><inertial><mass value="1"/><inertia ixx="0.1" iyy="0.1" izz="0.1"/></inertial></link>
          <link name="arm"><inertial><mass value="2"/><inertia ixx="0.1" iyy="0.1" izz="0.1"/></inertial></link>
          <joint name="neck" type="revolute"><parent link="chest"/><child link="head"/><axis xyz="0 0 1"/></joint>
          <joint name="shoulder" type="revolute"><parent link="chest"/><child link="arm"/><axis xyz="0 1 0"/></joint>
        </robot>"#;
        let m = parse_urdf(urdf).unwrap();
        assert_eq!(m.num_links(), 2);
        assert_eq!(m.topology().roots().len(), 2);
    }

    #[test]
    fn continuous_joints_are_revolute() {
        let urdf = r#"
        <robot name="wheel">
          <link name="base"/>
          <link name="rim"><inertial><mass value="1"/><inertia ixx="0.1" iyy="0.1" izz="0.1"/></inertial></link>
          <joint name="spin" type="continuous"><parent link="base"/><child link="rim"/><axis xyz="0 0 1"/></joint>
        </robot>"#;
        let m = parse_urdf(urdf).unwrap();
        assert_eq!(m.num_links(), 1);
        assert_eq!(m.joint(0).dof(), 1);
    }

    #[test]
    fn unsupported_joint_type_rejected() {
        let urdf = r#"
        <robot name="f">
          <link name="a"/><link name="b"/>
          <joint name="j" type="floating"><parent link="a"/><child link="b"/></joint>
        </robot>"#;
        assert_eq!(
            parse_urdf(urdf),
            Err(UrdfError::UnknownJointType("floating".into()))
        );
    }

    #[test]
    fn missing_link_reference_rejected() {
        let urdf = r#"
        <robot name="f">
          <link name="a"/>
          <joint name="j" type="revolute"><parent link="a"/><child link="ghost"/></joint>
        </robot>"#;
        assert_eq!(
            parse_urdf(urdf),
            Err(UrdfError::MissingLink("ghost".into()))
        );
    }

    #[test]
    fn duplicate_link_rejected() {
        let urdf = r#"<robot name="f"><link name="a"/><link name="a"/></robot>"#;
        assert_eq!(parse_urdf(urdf), Err(UrdfError::DuplicateLink("a".into())));
    }

    #[test]
    fn multiple_roots_rejected() {
        let urdf = r#"
        <robot name="f">
          <link name="a"/><link name="b"/><link name="c"/>
          <joint name="j" type="revolute"><parent link="a"/><child link="c"/></joint>
        </robot>"#;
        match parse_urdf(urdf) {
            Err(UrdfError::BadTree(msg)) => assert!(msg.contains("multiple root")),
            other => panic!("expected BadTree, got {other:?}"),
        }
    }

    #[test]
    fn cyclic_graph_rejected() {
        let urdf = r#"
        <robot name="f">
          <link name="a"/><link name="b"/>
          <joint name="j1" type="revolute"><parent link="a"/><child link="b"/></joint>
          <joint name="j2" type="revolute"><parent link="b"/><child link="a"/></joint>
        </robot>"#;
        match parse_urdf(urdf) {
            Err(UrdfError::BadTree(_)) => {}
            other => panic!("expected BadTree, got {other:?}"),
        }
    }

    #[test]
    fn non_robot_root_rejected() {
        assert_eq!(parse_urdf("<model name=\"x\"/>"), Err(UrdfError::NotARobot));
    }

    #[test]
    fn bad_number_reported() {
        let urdf = r#"
        <robot name="f">
          <link name="a"/>
          <link name="b"><inertial><mass value="heavy"/></inertial></link>
          <joint name="j" type="revolute"><parent link="a"/><child link="b"/></joint>
        </robot>"#;
        match parse_urdf(urdf) {
            Err(UrdfError::BadNumber { attr, .. }) => assert_eq!(attr, "value"),
            other => panic!("expected BadNumber, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_descriptive() {
        let err = UrdfError::MissingAttr {
            element: "joint".into(),
            attr: "type".into(),
        };
        assert!(err.to_string().contains("joint"));
        assert!(UrdfError::NotARobot.to_string().contains("robot"));
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;

    #[test]
    fn negative_mass_is_an_error_not_a_panic() {
        let urdf = r#"
        <robot name="f">
          <link name="a"/>
          <link name="b"><inertial><mass value="-0.8"/></inertial></link>
          <joint name="j" type="revolute"><parent link="a"/><child link="b"/></joint>
        </robot>"#;
        match parse_urdf(urdf) {
            Err(UrdfError::BadNumber { element, .. }) => assert_eq!(element, "mass"),
            other => panic!("expected BadNumber, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_mass_is_rejected() {
        let urdf = r#"
        <robot name="f">
          <link name="a"/>
          <link name="b"><inertial><mass value="inf"/></inertial></link>
          <joint name="j" type="revolute"><parent link="a"/><child link="b"/></joint>
        </robot>"#;
        assert!(matches!(parse_urdf(urdf), Err(UrdfError::BadNumber { .. })));
    }
}
