//! FPGA resource models (LUTs, DSPs).
//!
//! Two models, for two different jobs (see DESIGN.md §4 for why the paper
//! itself must use two):
//!
//! * [`FullDesignModel`] — cost of a complete deployed design including
//!   the coprocessor shell, fitted *exactly* (3 equations, 3 unknowns per
//!   resource) to the paper's Table 2;
//! * [`DseModel`] — the PE-level cost used in the design-space studies of
//!   Figs. 12/13/15/16, whose constants are chosen to satisfy every shape
//!   constraint the paper reports (Fig. 12 LUT range, Fig. 16 platform
//!   feasibility including "no design point exists for HyQ+arm on the
//!   VC707").

use crate::AcceleratorKnobs;
use core::ops::Add;

/// An FPGA resource estimate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Resources {
    /// Look-up tables.
    pub luts: f64,
    /// DSP blocks.
    pub dsps: f64,
}

impl Resources {
    /// Creates a resource pair.
    pub fn new(luts: f64, dsps: f64) -> Resources {
        Resources { luts, dsps }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, o: Resources) -> Resources {
        Resources {
            luts: self.luts + o.luts,
            dsps: self.dsps + o.dsps,
        }
    }
}

/// Full-design resource model, exact on the paper's Table 2.
///
/// ```text
/// LUT = 42856.882·(PEf+PEb)/2 + 2704.741·blk² + 11717.362·N²/blk
/// DSP =   68.060·(PEf²+PEb²)/2 + 25.562·blk²  +  122.937·N
/// ```
///
/// Interpretation: per-PE datapath and control (DSP cost superlinear from
/// the input-marshalling crossbar), the `blk²` MAC array of the block
/// mat-mul stage, and per-design storage/marshalling that scales with the
/// number of block-schedule entries (`N²/blk`) and per-link state (`N`).
///
/// # Examples
///
/// ```
/// use roboshape_arch::{AcceleratorKnobs, FullDesignModel};
///
/// // Table 2, iiwa: PEs = 7, block = 7 → 514 552 LUTs, 5 448 DSPs.
/// let r = FullDesignModel.estimate(7, &AcceleratorKnobs::symmetric(7, 7));
/// assert!((r.luts - 514_552.0).abs() < 1.0);
/// assert!((r.dsps - 5_448.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FullDesignModel;

impl FullDesignModel {
    const LUT_PER_PE: f64 = 42_856.882_245_439_81;
    const LUT_PER_BLK2: f64 = 2_704.740_595_151_891_3;
    const LUT_PER_SCHED: f64 = 11_717.362_159_925_52;
    const DSP_PER_PE2: f64 = 68.059_687_295_642_35;
    const DSP_PER_BLK2: f64 = 25.561_500_505_320_73;
    const DSP_PER_LINK: f64 = 122.937_399_678_972_71;

    /// Estimates a full design's resources for an `n`-link robot.
    pub fn estimate(&self, n: usize, knobs: &AcceleratorKnobs) -> Resources {
        let nf = n as f64;
        let blk2 = (knobs.block_size * knobs.block_size) as f64;
        let pe_lin = (knobs.pe_fwd + knobs.pe_bwd) as f64 / 2.0;
        let pe_quad = (knobs.pe_fwd * knobs.pe_fwd + knobs.pe_bwd * knobs.pe_bwd) as f64 / 2.0;
        let sched = nf * nf / knobs.block_size as f64;
        Resources {
            luts: Self::LUT_PER_PE * pe_lin
                + Self::LUT_PER_BLK2 * blk2
                + Self::LUT_PER_SCHED * sched,
            dsps: Self::DSP_PER_PE2 * pe_quad + Self::DSP_PER_BLK2 * blk2 + Self::DSP_PER_LINK * nf,
        }
    }
}

/// PE-level resource model for design-space exploration.
///
/// ```text
/// LUT = 20000·(PEf+PEb) + 4000·blk² + 12000·N
/// DSP =   150·(PEf+PEb) +   30·blk² +    60·N
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DseModel;

impl DseModel {
    const LUT_PER_PE: f64 = 20_000.0;
    const LUT_PER_BLK2: f64 = 4_000.0;
    const LUT_PER_LINK: f64 = 12_000.0;
    const DSP_PER_PE: f64 = 150.0;
    const DSP_PER_BLK2: f64 = 30.0;
    const DSP_PER_LINK: f64 = 60.0;

    /// Estimates the PE-level resources of a design point.
    pub fn estimate(&self, n: usize, knobs: &AcceleratorKnobs) -> Resources {
        let nf = n as f64;
        let pe = (knobs.pe_fwd + knobs.pe_bwd) as f64;
        let blk2 = (knobs.block_size * knobs.block_size) as f64;
        Resources {
            luts: Self::LUT_PER_PE * pe + Self::LUT_PER_BLK2 * blk2 + Self::LUT_PER_LINK * nf,
            dsps: Self::DSP_PER_PE * pe + Self::DSP_PER_BLK2 * blk2 + Self::DSP_PER_LINK * nf,
        }
    }
}

/// Robomorphic Computing (RC) baseline resources for an `n`-link robot.
///
/// RC parallelizes naively: one PE pair per link and full-size matrix
/// hardware (`PEs = blk = N`), without RoboShape's topology-based reuse.
/// Its cost is the full-design model at that maximal point, scaled by the
/// published overhead deltas of Sec. 5.1 (RoboShape's generalization costs
/// +2.2% DSPs and −5.5% LUTs *relative to RC* on iiwa, so RC = RoboShape ×
/// 1.1256 LUTs × 0.9730 DSPs).
///
/// # Examples
///
/// ```
/// use roboshape_arch::{rc_resources, Platform};
///
/// // RC on iiwa: 49.0% LUTs, 77.5% DSPs of the XCVU9P (paper Sec. 5.1).
/// let rc = rc_resources(7);
/// let vcu = Platform::vcu118();
/// assert!((rc.luts / vcu.luts - 0.49).abs() < 0.005);
/// assert!((rc.dsps / vcu.dsps - 0.775).abs() < 0.005);
/// // RC cannot fit the 12-link HyQ: DSPs alone exceed the chip.
/// assert!(rc_resources(12).dsps > vcu.dsps);
/// ```
pub fn rc_resources(n: usize) -> Resources {
    let maximal = FullDesignModel.estimate(n, &AcceleratorKnobs::symmetric(n, n));
    Resources {
        luts: maximal.luts * 1.125_6,
        dsps: maximal.dsps * 0.973_0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_model_reproduces_table2_exactly() {
        // (robot, N, PEs, blk, LUTs, DSPs) from the paper's Table 2.
        let rows = [
            ("iiwa", 7, 7, 7, 514_552.0, 5_448.0),
            ("HyQ", 12, 3, 6, 507_158.0, 3_008.0),
            ("Baxter", 15, 4, 4, 873_805.0, 3_342.0),
        ];
        for (name, n, pes, blk, luts, dsps) in rows {
            let r = FullDesignModel.estimate(n, &AcceleratorKnobs::symmetric(pes, blk));
            assert!(
                (r.luts - luts).abs() < 1.0,
                "{name}: LUTs {} vs {luts}",
                r.luts
            );
            assert!(
                (r.dsps - dsps).abs() < 0.5,
                "{name}: DSPs {} vs {dsps}",
                r.dsps
            );
        }
    }

    #[test]
    fn table2_utilization_percentages() {
        // Cross-check the percentage view the paper prints: 43.5%/42.9%/73.9%
        // LUTs and 79.6%/44.0%/48.9% DSPs of the XCVU9P.
        let vcu = crate::Platform::vcu118();
        let configs = [
            (7, 7, 7, 0.435, 0.796),
            (12, 3, 6, 0.429, 0.440),
            (15, 4, 4, 0.739, 0.489),
        ];
        for (n, pes, blk, lut_pct, dsp_pct) in configs {
            let r = FullDesignModel.estimate(n, &AcceleratorKnobs::symmetric(pes, blk));
            assert!((r.luts / vcu.luts - lut_pct).abs() < 0.001);
            assert!((r.dsps / vcu.dsps - dsp_pct).abs() < 0.001);
        }
    }

    #[test]
    fn models_grow_monotonically_in_pe_knobs() {
        for model_is_full in [true, false] {
            let base = AcceleratorKnobs::new(2, 3, 2);
            let est = |k: &AcceleratorKnobs| {
                if model_is_full {
                    FullDesignModel.estimate(10, k)
                } else {
                    DseModel.estimate(10, k)
                }
            };
            let r0 = est(&base);
            for grown in [
                AcceleratorKnobs::new(3, 3, 2),
                AcceleratorKnobs::new(2, 4, 2),
            ] {
                let r = est(&grown);
                assert!(r.luts > r0.luts);
                assert!(r.dsps > r0.dsps);
            }
        }
    }

    #[test]
    fn block_size_trades_mac_array_for_schedule_storage() {
        // Larger blocks grow the MAC array (DSPs strictly up) but shrink
        // the block-schedule storage (N²/blk), so full-design LUTs can go
        // *down* — this non-monotonicity is the paper's block-size tradeoff.
        let small = FullDesignModel.estimate(12, &AcceleratorKnobs::new(2, 2, 2));
        let large = FullDesignModel.estimate(12, &AcceleratorKnobs::new(2, 2, 6));
        assert!(large.dsps > small.dsps);
        assert!(large.luts < small.luts, "{} vs {}", large.luts, small.luts);
        // The DSE model keeps both monotone in block size.
        let d_small = DseModel.estimate(12, &AcceleratorKnobs::new(2, 2, 2));
        let d_large = DseModel.estimate(12, &AcceleratorKnobs::new(2, 2, 6));
        assert!(d_large.luts > d_small.luts && d_large.dsps > d_small.dsps);
    }

    #[test]
    fn rc_cannot_scale_past_iiwa() {
        let vcu = crate::Platform::vcu118();
        assert!(rc_resources(7).dsps < vcu.dsps);
        for n in [12, 15, 19] {
            assert!(
                rc_resources(n).dsps > vcu.dsps,
                "RC for N={n} should not fit the XCVU9P"
            );
        }
    }

    #[test]
    fn dse_hyq_arm_is_infeasible_on_vc707() {
        // Paper Fig. 16: no design point within the VC707 constraints
        // exists for HyQ+arm (N = 19); the other robots have points.
        let vc707 = crate::Platform::vc707();
        let min_for = |n: usize| {
            let mut best = f64::INFINITY;
            for blk in 1..=n {
                let r = DseModel.estimate(n, &AcceleratorKnobs::new(1, 1, blk));
                best = best.min(r.luts / vc707.luts);
            }
            best
        };
        let threshold = crate::UTILIZATION_THRESHOLD;
        assert!(
            min_for(19) > threshold,
            "HyQ+arm min LUT share {}",
            min_for(19)
        );
        for n in [7, 10, 12, 15] {
            assert!(min_for(n) <= threshold, "N={n} should fit: {}", min_for(n));
        }
    }

    #[test]
    fn dse_ranges_match_fig12() {
        // Fig. 12: maximum LUTs per robot range from ~507k (smallest) to
        // ~2600k (largest) across the six robots.
        let max_for = |n: usize| {
            DseModel
                .estimate(n, &AcceleratorKnobs::symmetric(n, n))
                .luts
        };
        let iiwa_max = max_for(7);
        let hyqarm_max = max_for(19);
        assert!(
            (450_000.0..650_000.0).contains(&iiwa_max),
            "iiwa max {iiwa_max}"
        );
        assert!(
            (2_000_000.0..3_000_000.0).contains(&hyqarm_max),
            "HyQ+arm max {hyqarm_max}"
        );
    }

    #[test]
    fn resources_add() {
        let r = Resources::new(10.0, 2.0) + Resources::new(5.0, 1.0);
        assert_eq!(r.luts, 15.0);
        assert_eq!(r.dsps, 3.0);
    }
}
