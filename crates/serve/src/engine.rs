//! The in-process serving engine: per-robot design pools, worker
//! threads, deadline-aware batching, backpressure, graceful drain.

use crate::queue::{EdfQueue, Pending};
use crate::{
    BAD_REQUEST_METRIC, BATCHES_METRIC, BATCH_SIZE_BOUNDS, BATCH_SIZE_METRIC, DEADLINE_METRIC,
    LATENCY_BOUNDS_US, LATENCY_METRIC, OBS_CATEGORY, QUEUE_DEPTH_METRIC, REQUESTS_METRIC,
    RESPONSES_METRIC, SHED_METRIC,
};
use roboshape_arch::{AcceleratorDesign, AcceleratorKnobs, KernelKind, MatmulUnits};
use roboshape_blocksparse::MatmulLatencyModel;
use roboshape_obs as obs;
use roboshape_pipeline::{PatternKind, Pipeline};
use roboshape_sim::{
    try_simulate, try_simulate_batch, try_simulate_inverse_dynamics, try_simulate_kinematics,
    SimError, Simulation,
};
use roboshape_topology::Topology;
use roboshape_urdf::RobotModel;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing and scheduling knobs for an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Bounded per-robot queue depth; a full queue sheds new requests.
    pub queue_capacity: usize,
    /// Maximum ∇FD requests coalesced into one batched execution.
    pub max_batch: usize,
    /// Simulated accelerator instances (worker threads) per robot.
    pub workers_per_robot: usize,
    /// Start with workers paused (requests queue but do not execute
    /// until [`Engine::resume`]) — a test/bench hook that makes batch
    /// coalescing deterministic.
    pub start_paused: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            queue_capacity: 64,
            max_batch: 8,
            workers_per_robot: 2,
            start_paused: false,
        }
    }
}

/// Why a request did not produce a payload. Overload and lateness are
/// first-class, typed outcomes — the engine never panics at a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Shed before admission: queue at capacity, or engine shutting down.
    Rejected {
        /// Human-readable shed reason (e.g. `"queue full"`).
        reason: String,
    },
    /// The deadline passed while the request was still queued.
    DeadlineExceeded,
    /// No robot registered under this name.
    UnknownRobot(String),
    /// The request failed validation or simulation (dimension mismatch,
    /// non-finite input, non-positive-definite mass matrix, …).
    BadRequest(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected { reason } => write!(f, "rejected: {reason}"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::UnknownRobot(name) => write!(f, "unknown robot: {name}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> ServeError {
        ServeError::BadRequest(e.to_string())
    }
}

/// One kernel evaluation request against a registered robot.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Name the robot was registered under.
    pub robot: String,
    /// Which generated kernel to run.
    pub kind: KernelKind,
    /// Joint positions (all kernels).
    pub q: Vec<f64>,
    /// Joint velocities (∇FD and inverse dynamics; empty for FK).
    pub qd: Vec<f64>,
    /// Third input: torques `τ` for ∇FD, accelerations `q̈` for inverse
    /// dynamics; empty for FK.
    pub tau: Vec<f64>,
    /// Relative deadline from submission; `None` = best effort.
    pub deadline: Option<Duration>,
}

impl ServeRequest {
    /// A ∇FD (dynamics-gradient) request.
    pub fn gradient(
        robot: impl Into<String>,
        q: Vec<f64>,
        qd: Vec<f64>,
        tau: Vec<f64>,
    ) -> ServeRequest {
        ServeRequest {
            robot: robot.into(),
            kind: KernelKind::DynamicsGradient,
            q,
            qd,
            tau,
            deadline: None,
        }
    }

    /// An inverse-dynamics request (`tau` carries `q̈`).
    pub fn inverse_dynamics(
        robot: impl Into<String>,
        q: Vec<f64>,
        qd: Vec<f64>,
        qdd: Vec<f64>,
    ) -> ServeRequest {
        ServeRequest {
            robot: robot.into(),
            kind: KernelKind::InverseDynamics,
            q,
            qd,
            tau: qdd,
            deadline: None,
        }
    }

    /// A forward-kinematics request.
    pub fn kinematics(robot: impl Into<String>, q: Vec<f64>) -> ServeRequest {
        ServeRequest {
            robot: robot.into(),
            kind: KernelKind::ForwardKinematics,
            q,
            qd: Vec::new(),
            tau: Vec::new(),
            deadline: None,
        }
    }

    /// Sets a relative deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> ServeRequest {
        self.deadline = Some(deadline);
        self
    }
}

/// A successful kernel evaluation, as returned to clients.
#[derive(Debug, Clone, PartialEq)]
pub enum ServePayload {
    /// ∇FD outputs: torques plus both gradients (row-major `n × n`).
    Gradient {
        /// RNEA-stage joint torques.
        tau: Vec<f64>,
        /// `∂q̈/∂q`, row-major.
        dqdd_dq: Vec<f64>,
        /// `∂q̈/∂q̇`, row-major.
        dqdd_dqd: Vec<f64>,
        /// Simulated accelerator cycles for this evaluation.
        cycles: u64,
    },
    /// Inverse-dynamics output: `τ = RNEA(q, q̇, q̈)`.
    InverseDynamics {
        /// Joint torques.
        tau: Vec<f64>,
        /// Simulated accelerator cycles.
        cycles: u64,
    },
    /// Forward-kinematics output: base→link poses, 12 values per link
    /// (row-major 3×3 rotation, then translation x/y/z).
    Kinematics {
        /// Flattened poses, `12 × n` values.
        poses: Vec<f64>,
        /// Simulated accelerator cycles.
        cycles: u64,
    },
}

impl ServePayload {
    /// Simulated accelerator cycles, whatever the kernel.
    pub fn cycles(&self) -> u64 {
        match self {
            ServePayload::Gradient { cycles, .. }
            | ServePayload::InverseDynamics { cycles, .. }
            | ServePayload::Kinematics { cycles, .. } => *cycles,
        }
    }
}

/// The outcome a [`Ticket`] resolves to.
pub type ServeResult = Result<ServePayload, ServeError>;

/// A handle to an in-flight request; resolves exactly once.
#[derive(Clone)]
pub struct Ticket {
    cell: Arc<(Mutex<Option<ServeResult>>, Condvar)>,
}

impl Ticket {
    pub(crate) fn new() -> Ticket {
        Ticket {
            cell: Arc::new((Mutex::new(None), Condvar::new())),
        }
    }

    pub(crate) fn fulfill(&self, result: ServeResult) {
        let (lock, cv) = &*self.cell;
        let mut slot = lock.lock().expect("ticket poisoned");
        debug_assert!(slot.is_none(), "ticket fulfilled twice");
        *slot = Some(result);
        cv.notify_all();
    }

    /// Blocks until the engine resolves this request.
    pub fn wait(&self) -> ServeResult {
        let (lock, cv) = &*self.cell;
        let mut slot = lock.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = cv.wait(slot).expect("ticket poisoned");
        }
    }

    /// Non-blocking probe; `None` while still in flight.
    pub fn try_take(&self) -> Option<ServeResult> {
        self.cell.0.lock().expect("ticket poisoned").take()
    }
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Ticket(..)")
    }
}

/// Point-in-time snapshot of the engine's own counters (the same events
/// also feed the global `serve.*` metrics, which aggregate across
/// engines; these are per-engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests accepted into a queue.
    pub submitted: u64,
    /// Requests completed with a payload.
    pub completed: u64,
    /// Requests shed at admission (queue full / shutting down).
    pub shed: u64,
    /// Requests expired while queued.
    pub deadline_exceeded: u64,
    /// Requests failing validation or simulation.
    pub bad_requests: u64,
    /// Batched executions dispatched.
    pub batches: u64,
    /// Largest number of requests coalesced into one execution.
    pub largest_batch: u64,
}

impl EngineStats {
    /// Total tickets resolved, successfully or not. Excludes `shed`,
    /// which never received a ticket.
    pub fn responses(&self) -> u64 {
        self.completed + self.deadline_exceeded + self.bad_requests
    }
}

#[derive(Default)]
struct StatCells {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    bad_requests: AtomicU64,
    batches: AtomicU64,
    largest_batch: AtomicU64,
}

/// One registered robot: its model, the three kernel designs, and its
/// bounded EDF queue (the pool of workers drains it).
struct RobotSlot {
    model: RobotModel,
    designs: HashMap<KernelKind, Arc<AcceleratorDesign>>,
    queue: EdfQueue,
}

struct EngineInner {
    cfg: EngineConfig,
    pipeline: Pipeline,
    robots: RwLock<HashMap<String, Arc<RobotSlot>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    paused: AtomicBool,
    closed: AtomicBool,
    depth: AtomicU64,
    seq: AtomicU64,
    stats: StatCells,
}

/// The accelerator-as-a-service runtime. Cheap to clone (a handle).
///
/// See the crate docs for the execution model; in short: registered
/// robots get kernel designs built through a warmed
/// [`roboshape_pipeline::Pipeline`] plus a pool of worker threads, and
/// [`Engine::submit`] enqueues work under EDF with explicit shedding.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// An engine sharing the process-wide warmed artifact store (every
    /// engine in the process reuses cached graphs/schedules/plans).
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine::with_pipeline(cfg, Pipeline::with_store(Pipeline::global().store_handle()))
    }

    /// An engine over a caller-supplied pipeline (isolated stores in
    /// tests, or a pre-warmed one in benchmarks).
    pub fn with_pipeline(cfg: EngineConfig, pipeline: Pipeline) -> Engine {
        Engine {
            inner: Arc::new(EngineInner {
                paused: AtomicBool::new(cfg.start_paused),
                cfg,
                pipeline,
                robots: RwLock::new(HashMap::new()),
                workers: Mutex::new(Vec::new()),
                closed: AtomicBool::new(false),
                depth: AtomicU64::new(0),
                seq: AtomicU64::new(0),
                stats: StatCells::default(),
            }),
        }
    }

    /// Registers `model` under `name`: builds its ∇FD, inverse-dynamics
    /// and forward-kinematics designs through the pipeline (topology-
    /// derived default knobs) and spawns its worker pool. Re-registering
    /// an existing name is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Engine::shutdown`].
    pub fn register(&self, name: impl Into<String>, model: RobotModel) {
        let name = name.into();
        let inner = &self.inner;
        assert!(
            !inner.closed.load(Ordering::SeqCst),
            "register after shutdown"
        );
        let _span = obs::span(OBS_CATEGORY, "register");
        if inner
            .robots
            .read()
            .expect("robots poisoned")
            .contains_key(&name)
        {
            return;
        }
        let topo = model.topology().clone();
        let knobs = default_knobs(&inner.pipeline, &topo);
        let designs = [
            KernelKind::DynamicsGradient,
            KernelKind::InverseDynamics,
            KernelKind::ForwardKinematics,
        ]
        .into_iter()
        .map(|kernel| {
            (
                kernel,
                Arc::new(inner.pipeline.design(&topo, knobs, kernel)),
            )
        })
        .collect();
        let slot = Arc::new(RobotSlot {
            model,
            designs,
            queue: EdfQueue::new(inner.cfg.queue_capacity),
        });
        let mut robots = inner.robots.write().expect("robots poisoned");
        if robots.contains_key(&name) {
            return; // lost a register race; the first registration wins
        }
        robots.insert(name, Arc::clone(&slot));
        drop(robots);
        let mut workers = inner.workers.lock().expect("workers poisoned");
        for _ in 0..inner.cfg.workers_per_robot.max(1) {
            let inner = Arc::clone(&self.inner);
            let slot = Arc::clone(&slot);
            workers.push(std::thread::spawn(move || worker_loop(inner, slot)));
        }
    }

    /// Names of all registered robots, sorted.
    pub fn robots(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .robots
            .read()
            .expect("robots poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// The design a robot's `kind` requests execute on — lets tests and
    /// benchmarks re-run the exact same accelerator directly and compare
    /// served responses bit-for-bit.
    pub fn design_for(&self, robot: &str, kind: KernelKind) -> Option<Arc<AcceleratorDesign>> {
        self.inner
            .robots
            .read()
            .expect("robots poisoned")
            .get(robot)
            .and_then(|slot| slot.designs.get(&kind).cloned())
    }

    /// Number of links of a registered robot.
    pub fn num_links(&self, robot: &str) -> Option<usize> {
        self.inner
            .robots
            .read()
            .expect("robots poisoned")
            .get(robot)
            .map(|slot| slot.model.num_links())
    }

    /// Submits a request. `Ok` means *accepted*: the request is queued
    /// and the [`Ticket`] will resolve exactly once (possibly to an
    /// error). `Err` means the request never entered a queue.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownRobot`] for an unregistered name,
    /// [`ServeError::BadRequest`] for malformed inputs (checked here, at
    /// admission), [`ServeError::Rejected`] when the robot's queue is
    /// full or the engine is shutting down.
    pub fn submit(&self, req: ServeRequest) -> Result<Ticket, ServeError> {
        let inner = &self.inner;
        let _span = obs::span(OBS_CATEGORY, "submit");
        if inner.closed.load(Ordering::SeqCst) {
            inner.stats.shed.fetch_add(1, Ordering::Relaxed);
            obs::metrics().counter(SHED_METRIC).add(1);
            return Err(ServeError::Rejected {
                reason: "shutting down".into(),
            });
        }
        let slot = inner
            .robots
            .read()
            .expect("robots poisoned")
            .get(&req.robot)
            .cloned()
            .ok_or_else(|| ServeError::UnknownRobot(req.robot.clone()))?;
        if let Err(e) = validate(&slot.model, &req) {
            inner.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            obs::metrics().counter(BAD_REQUEST_METRIC).add(1);
            return Err(e);
        }
        let now = Instant::now();
        let pending = Pending {
            deadline: req.deadline.map(|d| now + d),
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            req,
            enqueued: now,
            ticket: Ticket::new(),
        };
        let ticket = pending.ticket.clone();
        // Count the request *before* it becomes visible to workers — a
        // worker may pop and decrement the instant the push lands.
        let depth = inner.depth.fetch_add(1, Ordering::Relaxed) + 1;
        match slot.queue.try_push(pending) {
            Ok(()) => {
                inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
                obs::metrics().counter(REQUESTS_METRIC).add(1);
                obs::metrics().gauge(QUEUE_DEPTH_METRIC).set(depth as f64);
                Ok(ticket)
            }
            Err(_shed) => {
                inner.depth.fetch_sub(1, Ordering::Relaxed);
                inner.stats.shed.fetch_add(1, Ordering::Relaxed);
                obs::metrics().counter(SHED_METRIC).add(1);
                Err(ServeError::Rejected {
                    reason: "queue full".into(),
                })
            }
        }
    }

    /// Pauses workers: accepted requests queue but do not execute.
    pub fn pause(&self) {
        self.inner.paused.store(true, Ordering::SeqCst);
    }

    /// Resumes paused workers.
    pub fn resume(&self) {
        self.inner.paused.store(false, Ordering::SeqCst);
        for slot in self.inner.robots.read().expect("robots poisoned").values() {
            slot.queue.notify_all();
        }
    }

    /// Current per-engine counters.
    pub fn stats(&self) -> EngineStats {
        let s = &self.inner.stats;
        EngineStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            deadline_exceeded: s.deadline_exceeded.load(Ordering::Relaxed),
            bad_requests: s.bad_requests.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            largest_batch: s.largest_batch.load(Ordering::Relaxed),
        }
    }

    /// Graceful drain: stops admitting, wakes paused workers, executes
    /// everything already queued (every accepted ticket resolves), then
    /// joins the worker pool. Idempotent; later calls are no-ops.
    pub fn shutdown(&self) {
        let inner = &self.inner;
        if inner.closed.swap(true, Ordering::SeqCst) {
            // Someone else is (or finished) shutting down; still join in
            // case their drain is mid-flight.
        }
        let _span = obs::span(OBS_CATEGORY, "shutdown");
        for slot in inner.robots.read().expect("robots poisoned").values() {
            slot.queue.notify_all();
        }
        let workers: Vec<JoinHandle<()>> = inner
            .workers
            .lock()
            .expect("workers poisoned")
            .drain(..)
            .collect();
        for handle in workers {
            let _ = handle.join();
        }
        obs::metrics().gauge(QUEUE_DEPTH_METRIC).set(0.0);
    }
}

/// Admission-time validation, so malformed requests fail fast with a
/// typed error instead of occupying queue space.
fn validate(model: &RobotModel, req: &ServeRequest) -> Result<(), ServeError> {
    let n = model.num_links();
    let check = |what: &str, values: &[f64]| -> Result<(), ServeError> {
        if values.len() != n {
            return Err(ServeError::BadRequest(format!(
                "{what} dimension mismatch: expected {n}, got {}",
                values.len()
            )));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(ServeError::BadRequest(format!(
                "{what} contains a non-finite value"
            )));
        }
        Ok(())
    };
    check("q", &req.q)?;
    match req.kind {
        KernelKind::ForwardKinematics => Ok(()),
        KernelKind::DynamicsGradient | KernelKind::InverseDynamics => {
            check("qd", &req.qd)?;
            check("tau", &req.tau)
        }
    }
}

/// Topology-derived default knobs, mirroring the framework's Hybrid
/// heuristic: forward PEs track leaf depth, backward PEs track the
/// largest subtree, and the block size minimises the blocked-mat-mul
/// latency under the default model (computed through the pipeline, so
/// the plans land in the shared store pre-warmed for simulation).
fn default_knobs(pipeline: &Pipeline, topo: &Topology) -> AcceleratorKnobs {
    let m = topo.metrics();
    let n = m.total_links.max(1);
    let model = MatmulLatencyModel::default();
    let units = MatmulUnits::PerLink.resolve(n);
    let block = (1..=n)
        .min_by_key(|&b| {
            pipeline
                .block_plan(topo, PatternKind::InverseMass, 2 * n, b, units)
                .latency(&model)
        })
        .unwrap_or(n);
    AcceleratorKnobs::new(m.max_leaf_depth.max(1), m.max_descendants.max(1), block)
}

/// One simulated accelerator instance: drains the robot's EDF queue
/// until shutdown, coalescing compatible ∇FD requests.
fn worker_loop(inner: Arc<EngineInner>, slot: Arc<RobotSlot>) {
    while let Some(batch) = slot
        .queue
        .next_batch(inner.cfg.max_batch, &inner.paused, &inner.closed)
    {
        let depth = inner
            .depth
            .fetch_sub(batch.len() as u64, Ordering::Relaxed)
            .saturating_sub(batch.len() as u64);
        obs::metrics().gauge(QUEUE_DEPTH_METRIC).set(depth as f64);
        execute(&inner, &slot, batch);
    }
}

fn execute(inner: &EngineInner, slot: &RobotSlot, batch: Vec<Pending>) {
    let _span = obs::span(OBS_CATEGORY, "execute");
    let now = Instant::now();
    // Late requests are resolved without spending accelerator cycles.
    let (live, expired): (Vec<Pending>, Vec<Pending>) = batch
        .into_iter()
        .partition(|p| p.deadline.is_none_or(|d| d >= now));
    for p in expired {
        inner
            .stats
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
        obs::metrics().counter(DEADLINE_METRIC).add(1);
        respond(&p, Err(ServeError::DeadlineExceeded));
    }
    if live.is_empty() {
        return;
    }

    inner.stats.batches.fetch_add(1, Ordering::Relaxed);
    inner
        .stats
        .largest_batch
        .fetch_max(live.len() as u64, Ordering::Relaxed);
    obs::metrics().counter(BATCHES_METRIC).add(1);
    obs::metrics()
        .histogram(BATCH_SIZE_METRIC, &BATCH_SIZE_BOUNDS)
        .record(live.len() as u64);

    let kind = live[0].req.kind;
    let design = &slot.designs[&kind];
    match kind {
        KernelKind::DynamicsGradient if live.len() > 1 => {
            let inputs: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = live
                .iter()
                .map(|p| (p.req.q.clone(), p.req.qd.clone(), p.req.tau.clone()))
                .collect();
            match try_simulate_batch(&slot.model, design, &inputs) {
                Ok((sims, _makespan)) => {
                    for (p, sim) in live.iter().zip(sims) {
                        finish_ok(inner, p, gradient_payload(sim));
                    }
                }
                // One bad input fails a whole batched call; fall back to
                // singles so its neighbours still succeed.
                Err(_) => {
                    for p in &live {
                        let result =
                            try_simulate(&slot.model, design, &p.req.q, &p.req.qd, &p.req.tau);
                        finish(inner, p, result.map(gradient_payload));
                    }
                }
            }
        }
        KernelKind::DynamicsGradient => {
            let p = &live[0];
            let result = try_simulate(&slot.model, design, &p.req.q, &p.req.qd, &p.req.tau);
            finish(inner, p, result.map(gradient_payload));
        }
        KernelKind::InverseDynamics => {
            for p in &live {
                let result = try_simulate_inverse_dynamics(
                    &slot.model,
                    design,
                    &p.req.q,
                    &p.req.qd,
                    &p.req.tau,
                )
                .map(|(tau, stats)| ServePayload::InverseDynamics {
                    tau,
                    cycles: stats.cycles,
                });
                finish(inner, p, result);
            }
        }
        KernelKind::ForwardKinematics => {
            for p in &live {
                let result =
                    try_simulate_kinematics(&slot.model, design, &p.req.q).map(|(poses, stats)| {
                        let mut flat = Vec::with_capacity(poses.len() * 12);
                        for x in &poses {
                            let rot = x.rotation();
                            for r in 0..3 {
                                for c in 0..3 {
                                    flat.push(rot.get(r, c));
                                }
                            }
                            let t = x.translation();
                            flat.extend_from_slice(&[t.x, t.y, t.z]);
                        }
                        ServePayload::Kinematics {
                            poses: flat,
                            cycles: stats.cycles,
                        }
                    });
                finish(inner, p, result);
            }
        }
    }
}

fn gradient_payload(sim: Simulation) -> ServePayload {
    let n = sim.dqdd_dq.rows();
    let flatten = |m: &roboshape_linalg::DMat| -> Vec<f64> {
        let mut out = Vec::with_capacity(n * n);
        for r in 0..n {
            for c in 0..n {
                out.push(m[(r, c)]);
            }
        }
        out
    };
    ServePayload::Gradient {
        tau: sim.tau.clone(),
        dqdd_dq: flatten(&sim.dqdd_dq),
        dqdd_dqd: flatten(&sim.dqdd_dqd),
        cycles: sim.stats.cycles,
    }
}

fn finish_ok(inner: &EngineInner, p: &Pending, payload: ServePayload) {
    inner.stats.completed.fetch_add(1, Ordering::Relaxed);
    respond(p, Ok(payload));
}

fn finish(inner: &EngineInner, p: &Pending, result: Result<ServePayload, SimError>) {
    match result {
        Ok(payload) => finish_ok(inner, p, payload),
        Err(e) => {
            inner.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            obs::metrics().counter(BAD_REQUEST_METRIC).add(1);
            respond(p, Err(e.into()));
        }
    }
}

fn respond(p: &Pending, result: ServeResult) {
    obs::metrics().counter(RESPONSES_METRIC).add(1);
    let latency_us = p.enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64;
    obs::metrics()
        .histogram(LATENCY_METRIC, &LATENCY_BOUNDS_US)
        .record(latency_us);
    p.ticket.fulfill(result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboshape_robots::{zoo, Zoo};

    fn engine_with(robot: Zoo, cfg: EngineConfig) -> Engine {
        let engine = Engine::with_pipeline(cfg, Pipeline::new());
        engine.register(robot.name(), zoo(robot));
        engine
    }

    #[test]
    fn gradient_round_trip_matches_direct_simulation() {
        let engine = engine_with(Zoo::Iiwa, EngineConfig::default());
        let n = engine.num_links("iiwa").unwrap();
        let (q, qd, tau) = (vec![0.3; n], vec![0.1; n], vec![0.5; n]);
        let ticket = engine
            .submit(ServeRequest::gradient(
                "iiwa",
                q.clone(),
                qd.clone(),
                tau.clone(),
            ))
            .unwrap();
        let payload = ticket.wait().unwrap();

        let robot = zoo(Zoo::Iiwa);
        let pipeline = Pipeline::new();
        let knobs = default_knobs(&pipeline, robot.topology());
        let design = pipeline.design(robot.topology(), knobs, KernelKind::DynamicsGradient);
        let reference = try_simulate(&robot, &design, &q, &qd, &tau).unwrap();
        match payload {
            ServePayload::Gradient {
                tau: t,
                dqdd_dq,
                cycles,
                ..
            } => {
                assert_eq!(t, reference.tau);
                assert_eq!(dqdd_dq[0], reference.dqdd_dq[(0, 0)]);
                assert_eq!(cycles, reference.stats.cycles);
            }
            other => panic!("wrong payload: {other:?}"),
        }
        engine.shutdown();
        assert_eq!(engine.stats().completed, 1);
    }

    #[test]
    fn unknown_robot_and_bad_dimensions_are_typed_errors() {
        let engine = engine_with(Zoo::Iiwa, EngineConfig::default());
        let err = engine
            .submit(ServeRequest::kinematics("nonexistent", vec![0.0; 7]))
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownRobot(_)));

        let err = engine
            .submit(ServeRequest::gradient(
                "iiwa",
                vec![0.0; 3],
                vec![0.0; 7],
                vec![0.0; 7],
            ))
            .unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "{err}");

        let err = engine
            .submit(ServeRequest::gradient(
                "iiwa",
                vec![f64::NAN; 7],
                vec![0.0; 7],
                vec![0.0; 7],
            ))
            .unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)));
        assert_eq!(engine.stats().bad_requests, 2);
        engine.shutdown();
    }

    #[test]
    fn full_queue_sheds_and_shutdown_drains_accepted_requests() {
        let engine = engine_with(
            Zoo::Iiwa,
            EngineConfig {
                queue_capacity: 2,
                workers_per_robot: 1,
                start_paused: true,
                ..EngineConfig::default()
            },
        );
        let req = || ServeRequest::kinematics("iiwa", vec![0.1; 7]);
        let t1 = engine.submit(req()).unwrap();
        let t2 = engine.submit(req()).unwrap();
        let err = engine.submit(req()).unwrap_err();
        assert!(matches!(err, ServeError::Rejected { .. }), "{err}");
        assert_eq!(engine.stats().shed, 1);

        // Graceful drain: both accepted tickets resolve even though the
        // engine was paused the whole time.
        engine.shutdown();
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        assert_eq!(engine.stats().completed, 2);

        let err = engine.submit(req()).unwrap_err();
        assert!(matches!(err, ServeError::Rejected { .. }));
    }

    #[test]
    fn expired_deadline_resolves_to_deadline_exceeded() {
        let engine = engine_with(
            Zoo::Iiwa,
            EngineConfig {
                workers_per_robot: 1,
                start_paused: true,
                ..EngineConfig::default()
            },
        );
        let ticket = engine
            .submit(
                ServeRequest::kinematics("iiwa", vec![0.1; 7])
                    .with_deadline(Duration::from_micros(1)),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        engine.resume();
        assert_eq!(ticket.wait().unwrap_err(), ServeError::DeadlineExceeded);
        assert_eq!(engine.stats().deadline_exceeded, 1);
        engine.shutdown();
    }

    #[test]
    fn paused_engine_coalesces_gradient_requests_into_batches() {
        let engine = engine_with(
            Zoo::Iiwa,
            EngineConfig {
                workers_per_robot: 1,
                max_batch: 8,
                start_paused: true,
                ..EngineConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| {
                engine
                    .submit(ServeRequest::gradient(
                        "iiwa",
                        vec![0.1 * (i + 1) as f64; 7],
                        vec![0.0; 7],
                        vec![0.4; 7],
                    ))
                    .unwrap()
            })
            .collect();
        engine.resume();
        for t in &tickets {
            assert!(t.wait().is_ok());
        }
        let stats = engine.stats();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.largest_batch, 4, "all four coalesced: {stats:?}");
        assert_eq!(stats.batches, 1);
        engine.shutdown();
    }
}
