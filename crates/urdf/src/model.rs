//! The in-memory robot model and its programmatic builder.

use roboshape_spatial::{Joint, SpatialInertia};
use roboshape_topology::Topology;

/// A single moving link: its name and spatial inertia (expressed in the
/// link's own frame).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    /// Link name (from the URDF, or as given to the builder).
    pub name: String,
    /// Spatial inertia in the link frame.
    pub inertia: SpatialInertia,
}

/// A complete robot model: the kinematic topology plus per-link inertias
/// and joint models.
///
/// Link `i`'s joint (`joints[i]`) connects it to `topology.parent(i)` (or
/// to the fixed base when the parent is `None`). Links are in topological
/// order.
///
/// # Examples
///
/// ```
/// use roboshape_linalg::Vec3;
/// use roboshape_spatial::{Joint, SpatialInertia, Xform};
/// use roboshape_urdf::RobotBuilder;
///
/// let mut b = RobotBuilder::new("pendulum");
/// b.add_link(
///     "bob",
///     None,
///     Joint::revolute(Vec3::unit_y()),
///     SpatialInertia::point_like(1.0, Vec3::new(0.0, 0.0, -0.5), 0.0),
/// );
/// let robot = b.build();
/// assert_eq!(robot.num_links(), 1);
/// assert_eq!(robot.link(0).name, "bob");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RobotModel {
    name: String,
    topology: Topology,
    links: Vec<LinkModel>,
    joints: Vec<Joint>,
    joint_names: Vec<String>,
}

impl RobotModel {
    pub(crate) fn from_parts(
        name: String,
        topology: Topology,
        links: Vec<LinkModel>,
        joints: Vec<Joint>,
        joint_names: Vec<String>,
    ) -> RobotModel {
        assert_eq!(topology.len(), links.len());
        assert_eq!(topology.len(), joints.len());
        assert_eq!(topology.len(), joint_names.len());
        RobotModel {
            name,
            topology,
            links,
            joints,
            joint_names,
        }
    }

    /// Robot name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of moving links `N`.
    pub fn num_links(&self) -> usize {
        self.topology.len()
    }

    /// The kinematic topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Link `i` (name + inertia).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_links()`.
    pub fn link(&self, i: usize) -> &LinkModel {
        &self.links[i]
    }

    /// The joint connecting link `i` to its parent.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_links()`.
    pub fn joint(&self, i: usize) -> &Joint {
        &self.joints[i]
    }

    /// The name of link `i`'s parent joint.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_links()`.
    pub fn joint_name(&self, i: usize) -> &str {
        &self.joint_names[i]
    }

    /// Index of the link named `name`, if any.
    pub fn link_index(&self, name: &str) -> Option<usize> {
        self.links.iter().position(|l| l.name == name)
    }

    /// Iterator over `(index, link, joint)` triples in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &LinkModel, &Joint)> {
        self.links
            .iter()
            .zip(self.joints.iter())
            .enumerate()
            .map(|(i, (l, j))| (i, l, j))
    }
}

/// Handle returned by [`RobotBuilder::add_link`], used to parent later
/// links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkHandle(usize);

/// Incrementally constructs a [`RobotModel`] (used by the robot zoo and
/// synthetic-robot generators; URDF input goes through
/// [`crate::parse_urdf`] instead).
///
/// Links are appended in topological order by construction: a parent
/// handle can only come from a previous `add_link` call.
#[derive(Debug, Clone, Default)]
pub struct RobotBuilder {
    name: String,
    parents: Vec<Option<usize>>,
    links: Vec<LinkModel>,
    joints: Vec<Joint>,
    joint_names: Vec<String>,
}

impl RobotBuilder {
    /// Starts a new robot with the given name.
    pub fn new(name: impl Into<String>) -> RobotBuilder {
        RobotBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Appends a moving link attached to `parent` (or the fixed base when
    /// `None`) through `joint`, and returns its handle.
    ///
    /// The joint name defaults to `<link-name>_joint`.
    ///
    /// # Panics
    ///
    /// Panics if a link with the same name was already added.
    pub fn add_link(
        &mut self,
        name: impl Into<String>,
        parent: Option<LinkHandle>,
        joint: Joint,
        inertia: SpatialInertia,
    ) -> LinkHandle {
        let name = name.into();
        assert!(
            self.links.iter().all(|l| l.name != name),
            "duplicate link name `{name}`"
        );
        self.parents.push(parent.map(|h| h.0));
        self.joint_names.push(format!("{name}_joint"));
        self.links.push(LinkModel { name, inertia });
        self.joints.push(joint);
        LinkHandle(self.links.len() - 1)
    }

    /// Overrides the joint name of the most recently added link.
    ///
    /// # Panics
    ///
    /// Panics if no link has been added yet.
    pub fn name_last_joint(&mut self, name: impl Into<String>) -> &mut Self {
        let last = self
            .joint_names
            .last_mut()
            .expect("name_last_joint requires at least one link");
        *last = name.into();
        self
    }

    /// Finalises the model.
    ///
    /// # Panics
    ///
    /// Panics if no links were added.
    pub fn build(self) -> RobotModel {
        let topology = Topology::new(self.parents).expect("builder guarantees valid parents");
        RobotModel::from_parts(
            self.name,
            topology,
            self.links,
            self.joints,
            self.joint_names,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboshape_linalg::Vec3;
    use roboshape_spatial::Xform;

    fn simple_inertia() -> SpatialInertia {
        SpatialInertia::point_like(1.0, Vec3::new(0.0, 0.0, -0.2), 0.01)
    }

    #[test]
    fn builder_constructs_branching_robot() {
        let mut b = RobotBuilder::new("y");
        let trunk = b.add_link(
            "trunk",
            None,
            Joint::revolute(Vec3::unit_z()),
            simple_inertia(),
        );
        b.add_link(
            "left",
            Some(trunk),
            Joint::revolute(Vec3::unit_y())
                .with_tree_xform(Xform::from_translation(Vec3::unit_x())),
            simple_inertia(),
        );
        b.add_link(
            "right",
            Some(trunk),
            Joint::revolute(Vec3::unit_y()),
            simple_inertia(),
        );
        let m = b.build();
        assert_eq!(m.num_links(), 3);
        assert_eq!(m.topology().children(0), &[1, 2]);
        assert_eq!(m.link_index("right"), Some(2));
        assert_eq!(m.link_index("missing"), None);
        assert_eq!(m.joint_name(1), "left_joint");
        assert_eq!(m.iter().count(), 3);
    }

    #[test]
    fn joint_names_can_be_overridden() {
        let mut b = RobotBuilder::new("r");
        b.add_link("a", None, Joint::revolute(Vec3::unit_z()), simple_inertia());
        b.name_last_joint("shoulder");
        let m = b.build();
        assert_eq!(m.joint_name(0), "shoulder");
    }

    #[test]
    #[should_panic(expected = "duplicate link name")]
    fn duplicate_link_panics() {
        let mut b = RobotBuilder::new("r");
        b.add_link("a", None, Joint::revolute(Vec3::unit_z()), simple_inertia());
        b.add_link("a", None, Joint::revolute(Vec3::unit_z()), simple_inertia());
    }
}
