//! Noise-aware, direction-aware comparison of two [`BenchRecord`]s.
//!
//! The tolerance band for a metric is
//!
//! ```text
//! band = min(base_tolerance                     (0.15 — the CI gate's 15%)
//!          + noise_mult · max(noiseᵦ, noiseᵧ)   (repeated-run variance)
//!          + smoke_widen,  (if either record ran smoke-sized iterations)
//!        max_band)         (0.60 — even a hopelessly noisy metric still
//!                           gates a halving of throughput)
//! ```
//!
//! and a metric fails only when it moves past the band in its *bad*
//! direction: throughput (`HigherIsBetter`) down by more than the band,
//! or a latency quantile (`LowerIsBetter`) up by more than the band.
//! Moves past the band the other way are reported as improvements;
//! moves inside the band are noise. A gated metric present in the
//! baseline but missing from the current record is a failure (a silent
//! regression's favourite disguise is a deleted metric); a metric only
//! the current record has is reported but never fails. Informational
//! metrics never gate in either direction.

use crate::record::{BenchRecord, MetricKind};
use std::fmt::Write as _;

/// Comparison policy. The defaults are the CI gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareConfig {
    /// Regression threshold before noise widening (relative). The CI
    /// gate fails on >15%.
    pub base_tolerance: f64,
    /// How many units of measured repeated-run spread to add to the
    /// band.
    pub noise_mult: f64,
    /// Extra band width when either side is a smoke-sized run (smoke
    /// iteration counts are too small for the measured spread to be a
    /// trustworthy variance estimate).
    pub smoke_widen: f64,
    /// Treat the comparison as smoke even if neither record says so
    /// (the `--smoke` flag).
    pub force_smoke: bool,
    /// Hard ceiling on the widened band. Without it, a metric whose
    /// measured spread exceeds ~20% gets a band past 100% — which a
    /// `HigherIsBetter` metric can *never* leave downward, so the gate
    /// would silently stop gating exactly the noisiest metrics.
    pub max_band: f64,
}

impl Default for CompareConfig {
    fn default() -> CompareConfig {
        CompareConfig {
            base_tolerance: 0.15,
            noise_mult: 2.0,
            smoke_widen: 0.35,
            force_smoke: false,
            max_band: 0.60,
        }
    }
}

/// What happened to one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricOutcome {
    /// Moved past the band in the good direction.
    Improved,
    /// Within the band.
    Unchanged,
    /// Moved past the band in the bad direction — fails the gate.
    Regressed,
    /// In the baseline, gated, and absent from the current record —
    /// fails the gate.
    Missing,
    /// Only in the current record (new metric; informational).
    Added,
    /// Informational kind, or a non-gated missing key: never fails.
    Ignored,
}

/// One metric's comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric key.
    pub key: String,
    /// Gating direction (baseline's view wins on disagreement).
    pub kind: MetricKind,
    /// Baseline value (`None` for [`MetricOutcome::Added`]).
    pub baseline: Option<f64>,
    /// Current value (`None` for [`MetricOutcome::Missing`]).
    pub current: Option<f64>,
    /// Relative change `(current − baseline) / |baseline|`, when both
    /// sides exist and the baseline is nonzero.
    pub rel_change: Option<f64>,
    /// The tolerance band applied.
    pub band: f64,
    /// Verdict.
    pub outcome: MetricOutcome,
}

/// The full comparison of one bench's records.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Bench name.
    pub bench: String,
    /// Per-metric rows, baseline order (sorted keys) then additions.
    pub deltas: Vec<MetricDelta>,
    /// The records were measured on machines whose fingerprints are not
    /// comparable — deltas are reported but suspect.
    pub machine_mismatch: bool,
    /// Whether smoke widening applied.
    pub smoke: bool,
}

impl CompareReport {
    /// Whether the gate should fail.
    pub fn failed(&self) -> bool {
        self.deltas
            .iter()
            .any(|d| matches!(d.outcome, MetricOutcome::Regressed | MetricOutcome::Missing))
    }

    /// Rows with the given outcome.
    pub fn count(&self, outcome: MetricOutcome) -> usize {
        self.deltas.iter().filter(|d| d.outcome == outcome).count()
    }

    /// Renders the human-readable table `bench compare` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== {} ({}{})",
            self.bench,
            if self.smoke {
                "smoke bands"
            } else {
                "full bands"
            },
            if self.machine_mismatch {
                "; MACHINE MISMATCH — deltas are cross-machine and suspect"
            } else {
                ""
            }
        );
        let _ = writeln!(
            out,
            "{:<44} {:>14} {:>14} {:>9} {:>7}  verdict",
            "metric", "baseline", "current", "change", "band"
        );
        for d in &self.deltas {
            let fmt_v = |v: Option<f64>| match v {
                Some(v) if v.abs() >= 1000.0 => format!("{v:.0}"),
                Some(v) => format!("{v:.2}"),
                None => "—".to_string(),
            };
            let change = match d.rel_change {
                Some(c) => format!("{:+.1}%", c * 100.0),
                None => "—".to_string(),
            };
            let verdict = match d.outcome {
                MetricOutcome::Improved => "improved",
                MetricOutcome::Unchanged => "ok",
                MetricOutcome::Regressed => "REGRESSED",
                MetricOutcome::Missing => "MISSING",
                MetricOutcome::Added => "added",
                MetricOutcome::Ignored => "info",
            };
            let _ = writeln!(
                out,
                "{:<44} {:>14} {:>14} {:>9} {:>6.0}%  {verdict}",
                d.key,
                fmt_v(d.baseline),
                fmt_v(d.current),
                change,
                d.band * 100.0,
            );
        }
        let _ = writeln!(
            out,
            "{}: {} regressed, {} missing, {} improved, {} unchanged, {} added",
            if self.failed() { "FAIL" } else { "PASS" },
            self.count(MetricOutcome::Regressed),
            self.count(MetricOutcome::Missing),
            self.count(MetricOutcome::Improved),
            self.count(MetricOutcome::Unchanged),
            self.count(MetricOutcome::Added),
        );
        out
    }
}

/// The band for one metric under `cfg`.
fn band(cfg: &CompareConfig, noise: f64, smoke: bool) -> f64 {
    (cfg.base_tolerance + cfg.noise_mult * noise + if smoke { cfg.smoke_widen } else { 0.0 })
        .min(cfg.max_band)
}

/// Compares `current` against `baseline`.
pub fn compare(
    baseline: &BenchRecord,
    current: &BenchRecord,
    cfg: &CompareConfig,
) -> CompareReport {
    let smoke = cfg.force_smoke || baseline.smoke || current.smoke;
    let mut deltas = Vec::new();
    for (key, base) in &baseline.metrics {
        let band = band(
            cfg,
            base.noise
                .max(current.metrics.get(key).map_or(0.0, |m| m.noise)),
            smoke,
        );
        let Some(cur) = current.metrics.get(key) else {
            deltas.push(MetricDelta {
                key: key.clone(),
                kind: base.kind,
                baseline: Some(base.value),
                current: None,
                rel_change: None,
                band,
                outcome: if base.kind == MetricKind::Informational {
                    MetricOutcome::Ignored
                } else {
                    MetricOutcome::Missing
                },
            });
            continue;
        };
        let rel = if base.value.abs() > 1e-12 {
            Some((cur.value - base.value) / base.value.abs())
        } else {
            None
        };
        let outcome = match (base.kind, rel) {
            (MetricKind::Informational, _) => MetricOutcome::Ignored,
            // Zero baseline: gate only an appearance of latency where
            // there was none is meaningless — treat as unchanged.
            (_, None) => MetricOutcome::Unchanged,
            (MetricKind::HigherIsBetter, Some(rel)) if rel < -band => MetricOutcome::Regressed,
            (MetricKind::HigherIsBetter, Some(rel)) if rel > band => MetricOutcome::Improved,
            (MetricKind::LowerIsBetter, Some(rel)) if rel > band => MetricOutcome::Regressed,
            (MetricKind::LowerIsBetter, Some(rel)) if rel < -band => MetricOutcome::Improved,
            _ => MetricOutcome::Unchanged,
        };
        deltas.push(MetricDelta {
            key: key.clone(),
            kind: base.kind,
            baseline: Some(base.value),
            current: Some(cur.value),
            rel_change: rel,
            band,
            outcome,
        });
    }
    for (key, cur) in &current.metrics {
        if !baseline.metrics.contains_key(key) {
            deltas.push(MetricDelta {
                key: key.clone(),
                kind: cur.kind,
                baseline: None,
                current: Some(cur.value),
                rel_change: None,
                band: band(cfg, cur.noise, smoke),
                outcome: MetricOutcome::Added,
            });
        }
    }
    CompareReport {
        bench: baseline.bench.clone(),
        deltas,
        machine_mismatch: !baseline.machine.comparable_to(&current.machine),
        smoke,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BenchRecord, MetricKind};

    fn record(metrics: &[(&str, f64, f64)]) -> BenchRecord {
        let mut r = BenchRecord::new("test_bench", false, false);
        r.commit = "testcommit".to_string();
        for &(key, value, noise) in metrics {
            r.push(key, value, noise);
        }
        r
    }

    fn outcome_of(report: &CompareReport, key: &str) -> MetricOutcome {
        report
            .deltas
            .iter()
            .find(|d| d.key == key)
            .unwrap_or_else(|| panic!("no delta for {key}"))
            .outcome
    }

    #[test]
    fn throughput_down_past_band_fails_up_passes() {
        let base = record(&[("zoo.throughput_rps", 10000.0, 0.0)]);
        // 15% base band, zero noise: −20% regresses, −10% is noise,
        // +40% is an improvement.
        let cfg = CompareConfig::default();
        let down = compare(&base, &record(&[("zoo.throughput_rps", 8000.0, 0.0)]), &cfg);
        assert_eq!(
            outcome_of(&down, "zoo.throughput_rps"),
            MetricOutcome::Regressed
        );
        assert!(down.failed());
        let near = compare(&base, &record(&[("zoo.throughput_rps", 9000.0, 0.0)]), &cfg);
        assert_eq!(
            outcome_of(&near, "zoo.throughput_rps"),
            MetricOutcome::Unchanged
        );
        assert!(!near.failed());
        let up = compare(
            &base,
            &record(&[("zoo.throughput_rps", 14000.0, 0.0)]),
            &cfg,
        );
        assert_eq!(
            outcome_of(&up, "zoo.throughput_rps"),
            MetricOutcome::Improved
        );
        assert!(!up.failed());
    }

    #[test]
    fn latency_gates_the_opposite_direction() {
        let base = record(&[("latency.p99_us", 500.0, 0.0)]);
        let cfg = CompareConfig::default();
        let worse = compare(&base, &record(&[("latency.p99_us", 600.0, 0.0)]), &cfg);
        assert_eq!(
            outcome_of(&worse, "latency.p99_us"),
            MetricOutcome::Regressed
        );
        let better = compare(&base, &record(&[("latency.p99_us", 300.0, 0.0)]), &cfg);
        assert_eq!(
            outcome_of(&better, "latency.p99_us"),
            MetricOutcome::Improved
        );
        assert!(!better.failed());
    }

    #[test]
    fn noise_widens_the_band_per_metric() {
        // 10% measured spread → band 15% + 2·10% = 35%: a −30% move
        // that fails a quiet metric passes a noisy one.
        let quiet = record(&[("a.throughput_rps", 1000.0, 0.0)]);
        let noisy = record(&[("a.throughput_rps", 1000.0, 0.10)]);
        let cur = record(&[("a.throughput_rps", 700.0, 0.0)]);
        let cfg = CompareConfig::default();
        assert!(compare(&quiet, &cur, &cfg).failed());
        assert!(!compare(&noisy, &cur, &cfg).failed());
        // The larger of the two sides' noise wins.
        let noisy_cur = record(&[("a.throughput_rps", 700.0, 0.10)]);
        assert!(!compare(&quiet, &noisy_cur, &cfg).failed());
    }

    #[test]
    fn smoke_mode_widens_tolerance() {
        let base = record(&[("a.throughput_rps", 1000.0, 0.0)]);
        let cur = record(&[("a.throughput_rps", 600.0, 0.0)]);
        // −40%: fails full bands (15%), passes smoke bands (15+35=50%).
        assert!(compare(&base, &cur, &CompareConfig::default()).failed());
        let smoke_cfg = CompareConfig {
            force_smoke: true,
            ..CompareConfig::default()
        };
        let report = compare(&base, &cur, &smoke_cfg);
        assert!(report.smoke);
        assert!(!report.failed());
        // A smoke flag on either record widens too, without the flag.
        let mut smoke_base = base.clone();
        smoke_base.smoke = true;
        assert!(!compare(&smoke_base, &cur, &CompareConfig::default()).failed());
    }

    #[test]
    fn missing_gated_key_fails_added_key_does_not() {
        let base = record(&[("a.throughput_rps", 1000.0, 0.0), ("b.p99_us", 200.0, 0.0)]);
        let cur = record(&[
            ("a.throughput_rps", 1000.0, 0.0),
            ("c.new_metric_rps", 5.0, 0.0),
        ]);
        let report = compare(&base, &cur, &CompareConfig::default());
        assert_eq!(outcome_of(&report, "b.p99_us"), MetricOutcome::Missing);
        assert_eq!(
            outcome_of(&report, "c.new_metric_rps"),
            MetricOutcome::Added
        );
        assert!(report.failed());
        // A missing *informational* key is ignored.
        let mut base_info = record(&[("a.throughput_rps", 1000.0, 0.0)]);
        base_info.push_kind("d.context", 3.0, 0.0, MetricKind::Informational);
        let report = compare(&base_info, &cur, &CompareConfig::default());
        assert_eq!(outcome_of(&report, "d.context"), MetricOutcome::Ignored);
        assert!(!report.failed());
    }

    #[test]
    fn informational_metrics_never_gate() {
        let mut base = BenchRecord::new("b", false, false);
        base.push_kind("compile_time", 10.0, 0.0, MetricKind::Informational);
        let mut cur = BenchRecord::new("b", false, false);
        cur.push_kind("compile_time", 1000.0, 0.0, MetricKind::Informational);
        let report = compare(&base, &cur, &CompareConfig::default());
        assert_eq!(outcome_of(&report, "compile_time"), MetricOutcome::Ignored);
        assert!(!report.failed());
    }

    #[test]
    fn machine_mismatch_is_flagged() {
        let base = record(&[("a.throughput_rps", 1000.0, 0.0)]);
        let mut cur = record(&[("a.throughput_rps", 1000.0, 0.0)]);
        cur.machine.cpus = base.machine.cpus + 32;
        let report = compare(&base, &cur, &CompareConfig::default());
        assert!(report.machine_mismatch);
        assert!(report.render().contains("MACHINE MISMATCH"));
    }

    #[test]
    fn zero_baseline_does_not_divide() {
        let base = record(&[("shed.throughput_rps", 0.0, 0.0)]);
        let cur = record(&[("shed.throughput_rps", 5.0, 0.0)]);
        let report = compare(&base, &cur, &CompareConfig::default());
        assert_eq!(
            outcome_of(&report, "shed.throughput_rps"),
            MetricOutcome::Unchanged
        );
    }

    #[test]
    fn band_ceiling_keeps_noisy_metrics_gated() {
        // 30% measured spread would give 15% + 60% + 35% = 110% — a
        // band a throughput can never fall out of. The ceiling keeps a
        // −70% collapse failing even under smoke widening.
        let base = record(&[("a.throughput_rps", 10000.0, 0.30)]);
        let cur = record(&[("a.throughput_rps", 3000.0, 0.30)]);
        let cfg = CompareConfig {
            force_smoke: true,
            ..CompareConfig::default()
        };
        let report = compare(&base, &cur, &cfg);
        assert_eq!(report.deltas[0].band, cfg.max_band);
        assert!(report.failed());
    }

    #[test]
    fn render_is_a_stable_table() {
        let base = record(&[("a.throughput_rps", 10000.0, 0.02)]);
        let cur = record(&[("a.throughput_rps", 7000.0, 0.02)]);
        let text = compare(&base, &cur, &CompareConfig::default()).render();
        assert!(text.contains("a.throughput_rps"), "{text}");
        assert!(text.contains("-30.0%"), "{text}");
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.starts_with("== test_bench"), "{text}");
        assert!(text.contains("FAIL: 1 regressed"), "{text}");
    }
}
