//! Trajectory-workload state propagation, shared by the engine's
//! worker-side rollout executor and its correctness pins.
//!
//! A `Rollout{steps}` request runs N sequential ∇FD evaluations with the
//! state fed forward between steps. The *integration rule* connecting one
//! step's accelerations to the next step's `(q, q̇)` lives here — in
//! exactly one place — so the worker loop and the bit-exactness property
//! test call the identical function and `==`-compare every f64.

use roboshape_dynamics::Dynamics;
use roboshape_urdf::RobotModel;

/// Fixed integration timestep for rollout workloads, in seconds. One
/// millisecond matches the control rates the paper's MPC workloads target
/// (250 Hz–1 kHz).
pub const ROLLOUT_DT: f64 = 1e-3;

/// Advances `(q, q̇)` by one semi-implicit Euler step under constant
/// torques `tau`: `q̈ = FD(q, q̇, τ)`, then `q̇ += dt·q̈`, then
/// `q += dt·q̇` (with the already-updated velocity).
///
/// Deterministic: same inputs, bit-identical outputs — rollouts replayed
/// step-by-step through single-step requests land on the same floats.
///
/// # Panics
///
/// Panics if `q`/`qd`/`tau` lengths disagree with the model's link count
/// (callers validate dimensions at admission).
pub fn advance(model: &RobotModel, q: &mut [f64], qd: &mut [f64], tau: &[f64]) {
    let qdd = Dynamics::new(model).forward_dynamics(q, qd, tau);
    for j in 0..qd.len() {
        qd[j] += ROLLOUT_DT * qdd[j];
        q[j] += ROLLOUT_DT * qd[j];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboshape_robots::{zoo, Zoo};

    #[test]
    fn advance_is_deterministic_and_moves_state() {
        let model = zoo(Zoo::Iiwa);
        let n = model.num_links();
        let q0: Vec<f64> = (0..n).map(|i| 0.1 * i as f64).collect();
        let qd0 = vec![0.0; n];
        let tau = vec![0.5; n];

        let (mut q_a, mut qd_a) = (q0.clone(), qd0.clone());
        let (mut q_b, mut qd_b) = (q0.clone(), qd0.clone());
        advance(&model, &mut q_a, &mut qd_a, &tau);
        advance(&model, &mut q_b, &mut qd_b, &tau);
        for j in 0..n {
            assert_eq!(q_a[j].to_bits(), q_b[j].to_bits());
            assert_eq!(qd_a[j].to_bits(), qd_b[j].to_bits());
        }
        assert_ne!(q_a, q0, "constant torque moves the state");
        assert!(q_a.iter().chain(&qd_a).all(|v| v.is_finite()));
    }
}
