//! Chaos soak: the full robot zoo served under deterministic fault
//! injection — worker stalls, worker crashes, synthetic queue pressure,
//! and on-the-wire frame corruption all active at once — driven by the
//! retrying load generator and by a manual bit-exactness client.
//!
//! The invariants this soak asserts are the ones the resilience layer
//! exists to provide:
//!
//! 1. **Nothing is lost**: every logical request ends in exactly one
//!    accounted terminal outcome (`report.lost() == 0`).
//! 2. **Nothing is duplicated**: no correlation id is answered twice.
//! 3. **Nothing is silently corrupted**: every successful kernel payload
//!    is bit-identical to a direct in-process simulation on the same
//!    design — a damaged frame may cost a retry, never a wrong answer.
//! 4. **Every injected fault is visible**: the `serve.fault.*` counters
//!    in the global metrics snapshot agree exactly with the engine's own
//!    injection statistics.

use roboshape_robots::{zoo, Zoo};
use roboshape_serve::loadgen::{
    request_inputs, run_loadgen, LoadMode, LoadgenConfig, RetryPolicy, TargetRobot, Workload,
};
use roboshape_serve::{
    Client, Engine, EngineConfig, FaultConfig, ServePayload, ServeRequest, Server,
};
use roboshape_sim::try_simulate;
use std::collections::HashSet;
use std::time::Duration;

const CHAOS: FaultConfig = FaultConfig {
    seed: 1234,
    stall: 0.04,
    crash: 0.10,
    corrupt: 0.08,
    pressure: 0.05,
};

fn chaotic_zoo_server() -> Server {
    let engine = Engine::new(EngineConfig {
        chaos: Some(CHAOS),
        circuit_threshold: 4,
        circuit_cooldown: Duration::from_millis(50),
        ..EngineConfig::default()
    });
    for which in Zoo::ALL {
        engine.register(which.name(), zoo(which));
    }
    Server::start(engine, "127.0.0.1:0").expect("bind loopback")
}

/// Reconnects `client`, carrying the correlation-id sequence forward so
/// retried requests get fresh ids (deterministic corruption keys on the
/// id — reusing one would re-trigger the same damage forever).
fn reconnect(client: &mut Client, addr: std::net::SocketAddr) {
    let next = client.next_id();
    let mut fresh = Client::connect(addr).expect("reconnect");
    fresh
        .set_read_timeout(Some(Duration::from_millis(500)))
        .expect("socket opts");
    fresh.set_next_id(next);
    *client = fresh;
}

#[test]
fn chaos_soak_loses_nothing_duplicates_nothing_corrupts_nothing() {
    let server = chaotic_zoo_server();
    let addr = server.addr();
    let engine = server.engine().clone();

    // Phase 1 — the retrying load generator across the whole zoo. The
    // accounting invariant: zero lost requests despite every fault site
    // firing.
    let cfg = LoadgenConfig {
        mode: LoadMode::Closed,
        clients: 4,
        requests_per_client: 30,
        robots: Zoo::ALL
            .into_iter()
            .map(|w| TargetRobot {
                name: w.name().to_string(),
                links: zoo(w).num_links(),
            })
            .collect(),
        workload: Workload::Step(roboshape_arch::KernelKind::DynamicsGradient),
        deadline: None,
        seed: 5,
        retry: RetryPolicy {
            max_attempts: 8,
            ..RetryPolicy::default()
        },
        timeout: Some(Duration::from_millis(500)),
    };
    let report = run_loadgen(addr, &cfg).expect("loadgen runs");
    assert_eq!(report.lost(), 0, "no request unaccounted for: {report}");
    assert!(report.ok > 0, "chaos still serves answers: {report}");
    assert!(
        report.retried > 0,
        "faults at these rates force retries: {report}"
    );

    // Phase 2 — bit-exactness under fire. One manual client with its own
    // retry loop; every successful gradient payload must match direct
    // simulation to the last float bit, and no id is answered twice.
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_millis(500)))
        .expect("socket opts");
    let mut seen_ids: HashSet<u64> = HashSet::new();
    let mut verified = 0u32;
    let mut degraded = 0u32;
    for i in 0..60usize {
        let which = Zoo::ALL[i % Zoo::ALL.len()];
        let robot = zoo(which);
        let n = robot.num_links();
        let (q, qd, tau) = request_inputs(n, 7_000 + i as u64);
        let req = ServeRequest::gradient(which.name(), q.clone(), qd.clone(), tau.clone());
        let mut attempts = 0;
        let payload = loop {
            attempts += 1;
            assert!(attempts <= 50, "request {i} never settled");
            let id = match client.send(&req) {
                Ok(id) => id,
                Err(_) => {
                    reconnect(&mut client, addr);
                    continue;
                }
            };
            match client.recv() {
                Ok(frame) => {
                    assert_eq!(frame.id, id, "in-order response for request {i}");
                    assert!(seen_ids.insert(frame.id), "response id {id} answered twice");
                    match frame.result {
                        Ok(payload) => break payload,
                        Err(e) if e.is_retryable() => continue,
                        Err(other) => panic!("unexpected terminal error: {other}"),
                    }
                }
                Err(_) => {
                    // Corrupted frame, oversized prefix, or truncation
                    // timeout: the stream is unusable, start over.
                    reconnect(&mut client, addr);
                    continue;
                }
            }
        };
        let design = engine
            .design_for(which.name(), roboshape_arch::KernelKind::DynamicsGradient)
            .expect("registered robot");
        match payload {
            ServePayload::Gradient {
                tau: tau_out,
                dqdd_dq,
                dqdd_dqd,
                cycles,
            } => {
                let reference = try_simulate(&robot, &design, &q, &qd, &tau).unwrap();
                assert_eq!(cycles, reference.stats.cycles, "{}", which.name());
                for j in 0..n {
                    assert_eq!(tau_out[j].to_bits(), reference.tau[j].to_bits());
                    for k in 0..n {
                        assert_eq!(
                            dqdd_dq[j * n + k].to_bits(),
                            reference.dqdd_dq[(j, k)].to_bits()
                        );
                        assert_eq!(
                            dqdd_dqd[j * n + k].to_bits(),
                            reference.dqdd_dqd[(j, k)].to_bits()
                        );
                    }
                }
                verified += 1;
            }
            ServePayload::Degraded {
                cycles,
                clock_ns,
                latency_us,
                ..
            } => {
                // Degraded answers come from the analytical model and
                // must match it exactly too.
                assert_eq!(cycles, design.compute_cycles());
                assert_eq!(clock_ns.to_bits(), design.clock_ns().to_bits());
                assert_eq!(latency_us.to_bits(), design.compute_latency_us().to_bits());
                degraded += 1;
            }
            other => panic!("wrong payload kind: {other:?}"),
        }
    }
    assert_eq!(
        verified + degraded,
        60,
        "every request settled successfully"
    );
    assert!(verified > 0, "most answers are real kernel results");

    // Phase 3 — every injected fault is visible. The engine's own
    // injection stats and the global `serve.fault.*` counters must agree
    // exactly; the wire-corruption counter lives server-side only.
    let stats = engine.stats();
    assert!(stats.injected_crashes > 0, "crash site fired: {stats:?}");
    assert!(stats.injected_stalls > 0, "stall site fired: {stats:?}");
    assert!(
        stats.injected_pressure > 0,
        "pressure site fired: {stats:?}"
    );
    assert!(stats.worker_restarts > 0, "supervisor restarted workers");
    assert_eq!(
        stats.crashed
            + stats.completed
            + stats.degraded
            + stats.deadline_exceeded
            + stats.bad_requests,
        stats.responses()
    );

    let snapshot = roboshape_obs::metrics().snapshot();
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(
        counter(roboshape_serve::FAULT_CRASH_METRIC),
        stats.injected_crashes
    );
    assert_eq!(
        counter(roboshape_serve::FAULT_STALL_METRIC),
        stats.injected_stalls
    );
    assert_eq!(
        counter(roboshape_serve::FAULT_PRESSURE_METRIC),
        stats.injected_pressure
    );
    assert_eq!(
        counter(roboshape_serve::WORKER_RESTARTS_METRIC),
        stats.worker_restarts
    );
    assert!(
        counter(roboshape_serve::FAULT_CORRUPT_METRIC) > 0,
        "wire corruption fired"
    );
    assert!(
        counter(roboshape_serve::RETRY_ATTEMPTS_METRIC) >= report.retried,
        "retry attempts counted"
    );

    server.shutdown();

    // Drained: every queued request resolved (completed, crashed, or
    // deadline-expired); degraded and bad-request answers never queue,
    // so they sit on the response side only.
    let final_stats = engine.stats();
    assert_eq!(
        final_stats.responses(),
        final_stats.submitted + final_stats.degraded + final_stats.bad_requests,
        "every submitted request resolved: {final_stats:?}"
    );
}

/// The same seed injects the same faults: two engines fed the identical
/// request schedule produce identical injection counts (the full-stats
/// determinism test with pinned workers lives in the engine unit tests;
/// this one goes through the whole TCP stack).
#[test]
fn same_seed_same_fault_schedule_over_tcp() {
    let run = || {
        let engine = Engine::new(EngineConfig {
            workers_per_robot: 1,
            max_batch: 1,
            chaos: Some(FaultConfig::uniform(77, 0.15)),
            // Keep the breaker out of the way so every crash is visible
            // as a WorkerCrashed rather than absorbed by degradation.
            circuit_threshold: 1_000,
            ..EngineConfig::default()
        });
        engine.register("iiwa", zoo(Zoo::Iiwa));
        let server = Server::start(engine.clone(), "127.0.0.1:0").expect("bind");
        let mut client = Client::connect(server.addr()).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_millis(500)))
            .expect("socket opts");
        let n = zoo(Zoo::Iiwa).num_links();
        let mut outcomes = Vec::new();
        for i in 0..40u64 {
            let (q, _, _) = request_inputs(n, i);
            let req = ServeRequest::kinematics("iiwa", q);
            let outcome = loop {
                match client.send(&req).and_then(|_| client.recv()) {
                    Ok(frame) => break frame.result.map(|_| ()).map_err(|e| e.to_string()),
                    Err(_) => reconnect(&mut client, server.addr()),
                }
            };
            outcomes.push(outcome);
        }
        let stats = engine.stats();
        server.shutdown();
        (
            outcomes,
            stats.injected_crashes,
            stats.injected_stalls,
            stats.injected_pressure,
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "identical fault schedule per seed");
}
