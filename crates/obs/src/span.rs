//! RAII tracing spans with thread-local nesting.

use crate::sink::SpanRecord;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide epoch all span timestamps are measured from. Fixed on
/// first use, so timestamps from every thread share one monotonic
/// timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process-wide tracing epoch.
///
/// Saturates at `u64::MAX` (≈ 584 years), and uses `u64` — not `usize` —
/// so cycle/time accumulators behave identically on 32-bit targets.
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Small dense per-thread ids (Chrome's `tid` field), assigned on first
/// span per thread.
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// The ids of the spans currently open on this thread, outermost
    /// first. The top of the stack is the parent of the next span.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// An open tracing span; emits a [`SpanRecord`] to the installed sink
/// when dropped. Created by [`span`](crate::span).
///
/// Guards are intentionally `!Send`: a span measures a region of one
/// thread's execution, and the parent/child bookkeeping lives in
/// thread-local state.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    /// `None` when tracing was disabled at creation: drop does nothing.
    open: Option<OpenSpan>,
    _not_send: PhantomData<*const ()>,
}

struct OpenSpan {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    id: u64,
    parent: Option<u64>,
    thread: u64,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.open {
            Some(s) => f
                .debug_struct("SpanGuard")
                .field("name", &s.name)
                .field("cat", &s.cat)
                .field("id", &s.id)
                .field("parent", &s.parent)
                .finish(),
            None => f.debug_struct("SpanGuard").field("active", &false).finish(),
        }
    }
}

/// Opens a span named `name` in category `cat` (the Chrome trace `cat`
/// field — by convention the crate or subsystem: `"pipeline"`, `"sim"`,
/// `"dse"`…). The span covers the lifetime of the returned guard and
/// nests under any span already open on this thread.
///
/// When tracing is disabled (no sink installed) this is one relaxed
/// atomic load and returns an inert guard — cheap enough to leave in hot
/// paths unconditionally.
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            open: None,
            _not_send: PhantomData,
        };
    }
    let id = next_span_id();
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    SpanGuard {
        open: Some(OpenSpan {
            name,
            cat,
            start_ns: now_ns(),
            id,
            parent,
            thread: thread_id(),
        }),
        _not_send: PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let end_ns = now_ns();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards are dropped in reverse creation order within a
            // thread (they are !Send and scope-bound), so the top of the
            // stack is this span. `retain` keeps this robust even if a
            // guard is leaked and dropped late.
            if stack.last() == Some(&open.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != open.id);
            }
        });
        crate::emit_span(&SpanRecord {
            name: open.name,
            cat: open.cat,
            start_ns: open.start_ns,
            dur_ns: end_ns.saturating_sub(open.start_ns),
            thread: open.thread,
            id: open.id,
            parent: open.parent,
        });
    }
}
