//! The recursive Newton–Euler algorithm (paper Alg. 2) and its per-link
//! step functions.
//!
//! The per-link functions [`fwd_link_step`] and [`bwd_link_step`] are the
//! *exact* units of work the accelerator's processing elements execute:
//! the task graph (taskgraph crate) schedules one forward and one backward
//! task per link, and the cycle-level simulator calls these functions when
//! a PE retires the corresponding task, so the hardware model and the
//! reference implementation share one definition of the arithmetic.

use crate::Dynamics;
use roboshape_spatial::{cross_force, cross_motion, ForceVec, MotionVec, Xform};
use roboshape_urdf::RobotModel;

/// Output of one forward-pass link step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkForward {
    /// Parent→link transform at the current configuration.
    pub xup: Xform,
    /// Link spatial velocity (link coordinates).
    pub v: MotionVec,
    /// Link spatial acceleration (link coordinates).
    pub a: MotionVec,
    /// Link net spatial force before child contributions.
    pub f: ForceVec,
}

/// Executes the forward-pass step for link `i` of `model` given its
/// parent's velocity and acceleration (use the gravity-seeded base
/// acceleration for roots).
///
/// Computes (Featherstone, eqs. 5.7–5.9):
///
/// ```text
/// v_i = X_i v_λ + S_i q̇_i
/// a_i = X_i a_λ + S_i q̈_i + v_i × S_i q̇_i
/// f_i = I_i a_i + v_i ×* I_i v_i
/// ```
///
/// # Panics
///
/// Panics if `i >= model.num_links()`.
pub fn fwd_link_step(
    model: &RobotModel,
    i: usize,
    q_i: f64,
    qd_i: f64,
    qdd_i: f64,
    v_parent: MotionVec,
    a_parent: MotionVec,
) -> LinkForward {
    let joint = model.joint(i);
    let s = joint.motion_subspace();
    let xup = joint.child_xform(q_i);
    let vj = s * qd_i;
    let v = xup.apply_motion(v_parent) + vj;
    let a = xup.apply_motion(a_parent) + s * qdd_i + cross_motion(v, vj);
    let inertia = &model.link(i).inertia;
    let f = inertia.apply(a) + cross_force(v, inertia.apply(v));
    LinkForward { xup, v, a, f }
}

/// Executes the backward-pass step for link `i`: returns the joint torque
/// `τ_i = S_iᵀ f_i` and the force contribution `X_iᵀ f_i` to accumulate
/// onto the parent (`f` must already include all child contributions).
pub fn bwd_link_step(model: &RobotModel, i: usize, xup: &Xform, f: ForceVec) -> (f64, ForceVec) {
    let s = model.joint(i).motion_subspace();
    (s.dot_force(f), xup.apply_force_transpose(f))
}

/// All intermediate quantities of an RNEA evaluation, exposed because the
/// gradient pass consumes them (paper Fig. 8c stores exactly these in the
/// accelerator's "RNEA outputs" buffers).
#[derive(Debug, Clone, PartialEq)]
pub struct RneaCache {
    /// Per-link parent→link transforms at the evaluated configuration.
    pub xup: Vec<Xform>,
    /// Per-link spatial velocities.
    pub v: Vec<MotionVec>,
    /// Per-link spatial accelerations.
    pub a: Vec<MotionVec>,
    /// Per-link total spatial forces (after child accumulation).
    pub f: Vec<ForceVec>,
    /// Joint torques.
    pub tau: Vec<f64>,
    /// Per-link joint motion subspaces `S_i`. Configuration-independent,
    /// but the gradient pass reads them once per `(link, seed)` pair, so
    /// they are staged here next to the other per-link operands.
    pub s: Vec<MotionVec>,
    /// Per-link joint velocities `S_i q̇_i`.
    pub vj: Vec<MotionVec>,
    /// Per-link spatial momenta `h_i = I_i v_i`.
    pub h: Vec<ForceVec>,
}

impl Dynamics<'_> {
    /// Inverse dynamics `τ = RNEA(q, q̇, q̈)` (paper Alg. 2).
    ///
    /// # Panics
    ///
    /// Panics if any input slice length differs from [`Dynamics::dim`].
    pub fn rnea(&self, q: &[f64], qd: &[f64], qdd: &[f64]) -> Vec<f64> {
        self.rnea_cache(q, qd, qdd).tau
    }

    /// Inverse dynamics, returning every intermediate quantity
    /// ([`RneaCache`]) for downstream reuse (gradients, simulator
    /// verification) — avoiding duplicate work.
    ///
    /// # Panics
    ///
    /// Panics if any input slice length differs from [`Dynamics::dim`].
    pub fn rnea_cache(&self, q: &[f64], qd: &[f64], qdd: &[f64]) -> RneaCache {
        let n = self.dim();
        assert_eq!(q.len(), n, "q dimension mismatch");
        assert_eq!(qd.len(), n, "qd dimension mismatch");
        assert_eq!(qdd.len(), n, "qdd dimension mismatch");
        let model = self.model();
        let topo = model.topology();
        let a_base = MotionVec::from_parts(roboshape_linalg::Vec3::ZERO, -self.gravity());

        let mut xup = Vec::with_capacity(n);
        let mut v = Vec::with_capacity(n);
        let mut a = Vec::with_capacity(n);
        let mut f = Vec::with_capacity(n);
        let mut s = Vec::with_capacity(n);
        let mut vj = Vec::with_capacity(n);
        let mut h = Vec::with_capacity(n);
        for i in 0..n {
            let (vp, ap) = match topo.parent(i) {
                Some(p) => (v[p], a[p]),
                None => (MotionVec::ZERO, a_base),
            };
            let out = fwd_link_step(model, i, q[i], qd[i], qdd[i], vp, ap);
            let s_i = model.joint(i).motion_subspace();
            s.push(s_i);
            vj.push(s_i * qd[i]);
            h.push(model.link(i).inertia.apply(out.v));
            xup.push(out.xup);
            v.push(out.v);
            a.push(out.a);
            f.push(out.f);
        }

        let mut tau = vec![0.0; n];
        for i in (0..n).rev() {
            let (t, to_parent) = bwd_link_step(model, i, &xup[i], f[i]);
            tau[i] = t;
            if let Some(p) = topo.parent(i) {
                f[p] += to_parent;
            }
        }
        RneaCache {
            xup,
            v,
            a,
            f,
            tau,
            s,
            vj,
            h,
        }
    }

    /// Total kinetic energy `Σ ½ v_iᵀ I_i v_i` at `(q, q̇)`; equals
    /// `½ q̇ᵀ M(q) q̇` (property-tested).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn kinetic_energy(&self, q: &[f64], qd: &[f64]) -> f64 {
        let n = self.dim();
        let cache = self.rnea_cache(q, qd, &vec![0.0; n]);
        (0..n)
            .map(|i| self.model().link(i).inertia.kinetic_energy(cache.v[i]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboshape_linalg::Vec3;
    use roboshape_robots::{random_robot, zoo, RandomRobotConfig, Zoo};
    use roboshape_spatial::{Joint, SpatialInertia};
    use roboshape_urdf::RobotBuilder;

    /// A point-mass pendulum: revolute about y at the base, bob of mass m
    /// at distance l below the joint. Closed form:
    /// τ = (I_c + m l²)·q̈ + m·g·l·sin(q).
    fn pendulum(m: f64, l: f64, i_c: f64) -> roboshape_urdf::RobotModel {
        let mut b = RobotBuilder::new("pendulum");
        b.add_link(
            "bob",
            None,
            Joint::revolute(Vec3::unit_y()),
            SpatialInertia::point_like(m, Vec3::new(0.0, 0.0, -l), i_c),
        );
        b.build()
    }

    #[test]
    fn pendulum_gravity_torque() {
        let robot = pendulum(2.0, 0.5, 0.0);
        let dyn_ = Dynamics::new(&robot);
        for q in [-1.2, -0.3, 0.0, 0.4, 1.5] {
            let tau = dyn_.rnea(&[q], &[0.0], &[0.0]);
            let expected = 2.0 * 9.81 * 0.5 * q.sin();
            assert!(
                (tau[0] - expected).abs() < 1e-9,
                "q={q}: got {} expected {expected}",
                tau[0]
            );
        }
    }

    #[test]
    fn pendulum_inertial_torque() {
        let (m, l, ic) = (1.5, 0.4, 0.02);
        let robot = pendulum(m, l, ic);
        // Disable gravity to isolate the inertial term.
        let dyn_ = Dynamics::new(&robot).with_gravity(Vec3::ZERO);
        let qdd = 2.5;
        let tau = dyn_.rnea(&[0.7], &[0.0], &[qdd]);
        let expected = (ic + m * l * l) * qdd;
        assert!(
            (tau[0] - expected).abs() < 1e-9,
            "got {} expected {expected}",
            tau[0]
        );
    }

    #[test]
    fn pendulum_centrifugal_force_is_torque_free() {
        // A spinning pendulum at constant velocity with no gravity needs no
        // torque (centrifugal force is radial).
        let robot = pendulum(1.0, 0.3, 0.0);
        let dyn_ = Dynamics::new(&robot).with_gravity(Vec3::ZERO);
        let tau = dyn_.rnea(&[0.4], &[3.0], &[0.0]);
        assert!(tau[0].abs() < 1e-9, "got {}", tau[0]);
    }

    #[test]
    fn gravity_compensation_holds_robot_still() {
        // τ = RNEA(q, 0, 0) is the gravity-compensation torque: applying it
        // in forward dynamics yields zero acceleration.
        let robot = zoo(Zoo::Baxter);
        let dyn_ = Dynamics::new(&robot);
        let n = robot.num_links();
        let q: Vec<f64> = (0..n).map(|i| 0.3 * (i as f64 + 1.0).sin()).collect();
        let tau = dyn_.rnea(&q, &vec![0.0; n], &vec![0.0; n]);
        let qdd = dyn_.forward_dynamics(&q, &vec![0.0; n], &tau);
        for (i, &a) in qdd.iter().enumerate() {
            assert!(a.abs() < 1e-7, "link {i}: residual acceleration {a}");
        }
    }

    #[test]
    fn forward_inverse_roundtrip_on_all_zoo_robots() {
        for which in Zoo::ALL {
            let robot = zoo(which);
            let dyn_ = Dynamics::new(&robot);
            let n = robot.num_links();
            let q: Vec<f64> = (0..n).map(|i| (0.17 * (i as f64 + 1.0)).sin()).collect();
            let qd: Vec<f64> = (0..n).map(|i| 0.5 * (0.3 * i as f64).cos()).collect();
            let tau: Vec<f64> = (0..n).map(|i| 0.4 * (i as f64 - 2.0)).collect();
            let qdd = dyn_.forward_dynamics(&q, &qd, &tau);
            let tau_back = dyn_.rnea(&q, &qd, &qdd);
            for i in 0..n {
                assert!(
                    (tau_back[i] - tau[i]).abs() < 1e-7,
                    "{which:?} link {i}: {} vs {}",
                    tau_back[i],
                    tau[i]
                );
            }
        }
    }

    #[test]
    fn forward_inverse_roundtrip_on_random_robots() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        for trial in 0..12 {
            let cfg = RandomRobotConfig {
                links: 2 + trial % 9,
                branch_prob: 0.3,
                new_limb_prob: 0.15,
                allow_prismatic: true,
            };
            let robot = random_robot(&mut rng, cfg);
            let dyn_ = Dynamics::new(&robot);
            let n = robot.num_links();
            use rand::Rng;
            let q: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.5..1.5)).collect();
            let qd: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let tau: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let qdd = dyn_.forward_dynamics(&q, &qd, &tau);
            let tau_back = dyn_.rnea(&q, &qd, &qdd);
            for i in 0..n {
                assert!(
                    (tau_back[i] - tau[i]).abs() < 1e-6,
                    "trial {trial} link {i}: {} vs {}",
                    tau_back[i],
                    tau[i]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "q dimension mismatch")]
    fn dimension_mismatch_panics() {
        let robot = zoo(Zoo::Iiwa);
        Dynamics::new(&robot).rnea(&[0.0], &[0.0], &[0.0]);
    }

    #[test]
    fn rnea_is_affine_in_qdd() {
        // τ(q, q̇, q̈) = τ(q, q̇, 0) + M(q)·q̈ — superposition of the inertial
        // term, for arbitrary branching robots.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(808);
        for which in [Zoo::Hyq, Zoo::Jaco3] {
            let robot = zoo(which);
            let n = robot.num_links();
            let dyn_ = Dynamics::new(&robot);
            let q: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let qd: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let qdd: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let bias = dyn_.rnea(&q, &qd, &vec![0.0; n]);
            let m = dyn_.mass_matrix(&q);
            let mqdd = m.mul_vec(&qdd);
            let full = dyn_.rnea(&q, &qd, &qdd);
            for i in 0..n {
                assert!(
                    (full[i] - bias[i] - mqdd[i]).abs() < 1e-8,
                    "{which:?} link {i}"
                );
            }
        }
    }

    #[test]
    fn gravity_torque_is_linear_in_gravity() {
        let robot = zoo(Zoo::Baxter);
        let n = robot.num_links();
        let q: Vec<f64> = (0..n).map(|i| 0.23 * (i as f64 + 1.0).sin()).collect();
        let g1 = Dynamics::new(&robot).rnea(&q, &vec![0.0; n], &vec![0.0; n]);
        let g2 = Dynamics::new(&robot)
            .with_gravity(Vec3::new(0.0, 0.0, -19.62))
            .rnea(&q, &vec![0.0; n], &vec![0.0; n]);
        for i in 0..n {
            assert!((g2[i] - 2.0 * g1[i]).abs() < 1e-9, "link {i}");
        }
    }

    #[test]
    fn cache_exposes_intermediates() {
        let robot = zoo(Zoo::Hyq);
        let n = robot.num_links();
        let cache = Dynamics::new(&robot).rnea_cache(&vec![0.1; n], &vec![0.2; n], &vec![0.0; n]);
        assert_eq!(cache.v.len(), n);
        assert_eq!(cache.a.len(), n);
        assert_eq!(cache.f.len(), n);
        assert_eq!(cache.xup.len(), n);
        // Root link velocity is purely its own joint motion.
        let s = robot.joint(0).motion_subspace();
        assert!((cache.v[0] - s * 0.2).norm() < 1e-12);
    }
}
