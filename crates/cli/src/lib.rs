//! Implementation of the `roboshape` command-line tool.
//!
//! ```text
//! roboshape info <robot.urdf>                      topology + metrics + patterns
//! roboshape generate <robot.urdf> [options]        emit Verilog + design report
//!     --pe-fwd N --pe-bwd N --block N              explicit knobs (default: hybrid heuristic)
//!     --out DIR                                    output directory (default: roboshape_out)
//!     --timings                                    append per-stage pipeline timings
//! roboshape sweep <robot.urdf> [--pareto] [--pruned] [--timings]   design-space CSV on stdout
//! roboshape verify <robot.urdf>                    simulate the generated design vs reference
//! roboshape serve <spec> [options]                 accelerator-as-a-service TCP front-end
//! roboshape router --shards NAME=ADDR,... [options]  consistent-hash requests across shards
//! roboshape loadgen <spec> --port P [options]      drive a running server, print a report
//! ```
//!
//! `serve` and `loadgen` take a *robot spec* instead of a single URDF:
//! `zoo` (all six paper robots), `zoo:NAME` (one of them, e.g.
//! `zoo:iiwa`), or a URDF path.
//!
//! Every command additionally accepts the observability flags
//! `--trace FILE` (write a Chrome `trace_event` JSON capture of the run —
//! load it in `chrome://tracing` or Perfetto; see EXPERIMENTS.md for how
//! to read one) and `--metrics FILE` (write a JSON snapshot of the global
//! [`roboshape::obs::metrics`] registry after the run).
//!
//! The argument parser is hand-rolled (the workspace's dependency policy —
//! see DESIGN.md §5); it supports `--flag value` and `--flag=value`.

#![warn(missing_docs)]

use roboshape::obs;
use roboshape::{
    pareto_frontier, simulate, AcceleratorKnobs, Constraints, Framework, ParallelismProfile,
    PipelineStage, SparsityPattern,
};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// A CLI failure: message plus suggested exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable description.
    pub message: String,
}

impl CliError {
    fn new(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "usage: roboshape <command> <robot.urdf> [options]
  info      print topology, metrics and pattern analysis
  generate  emit Verilog + design report (--pe-fwd N --pe-bwd N --block N --out DIR --timings)
  sweep     print the design-space CSV (--pareto for the frontier only, --pruned for the dominance-pruned frontier sweep, --timings for stage stats)
  verify    simulate the generated design against the reference library
  gantt     draw the generated schedule as an ASCII timeline (--width N)
  kernels   compare FK / inverse-dynamics / gradient accelerators
  energy    power and energy report (with and without PE gating)
  soc       co-design accelerators for several URDFs (extra paths after the first)
  serve     run the accelerator service on TCP (<spec> = zoo | zoo:NAME | robot.urdf)
            (--port P --port-file FILE --queue N --batch N --workers N --max-requests N
             --chaos SEED:RATE --deadline-ms N --backend scalar|lanes
             --shard NAME --loops N)
  router    route requests across shard servers by consistent hashing (no <spec>)
            (--shards NAME=ADDR,... --port P --port-file FILE --max-requests N)
  loadgen   drive a running server or router and print a latency/throughput report
            (--port P --clients N --requests N --rate HZ --kind grad|id|fk
             --workload step|rollout:N|mixed --deadline-us N
             --retries N --timeout-ms N --seed N --cluster)
  health    probe a running server's or router's readiness and circuit state (--port P)
  bench     benchmark-history tooling (an action instead of <robot.urdf>)
            compare  diff bench/current records against a baseline directory,
                     exit nonzero on any out-of-band regression
                     (--baseline DIR --current DIR --smoke)
            accept   copy bench/current records into bench/baselines
  bundle    validation bundles for third-party blind reproduction
            export   write a self-contained bundle (--out DIR --n N --seed S)
            verify   re-run the generators against a bundle directory
                     (positional DIR, default bench/baselines/example-bundle)
global options (any command):
  --trace FILE    write a Chrome trace_event JSON capture of the run
  --metrics FILE  write a JSON metrics snapshot after the run";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand.
    pub command: Command,
    /// Path to the URDF file — or, for `serve`/`loadgen`, the robot
    /// spec (`zoo`, `zoo:NAME`, or a URDF path).
    pub urdf: PathBuf,
    /// Where to write the Chrome trace capture (`--trace`), if anywhere.
    pub trace: Option<PathBuf>,
    /// Where to write the metrics snapshot (`--metrics`), if anywhere.
    pub metrics: Option<PathBuf>,
}

/// The CLI subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `roboshape info`.
    Info,
    /// `roboshape generate`.
    Generate {
        /// Explicit knobs (`None` = framework heuristic).
        knobs: Option<AcceleratorKnobs>,
        /// Output directory.
        out: PathBuf,
        /// Append the per-stage pipeline timing report.
        timings: bool,
    },
    /// `roboshape sweep`.
    Sweep {
        /// Restrict output to the Pareto frontier.
        pareto_only: bool,
        /// Use the dominance-pruned sweep: same frontier, provably
        /// dominated grid rows never scheduled (implies `--pareto`).
        pruned: bool,
        /// Append the per-stage pipeline timing report.
        timings: bool,
    },
    /// `roboshape verify`.
    Verify,
    /// `roboshape gantt`.
    Gantt {
        /// Chart width in columns.
        width: usize,
    },
    /// `roboshape kernels`.
    Kernels,
    /// `roboshape energy`.
    Energy,
    /// `roboshape soc` (the first URDF is `Cli::urdf`; the rest ride
    /// along here).
    Soc {
        /// Additional robot description paths.
        extra: Vec<PathBuf>,
    },
    /// `roboshape serve`: run the accelerator-as-a-service TCP
    /// front-end over the spec'd robots.
    Serve {
        /// TCP port to bind on loopback (0 = ephemeral).
        port: u16,
        /// File to write the bound port number to (for scripts that
        /// bind port 0).
        port_file: Option<PathBuf>,
        /// Per-robot queue capacity.
        queue: usize,
        /// Maximum coalesced ∇FD batch.
        batch: usize,
        /// Worker threads per robot.
        workers: usize,
        /// Exit after this many requests have been answered or shed
        /// (`None` = run until killed).
        max_requests: Option<u64>,
        /// Deterministic fault injection (`--chaos SEED:RATE`).
        chaos: Option<roboshape_serve::FaultConfig>,
        /// Default deadline budget (ms) for requests that carry none.
        deadline_ms: Option<u64>,
        /// Execution backend for batched kernels (`--backend
        /// scalar|lanes`; lanes is the default).
        backend: roboshape::BackendKind,
        /// Shard name announced in hello handshakes (`--shard NAME`;
        /// `solo` when the server runs outside a cluster).
        shard: Option<String>,
        /// Event loops servicing connections (`--loops N`).
        loops: usize,
    },
    /// `roboshape router`: consistent-hash client requests across shard
    /// servers, with admission control and shard-level failover.
    Router {
        /// TCP port to bind on loopback (0 = ephemeral).
        port: u16,
        /// File to write the bound port number to.
        port_file: Option<PathBuf>,
        /// The shard fleet (`--shards NAME=ADDR,...`; a bare port means
        /// loopback).
        shards: Vec<roboshape_serve::ShardSpec>,
        /// Exit after this many client requests have been answered or
        /// shed (`None` = run until killed).
        max_requests: Option<u64>,
    },
    /// `roboshape loadgen`: drive a running server.
    Loadgen {
        /// Server port on loopback.
        port: u16,
        /// Open-loop per-client rate in Hz (`None` = closed loop).
        rate_hz: Option<f64>,
        /// Concurrent client connections.
        clients: usize,
        /// Requests per client.
        requests: usize,
        /// Workload shape: single kernel steps (`--workload step`, the
        /// kernel from `--kind`), rollouts, or mixed chains.
        workload: roboshape_serve::loadgen::Workload,
        /// Relative deadline (µs) attached to every request.
        deadline_us: Option<u64>,
        /// Attempts per request including the first (1 = no retry).
        retries: u32,
        /// Per-response read-timeout budget in milliseconds.
        timeout_ms: Option<u64>,
        /// Seed for deterministic inputs and retry jitter (`--seed N`).
        seed: u64,
        /// Cluster mode: append a cluster accounting line (rerouted /
        /// lost across failovers) to the report.
        cluster: bool,
    },
    /// `roboshape health`: probe a running server's readiness endpoint
    /// and print per-robot circuit-breaker and worker state.
    Health {
        /// Server port on loopback.
        port: u16,
    },
    /// `roboshape bench compare`: diff the current bench records
    /// against a baseline directory with noise-aware direction-aware
    /// bands; exits nonzero on any regression past its band.
    BenchCompare {
        /// Directory of baseline records.
        baseline: PathBuf,
        /// Directory of current records (written by `cargo bench`).
        current: PathBuf,
        /// Force the widened smoke-mode bands even when neither record
        /// is marked smoke.
        smoke: bool,
    },
    /// `roboshape bench accept`: copy the current bench records into
    /// the baseline history directory.
    BenchAccept {
        /// Directory of baseline records.
        baseline: PathBuf,
        /// Directory of current records.
        current: PathBuf,
    },
    /// `roboshape bundle export`: write a self-contained validation
    /// bundle (manifest + expected report snapshots + serving-probe
    /// context) for third-party blind reproduction.
    BundleExport {
        /// Output directory.
        out: PathBuf,
        /// Pinned `ext_zoo` population size.
        zoo_n: usize,
        /// Pinned `ext_zoo` master seed.
        zoo_seed: u64,
    },
    /// `roboshape bundle verify`: re-run the generators and the probe
    /// against a bundle and score the result; exits nonzero unless
    /// every snapshot matches byte-exactly and every invariant holds.
    BundleVerify {
        /// The bundle directory.
        dir: PathBuf,
    },
}

impl Command {
    /// The subcommand's name (the root tracing span of a `--trace` run).
    pub fn name(&self) -> &'static str {
        match self {
            Command::Info => "info",
            Command::Generate { .. } => "generate",
            Command::Sweep { .. } => "sweep",
            Command::Verify => "verify",
            Command::Gantt { .. } => "gantt",
            Command::Kernels => "kernels",
            Command::Energy => "energy",
            Command::Soc { .. } => "soc",
            Command::Serve { .. } => "serve",
            Command::Router { .. } => "router",
            Command::Loadgen { .. } => "loadgen",
            Command::Health { .. } => "health",
            Command::BenchCompare { .. } => "bench_compare",
            Command::BenchAccept { .. } => "bench_accept",
            Command::BundleExport { .. } => "bundle_export",
            Command::BundleVerify { .. } => "bundle_verify",
        }
    }
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] with a usage hint for unknown commands, missing
/// paths, or malformed options.
pub fn parse_args(args: &[String]) -> Result<Cli, CliError> {
    // Peel off the global observability flags first: they are valid on
    // every command, and `soc` treats any non-`--` argument as an extra
    // URDF path, so `--trace t.json` must not leak into per-command
    // parsing.
    let mut trace = None;
    let mut metrics = None;
    let mut filtered: Vec<String> = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        let mut take = |slot: &mut Option<PathBuf>, name: &str| -> Result<bool, CliError> {
            if let Some(v) = a.strip_prefix(&format!("{name}=")) {
                *slot = Some(PathBuf::from(v));
                return Ok(true);
            }
            if a == name {
                i += 1;
                *slot = Some(PathBuf::from(args.get(i).ok_or_else(|| {
                    CliError::new(format!("option {name} needs a file path"))
                })?));
                return Ok(true);
            }
            Ok(false)
        };
        if !take(&mut trace, "--trace")? && !take(&mut metrics, "--metrics")? {
            filtered.push(args[i].clone());
        }
        i += 1;
    }

    let mut it = filtered.iter();
    let cmd = it.next().ok_or_else(|| CliError::new(USAGE))?;
    // `health` and `router` address servers, not robot descriptions —
    // no spec argument.
    let no_spec = String::from("-");
    let urdf = if matches!(cmd.as_str(), "health" | "router") {
        &no_spec
    } else if matches!(cmd.as_str(), "bench" | "bundle") {
        // These take an action token in the spec slot, not a robot.
        it.next().ok_or_else(|| {
            CliError::new(match cmd.as_str() {
                "bench" => "bench needs an action: compare | accept",
                _ => "bundle needs an action: export | verify",
            })
        })?
    } else {
        it.next()
            .ok_or_else(|| CliError::new("missing <robot.urdf> argument"))?
    };
    let rest: Vec<&String> = it.collect();
    let get_opt = |name: &str| -> Result<Option<String>, CliError> {
        let mut i = 0;
        while i < rest.len() {
            let a = rest[i].as_str();
            if let Some(v) = a.strip_prefix(&format!("{name}=")) {
                return Ok(Some(v.to_string()));
            }
            if a == name {
                return rest
                    .get(i + 1)
                    .map(|v| Some(v.to_string()))
                    .ok_or_else(|| CliError::new(format!("option {name} needs a value")));
            }
            i += 1;
        }
        Ok(None)
    };
    let get_usize = |name: &str| -> Result<Option<usize>, CliError> {
        match get_opt(name)? {
            None => Ok(None),
            Some(v) => v
                .parse::<usize>()
                .map(Some)
                .map_err(|_| CliError::new(format!("option {name} needs an integer, got `{v}`"))),
        }
    };

    let command = match cmd.as_str() {
        "info" => Command::Info,
        "verify" => Command::Verify,
        "gantt" => Command::Gantt {
            width: get_usize("--width")?.unwrap_or(80).max(1),
        },
        "kernels" => Command::Kernels,
        "energy" => Command::Energy,
        "soc" => Command::Soc {
            extra: rest
                .iter()
                .filter(|a| !a.starts_with("--"))
                .map(PathBuf::from)
                .collect(),
        },
        "sweep" => Command::Sweep {
            pareto_only: rest.iter().any(|a| a.as_str() == "--pareto"),
            pruned: rest.iter().any(|a| a.as_str() == "--pruned"),
            timings: rest.iter().any(|a| a.as_str() == "--timings"),
        },
        "generate" => {
            let pe_fwd = get_usize("--pe-fwd")?;
            let pe_bwd = get_usize("--pe-bwd")?;
            let block = get_usize("--block")?;
            let knobs = match (pe_fwd, pe_bwd, block) {
                (None, None, None) => None,
                (f, b, blk) => {
                    // Partial knobs: fall back to 1 so the user sees the
                    // effect of what they set; the heuristic path is the
                    // no-flags case.
                    Some(AcceleratorKnobs::new(
                        f.unwrap_or(1).max(1),
                        b.unwrap_or(1).max(1),
                        blk.unwrap_or(1).max(1),
                    ))
                }
            };
            let out = get_opt("--out")?
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("roboshape_out"));
            let timings = rest.iter().any(|a| a.as_str() == "--timings");
            Command::Generate {
                knobs,
                out,
                timings,
            }
        }
        "serve" => {
            let port = get_usize("--port")?.unwrap_or(0);
            if port > u16::MAX as usize {
                return Err(CliError::new(format!(
                    "--port {port} is not a valid TCP port"
                )));
            }
            let chaos =
                match get_opt("--chaos")? {
                    None => None,
                    Some(v) => Some(roboshape_serve::FaultConfig::parse(&v).map_err(|e| {
                        CliError::new(format!("option --chaos needs SEED:RATE: {e}"))
                    })?),
                };
            let backend = match get_opt("--backend")?.as_deref() {
                None | Some("lanes") => roboshape::BackendKind::Lanes,
                Some("scalar") => roboshape::BackendKind::Scalar,
                Some(other) => {
                    return Err(CliError::new(format!(
                        "option --backend must be scalar or lanes, got `{other}`"
                    )))
                }
            };
            Command::Serve {
                port: port as u16,
                port_file: get_opt("--port-file")?.map(PathBuf::from),
                queue: get_usize("--queue")?.unwrap_or(64).max(1),
                batch: get_usize("--batch")?.unwrap_or(8).max(1),
                workers: get_usize("--workers")?.unwrap_or(2).max(1),
                max_requests: get_usize("--max-requests")?.map(|v| v as u64),
                chaos,
                deadline_ms: get_usize("--deadline-ms")?.map(|v| v as u64),
                backend,
                shard: get_opt("--shard")?,
                loops: get_usize("--loops")?.unwrap_or(1).max(1),
            }
        }
        "router" => {
            let port = get_usize("--port")?.unwrap_or(0);
            if port > u16::MAX as usize {
                return Err(CliError::new(format!(
                    "--port {port} is not a valid TCP port"
                )));
            }
            let spec = get_opt("--shards")?
                .ok_or_else(|| CliError::new("router needs --shards NAME=ADDR,..."))?;
            let mut shards = Vec::new();
            for part in spec.split(',').filter(|p| !p.is_empty()) {
                let (name, addr_text) = part.split_once('=').ok_or_else(|| {
                    CliError::new(format!("--shards entry `{part}` is not NAME=ADDR"))
                })?;
                let addr = if let Ok(p) = addr_text.parse::<u16>() {
                    std::net::SocketAddr::from(([127, 0, 0, 1], p))
                } else {
                    addr_text.parse().map_err(|_| {
                        CliError::new(format!(
                            "--shards entry `{part}` has an invalid address `{addr_text}`"
                        ))
                    })?
                };
                shards.push(roboshape_serve::ShardSpec {
                    name: name.to_string(),
                    addr,
                });
            }
            if shards.is_empty() {
                return Err(CliError::new("router needs at least one shard"));
            }
            Command::Router {
                port: port as u16,
                port_file: get_opt("--port-file")?.map(PathBuf::from),
                shards,
                max_requests: get_usize("--max-requests")?.map(|v| v as u64),
            }
        }
        "health" => {
            let port = get_usize("--port")?
                .ok_or_else(|| CliError::new("health needs --port of a running server"))?;
            if port == 0 || port > u16::MAX as usize {
                return Err(CliError::new(format!(
                    "--port {port} is not a valid TCP port"
                )));
            }
            Command::Health { port: port as u16 }
        }
        "loadgen" => {
            let port = get_usize("--port")?
                .ok_or_else(|| CliError::new("loadgen needs --port of a running server"))?;
            if port == 0 || port > u16::MAX as usize {
                return Err(CliError::new(format!(
                    "--port {port} is not a valid TCP port"
                )));
            }
            let rate_hz = match get_opt("--rate")? {
                None => None,
                Some(v) => Some(v.parse::<f64>().map_err(|_| {
                    CliError::new(format!("option --rate needs a number, got `{v}`"))
                })?),
            };
            let kind = match get_opt("--kind")?.as_deref() {
                None | Some("grad") => roboshape::KernelKind::DynamicsGradient,
                Some("id") => roboshape::KernelKind::InverseDynamics,
                Some("fk") => roboshape::KernelKind::ForwardKinematics,
                Some(other) => {
                    return Err(CliError::new(format!(
                        "option --kind must be grad, id or fk, got `{other}`"
                    )))
                }
            };
            let workload = match get_opt("--workload")?.as_deref() {
                None | Some("step") => roboshape_serve::loadgen::Workload::Step(kind),
                Some("mixed") => roboshape_serve::loadgen::Workload::Mixed,
                Some(spec) => match spec.strip_prefix("rollout:") {
                    Some(steps) => match steps.parse::<u32>() {
                        Ok(steps) if steps >= 1 => {
                            roboshape_serve::loadgen::Workload::Rollout(steps)
                        }
                        _ => {
                            return Err(CliError::new(format!(
                                "option --workload rollout:N needs N >= 1, got `{steps}`"
                            )))
                        }
                    },
                    None => {
                        return Err(CliError::new(format!(
                            "option --workload must be step, rollout:N or mixed, got `{spec}`"
                        )))
                    }
                },
            };
            Command::Loadgen {
                port: port as u16,
                rate_hz,
                clients: get_usize("--clients")?.unwrap_or(4).max(1),
                requests: get_usize("--requests")?.unwrap_or(16).max(1),
                workload,
                deadline_us: get_usize("--deadline-us")?.map(|v| v as u64),
                retries: get_usize("--retries")?.unwrap_or(3).max(1) as u32,
                timeout_ms: get_usize("--timeout-ms")?.map(|v| v as u64),
                seed: get_usize("--seed")?.map_or(1, |v| v as u64),
                cluster: rest.iter().any(|a| a.as_str() == "--cluster"),
            }
        }
        "bench" => {
            let baseline = get_opt("--baseline")?
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("bench/baselines"));
            let current = get_opt("--current")?
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("bench/current"));
            match urdf.as_str() {
                "compare" => Command::BenchCompare {
                    baseline,
                    current,
                    smoke: rest.iter().any(|a| a.as_str() == "--smoke"),
                },
                "accept" => Command::BenchAccept { baseline, current },
                other => {
                    return Err(CliError::new(format!(
                        "unknown bench action `{other}` (known: compare, accept)"
                    )))
                }
            }
        }
        "bundle" => match urdf.as_str() {
            "export" => {
                let zoo_n = get_usize("--n")?.unwrap_or(48).max(1);
                let zoo_seed = get_usize("--seed")?.map_or(42, |v| v as u64);
                Command::BundleExport {
                    out: get_opt("--out")?
                        .map(PathBuf::from)
                        .unwrap_or_else(|| PathBuf::from("roboshape_bundle")),
                    zoo_n,
                    zoo_seed,
                }
            }
            "verify" => Command::BundleVerify {
                dir: rest
                    .iter()
                    .find(|a| !a.starts_with("--"))
                    .map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from("bench/baselines/example-bundle")),
            },
            other => {
                return Err(CliError::new(format!(
                    "unknown bundle action `{other}` (known: export, verify)"
                )))
            }
        },
        other => return Err(CliError::new(format!("unknown command `{other}`\n{USAGE}"))),
    };
    Ok(Cli {
        command,
        urdf: PathBuf::from(urdf),
        trace,
        metrics,
    })
}

/// Appends the `--timings` block: the per-stage pipeline report plus the
/// artifact-store contents.
fn append_timings(out: &mut String, fw: &Framework) {
    let _ = writeln!(out, "\n== pipeline timings ==");
    let _ = writeln!(out, "{}", fw.pipeline().observer().report());
    let _ = writeln!(out, "{}", fw.pipeline().store().stats());
}

/// Executes a parsed CLI invocation; returns the text to print.
///
/// When `--trace` was given, the whole run is captured under a root
/// `cat = "cli"` span through a [`roboshape::obs::ChromeTraceSink`] and
/// written as Chrome `trace_event` JSON; `--metrics` writes the global
/// registry snapshot after the run. Both files are written even when the
/// command itself fails, so a failing run can still be inspected.
///
/// # Errors
///
/// Returns a [`CliError`] for unreadable files, invalid URDF, or output
/// I/O failures.
pub fn run(cli: &Cli) -> Result<String, CliError> {
    let sink = cli
        .trace
        .as_ref()
        .map(|_| Arc::new(obs::ChromeTraceSink::new()));
    if let Some(s) = &sink {
        obs::set_sink(s.clone());
    }
    let result = {
        // Dropped before serialization so the root span reaches the sink.
        let _root = obs::span("cli", cli.command.name());
        run_command(cli)
    };
    if let Some(s) = sink {
        obs::clear_sink();
        let path = cli.trace.as_ref().expect("trace sink implies trace path");
        std::fs::write(path, s.to_chrome_json())
            .map_err(|e| CliError::new(format!("cannot write trace {}: {e}", path.display())))?;
    }
    if let Some(path) = &cli.metrics {
        std::fs::write(path, obs::metrics().snapshot().to_json())
            .map_err(|e| CliError::new(format!("cannot write metrics {}: {e}", path.display())))?;
    }
    result
}

/// Resolves a `serve`/`loadgen` robot spec — `zoo`, `zoo:NAME`, or a
/// URDF path — to named robot models.
fn resolve_robots(
    spec: &std::path::Path,
) -> Result<Vec<(String, roboshape::RobotModel)>, CliError> {
    use roboshape_robots::{zoo, Zoo};
    let text = spec.to_string_lossy();
    if text == "zoo" {
        return Ok(Zoo::ALL
            .into_iter()
            .map(|which| (which.name().to_string(), zoo(which)))
            .collect());
    }
    if let Some(name) = text.strip_prefix("zoo:") {
        let which = Zoo::ALL
            .into_iter()
            .find(|w| w.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| {
                let known: Vec<&str> = Zoo::ALL.iter().map(|w| w.name()).collect();
                CliError::new(format!(
                    "unknown zoo robot `{name}` (known: {})",
                    known.join(", ")
                ))
            })?;
        return Ok(vec![(which.name().to_string(), zoo(which))]);
    }
    let urdf = std::fs::read_to_string(spec)
        .map_err(|e| CliError::new(format!("cannot read {}: {e}", spec.display())))?;
    let fw =
        Framework::from_urdf(&urdf).map_err(|e| CliError::new(format!("invalid URDF: {e}")))?;
    let robot = fw.robot().clone();
    Ok(vec![(robot.name().to_string(), robot)])
}

/// `roboshape serve`: bind, announce, serve until `--max-requests`
/// responses (or forever), then drain gracefully and summarise.
#[allow(clippy::too_many_arguments)] // mirrors the flag list one-to-one
fn run_serve(
    cli: &Cli,
    port: u16,
    port_file: Option<&PathBuf>,
    queue: usize,
    batch: usize,
    workers: usize,
    max_requests: Option<u64>,
    chaos: Option<roboshape_serve::FaultConfig>,
    deadline_ms: Option<u64>,
    backend: roboshape::BackendKind,
    shard: Option<&String>,
    loops: usize,
) -> Result<String, CliError> {
    use roboshape_serve::{Engine, EngineConfig, Server, ServerOptions};
    let robots = resolve_robots(&cli.urdf)?;
    let engine = Engine::new(EngineConfig {
        queue_capacity: queue,
        max_batch: batch,
        workers_per_robot: workers,
        start_paused: false,
        default_deadline: deadline_ms.map(std::time::Duration::from_millis),
        chaos,
        backend,
        ..EngineConfig::default()
    });
    let mut out = String::new();
    for (name, model) in robots {
        let _ = writeln!(
            out,
            "registered {:<12} {:>2} links",
            name,
            model.num_links()
        );
        engine.register(name, model);
    }
    let options = ServerOptions {
        shard_name: shard.cloned().unwrap_or_else(|| "solo".to_string()),
        loops,
    };
    let shard_note = shard.map(|s| format!(" shard={s}")).unwrap_or_default();
    let server = Server::start_with(engine.clone(), ("127.0.0.1", port), options)
        .map_err(|e| CliError::new(format!("cannot bind 127.0.0.1:{port}: {e}")))?;
    let bound = server.port();
    if let Some(path) = port_file {
        std::fs::write(path, format!("{bound}\n"))
            .map_err(|e| CliError::new(format!("cannot write {}: {e}", path.display())))?;
    }
    // Announce on stdout immediately — scripts wait for the port line
    // (the returned string prints only after the run finishes).
    let chaos_note = chaos
        .map(|c| format!(" chaos={}:{}", c.seed, c.crash))
        .unwrap_or_default();
    println!(
        "serving on 127.0.0.1:{bound} (queue={queue} batch={batch} workers={workers}{chaos_note}{shard_note})"
    );
    match max_requests {
        Some(target) => {
            loop {
                let stats = engine.stats();
                if stats.responses() + stats.shed >= target {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            server.shutdown();
            let stats = engine.stats();
            let _ = writeln!(
                out,
                "served {} requests: ok={} shed={} deadline_exceeded={} bad={} crashed={} degraded={} batches={} largest_batch={}",
                stats.responses() + stats.shed,
                stats.completed,
                stats.shed,
                stats.deadline_exceeded,
                stats.bad_requests,
                stats.crashed,
                stats.degraded,
                stats.batches,
                stats.largest_batch,
            );
            let _ = writeln!(
                out,
                "resilience: worker_restarts={} circuit_trips={} injected: stalls={} crashes={} pressure={}",
                stats.worker_restarts,
                stats.circuit_trips,
                stats.injected_stalls,
                stats.injected_crashes,
                stats.injected_pressure,
            );
            Ok(out)
        }
        None => {
            // Serve until the process is killed.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
    }
}

/// `roboshape router`: start the cluster front-end over an existing
/// shard fleet, announce the bound port, and (with `--max-requests`)
/// exit after that many client requests have settled.
fn run_router(
    port: u16,
    port_file: Option<&PathBuf>,
    shards: &[roboshape_serve::ShardSpec],
    max_requests: Option<u64>,
) -> Result<String, CliError> {
    use roboshape_serve::{Router, RouterConfig};
    let names: Vec<String> = shards.iter().map(|s| s.name.clone()).collect();
    let router = Router::start(RouterConfig::new(shards.to_vec()), ("127.0.0.1", port))
        .map_err(|e| CliError::new(format!("cannot bind 127.0.0.1:{port}: {e}")))?;
    let bound = router.port();
    if let Some(path) = port_file {
        std::fs::write(path, format!("{bound}\n"))
            .map_err(|e| CliError::new(format!("cannot write {}: {e}", path.display())))?;
    }
    // Announce on stdout immediately — scripts wait for the port line.
    println!(
        "routing on 127.0.0.1:{bound} across {} shards ({})",
        shards.len(),
        names.join(", ")
    );
    match max_requests {
        Some(target) => {
            let stats = router.stats();
            while stats.settled() < target {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            router.shutdown();
            use std::sync::atomic::Ordering::Relaxed;
            Ok(format!(
                "routed {} requests: responses={} shed={} rerouted={} failovers={}\n",
                stats.settled(),
                stats.responses.load(Relaxed),
                stats.shed.load(Relaxed),
                stats.rerouted.load(Relaxed),
                stats.failovers.load(Relaxed),
            ))
        }
        None => {
            // Route until the process is killed.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
    }
}

/// `roboshape loadgen`: resolve the spec to robot names/sizes, run the
/// configured load, report.
#[allow(clippy::too_many_arguments)] // mirrors the flag list one-to-one
fn run_loadgen_command(
    cli: &Cli,
    port: u16,
    rate_hz: Option<f64>,
    clients: usize,
    requests: usize,
    workload: roboshape_serve::loadgen::Workload,
    deadline_us: Option<u64>,
    retries: u32,
    timeout_ms: Option<u64>,
    seed: u64,
    cluster: bool,
) -> Result<String, CliError> {
    use roboshape_serve::loadgen::{
        run_loadgen, LoadMode, LoadgenConfig, RetryPolicy, TargetRobot,
    };
    let robots = resolve_robots(&cli.urdf)?
        .into_iter()
        .map(|(name, model)| TargetRobot {
            name,
            links: model.num_links(),
        })
        .collect();
    let cfg = LoadgenConfig {
        mode: match rate_hz {
            Some(rate_hz) => LoadMode::Open { rate_hz },
            None => LoadMode::Closed,
        },
        clients,
        requests_per_client: requests,
        robots,
        workload,
        deadline: deadline_us.map(std::time::Duration::from_micros),
        seed,
        retry: RetryPolicy {
            max_attempts: retries.max(1),
            ..RetryPolicy::default()
        },
        timeout: timeout_ms.map(std::time::Duration::from_millis),
    };
    let report = run_loadgen(("127.0.0.1", port), &cfg)
        .map_err(|e| CliError::new(format!("loadgen against 127.0.0.1:{port} failed: {e}")))?;
    if cluster {
        // The cluster accounting line CI greps: every request settled
        // (lost=0) even when failover rerouted some of them.
        return Ok(format!(
            "{report}\ncluster: rerouted={} lost={}\n",
            report.rerouted,
            report.lost()
        ));
    }
    Ok(format!("{report}\n"))
}

/// `roboshape health`: one readiness probe against a running server.
/// Exit is clean when the server answers and reports ready; a degraded
/// (non-ready) report is still printed but returned as an error so
/// scripts can gate on the exit code.
fn run_health(port: u16) -> Result<String, CliError> {
    use roboshape_serve::Client;
    let mut client = Client::connect(("127.0.0.1", port))
        .map_err(|e| CliError::new(format!("cannot connect to 127.0.0.1:{port}: {e}")))?;
    client
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .map_err(|e| CliError::new(format!("cannot configure socket: {e}")))?;
    let report = client
        .health()
        .map_err(|e| CliError::new(format!("health probe failed: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(out, "ready={} robots={}", report.ready, report.robots.len());
    for robot in &report.robots {
        let _ = writeln!(
            out,
            "  {:<12} circuit={:<9} workers_alive={}",
            robot.name,
            robot.circuit.to_string(),
            robot.workers_alive
        );
    }
    if report.ready {
        Ok(out)
    } else {
        Err(CliError::new(format!("{out}not ready")))
    }
}

/// The benches whose records the compare gate covers, in the order the
/// report prints them.
const GATED_BENCHES: [&str; 4] = [
    "sim_throughput",
    "serve_throughput",
    "zoo_population",
    "dse_sweep",
];

/// `roboshape bench compare`: load every `<bench>.json` pair from the
/// current and baseline directories, diff them with noise-aware bands,
/// and fail (nonzero exit) when any gated metric regresses past its
/// band or a gated metric disappeared. Benches with no record on
/// either side are reported and skipped — but comparing *nothing* is
/// an error, not a pass.
fn run_bench_compare(
    baseline_dir: &std::path::Path,
    current_dir: &std::path::Path,
    smoke: bool,
) -> Result<String, CliError> {
    use roboshape_benchrec::{compare::compare, BenchRecord, CompareConfig};
    let cfg = CompareConfig {
        force_smoke: smoke,
        ..CompareConfig::default()
    };
    let mut out = String::new();
    let mut compared = 0usize;
    let mut failed = 0usize;
    for bench in GATED_BENCHES {
        let cur_path = current_dir.join(format!("{bench}.json"));
        let base_path = baseline_dir.join(format!("{bench}.json"));
        if !cur_path.exists() {
            let _ = writeln!(
                out,
                "== {bench}: no current record at {} (run `cargo bench`) — skipped\n",
                cur_path.display()
            );
            continue;
        }
        if !base_path.exists() {
            let _ = writeln!(
                out,
                "== {bench}: no baseline at {} (accept one with `roboshape bench accept`) — skipped\n",
                base_path.display()
            );
            continue;
        }
        // A malformed record on either side is a hard error, not a
        // skip: a gate that shrugs at corrupt baselines gates nothing.
        let baseline = BenchRecord::load(&base_path)
            .map_err(|e| CliError::new(format!("{}: {e}", base_path.display())))?;
        let current = BenchRecord::load(&cur_path)
            .map_err(|e| CliError::new(format!("{}: {e}", cur_path.display())))?;
        let report = compare(&baseline, &current, &cfg);
        let _ = writeln!(
            out,
            "baseline {} → current {}",
            baseline.commit, current.commit
        );
        let _ = writeln!(out, "{}", report.render());
        compared += 1;
        if report.failed() {
            failed += 1;
        }
    }
    if compared == 0 {
        return Err(CliError::new(format!(
            "{out}bench compare: nothing to compare"
        )));
    }
    if failed > 0 {
        return Err(CliError::new(format!(
            "{out}bench compare: FAIL ({failed} of {compared} benches regressed)"
        )));
    }
    let _ = writeln!(out, "bench compare: PASS ({compared} benches within bands)");
    Ok(out)
}

/// `roboshape bench accept`: promote the current records to baselines.
fn run_bench_accept(
    baseline_dir: &std::path::Path,
    current_dir: &std::path::Path,
) -> Result<String, CliError> {
    use roboshape_benchrec::BenchRecord;
    let mut out = String::new();
    let mut accepted = 0usize;
    for bench in GATED_BENCHES {
        let cur_path = current_dir.join(format!("{bench}.json"));
        if !cur_path.exists() {
            let _ = writeln!(out, "{bench}: no current record — skipped");
            continue;
        }
        // Round-trip through the parser so a truncated file can never
        // be promoted to a baseline.
        let record = BenchRecord::load(&cur_path)
            .map_err(|e| CliError::new(format!("{}: {e}", cur_path.display())))?;
        let dest = baseline_dir.join(format!("{bench}.json"));
        record
            .save(&dest)
            .map_err(|e| CliError::new(e.to_string()))?;
        let _ = writeln!(
            out,
            "{bench}: accepted {} ({} metrics) → {}",
            record.commit,
            record.metrics.len(),
            dest.display()
        );
        accepted += 1;
    }
    if accepted == 0 {
        return Err(CliError::new(format!(
            "{out}bench accept: no current records (run `cargo bench` first)"
        )));
    }
    Ok(out)
}

/// The deterministic experiment reports a validation bundle snapshots,
/// and the pinned load the serving probe drives. `ext_zoo` is rendered
/// through [`roboshape_experiments::ext_zoo_with`] at the manifest's
/// pinned `(zoo_n, zoo_seed)`; everything else comes from
/// [`roboshape_experiments::report_generators`]. Two reports are
/// excluded on principle: `ext_serve` prints wall-clock timings, and
/// `ext_chaos` counters depend on how injected worker stalls race the
/// queue (the fault *schedule* is seeded, the interleaving is not).
/// Both are covered by the probe invariants instead.
const BUNDLE_SNAPSHOTS: [&str; 10] = [
    "table1",
    "table2",
    "table3",
    "fig9",
    "fig10",
    "fig12",
    "fig16",
    "ext_kernels",
    "ext_zoo",
    "verify",
];

/// Clients driven by the validation probe.
const PROBE_CLIENTS: usize = 4;
/// Requests per probe client.
const PROBE_REQUESTS: usize = 16;

/// Renders one bundle snapshot by name at the pinned seeds.
fn render_bundle_report(name: &str, zoo_n: usize, zoo_seed: u64) -> Option<String> {
    if name == "ext_zoo" {
        return Some(roboshape_experiments::ext_zoo_with(zoo_n, zoo_seed));
    }
    roboshape_experiments::report_generators()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, generate)| generate())
}

/// One closed-loop ∇FD pass over the full zoo against an in-process
/// loopback server: the bundle's live serving probe. Latencies and the
/// failure histogram go into the manifest as machine-dependent context;
/// `lost == 0` / `errors == 0` are the invariants `bundle verify`
/// re-checks.
fn validation_probe(seed: u64) -> Result<roboshape_serve::loadgen::LoadgenReport, CliError> {
    use roboshape_robots::{zoo, Zoo};
    use roboshape_serve::loadgen::{
        run_loadgen, LoadMode, LoadgenConfig, RetryPolicy, TargetRobot, Workload,
    };
    use roboshape_serve::{Engine, EngineConfig, Server};
    let engine = Engine::new(EngineConfig::default());
    let robots: Vec<TargetRobot> = Zoo::ALL
        .into_iter()
        .map(|which| {
            let model = zoo(which);
            let links = model.num_links();
            engine.register(which.name(), model);
            TargetRobot {
                name: which.name().to_string(),
                links,
            }
        })
        .collect();
    let server = Server::start(engine, ("127.0.0.1", 0))
        .map_err(|e| CliError::new(format!("probe cannot bind loopback: {e}")))?;
    let cfg = LoadgenConfig {
        mode: LoadMode::Closed,
        clients: PROBE_CLIENTS,
        requests_per_client: PROBE_REQUESTS,
        robots,
        workload: Workload::Step(roboshape::KernelKind::DynamicsGradient),
        deadline: None,
        seed,
        retry: RetryPolicy::none(),
        timeout: None,
    };
    // One warm-up pass binds the worker arenas, then the measured pass.
    run_loadgen(("127.0.0.1", server.port()), &cfg)
        .map_err(|e| CliError::new(format!("probe warm-up failed: {e}")))?;
    let report = run_loadgen(("127.0.0.1", server.port()), &cfg)
        .map_err(|e| CliError::new(format!("probe run failed: {e}")))?;
    server.shutdown();
    Ok(report)
}

/// `roboshape bundle export`.
fn run_bundle_export(
    out_dir: &std::path::Path,
    zoo_n: usize,
    zoo_seed: u64,
) -> Result<String, CliError> {
    use roboshape_benchrec::{fnv1a64, record, Manifest, SnapshotEntry};
    let expected = out_dir.join("expected");
    std::fs::create_dir_all(&expected)
        .map_err(|e| CliError::new(format!("cannot create {}: {e}", expected.display())))?;
    let mut out = String::new();
    let mut snapshots = Vec::new();
    for name in BUNDLE_SNAPSHOTS {
        let body = render_bundle_report(name, zoo_n, zoo_seed)
            .ok_or_else(|| CliError::new(format!("unknown bundle report `{name}`")))?;
        let file = format!("expected/{name}.txt");
        std::fs::write(out_dir.join(&file), &body)
            .map_err(|e| CliError::new(format!("cannot write {file}: {e}")))?;
        let entry = SnapshotEntry {
            name: name.to_string(),
            file,
            bytes: body.len() as u64,
            fnv64: fnv1a64(body.as_bytes()),
        };
        let _ = writeln!(
            out,
            "snapshot {:<14} {:>7} bytes  fnv64 {:016x}",
            entry.name, entry.bytes, entry.fnv64
        );
        snapshots.push(entry);
    }
    let probe_seed = 5u64;
    let probe = validation_probe(probe_seed)?;
    let mut context = std::collections::BTreeMap::new();
    context.insert("latency.p50_us".to_string(), probe.p50_us as f64);
    context.insert("latency.p90_us".to_string(), probe.p90_us as f64);
    context.insert("latency.p99_us".to_string(), probe.p99_us as f64);
    context.insert("throughput_rps".to_string(), probe.throughput_rps);
    context.insert("histogram.ok".to_string(), probe.ok as f64);
    context.insert("histogram.shed".to_string(), probe.shed as f64);
    context.insert(
        "histogram.deadline_exceeded".to_string(),
        probe.deadline_exceeded as f64,
    );
    context.insert("histogram.errors".to_string(), probe.errors as f64);
    context.insert("histogram.lost".to_string(), probe.lost() as f64);
    let manifest = Manifest {
        commit: record::current_commit(),
        machine: record::MachineInfo::detect(false),
        seeds: [
            ("zoo_n".to_string(), zoo_n as u64),
            ("zoo_seed".to_string(), zoo_seed),
            ("probe_seed".to_string(), probe_seed),
        ]
        .into_iter()
        .collect(),
        snapshots,
        context,
    };
    std::fs::write(out_dir.join("manifest.json"), manifest.to_json())
        .map_err(|e| CliError::new(format!("cannot write manifest: {e}")))?;
    let _ = writeln!(
        out,
        "probe: {} ok / {} sent, p50 {}us p90 {}us p99 {}us",
        probe.ok, probe.sent, probe.p50_us, probe.p90_us, probe.p99_us
    );
    let _ = writeln!(
        out,
        "wrote bundle ({} snapshots, commit {}) to {}",
        manifest.snapshots.len(),
        manifest.commit,
        out_dir.display()
    );
    Ok(out)
}

/// `roboshape bundle verify`.
fn run_bundle_verify(dir: &std::path::Path) -> Result<String, CliError> {
    use roboshape_benchrec::{record, Manifest, SnapshotStatus, VerifyOutcome};
    let manifest = Manifest::load(dir).map_err(|e| CliError::new(e.to_string()))?;
    let zoo_n = *manifest.seeds.get("zoo_n").unwrap_or(&48) as usize;
    let zoo_seed = *manifest.seeds.get("zoo_seed").unwrap_or(&42);
    let probe_seed = *manifest.seeds.get("probe_seed").unwrap_or(&5);
    let mut outcome = VerifyOutcome::new();
    for entry in &manifest.snapshots {
        match render_bundle_report(&entry.name, zoo_n, zoo_seed) {
            Some(regenerated) => outcome.check_snapshot(dir, entry, &regenerated),
            None => outcome.snapshots.push((
                entry.name.clone(),
                SnapshotStatus::Corrupt(format!(
                    "this build has no generator named `{}`",
                    entry.name
                )),
            )),
        }
    }
    let probe = validation_probe(probe_seed)?;
    outcome
        .invariants
        .push(("probe.lost=0".to_string(), probe.lost() == 0));
    outcome
        .invariants
        .push(("probe.errors=0".to_string(), probe.errors == 0));
    // Machine-dependent context is reported, never gated: the whole
    // point of the bundle is that a third party on different hardware
    // can still score it.
    let fmt_us = |key: &str| -> String {
        manifest
            .context
            .get(key)
            .map(|v| format!("{v:.0}"))
            .unwrap_or_else(|| "?".to_string())
    };
    outcome.notes.push(format!(
        "context: p50 {}us → {}us, p99 {}us → {}us (exporting machine → this machine, informational)",
        fmt_us("latency.p50_us"),
        probe.p50_us,
        fmt_us("latency.p99_us"),
        probe.p99_us
    ));
    let commit = record::current_commit();
    if commit != manifest.commit {
        outcome.notes.push(format!(
            "note: bundle was exported at {} but this tree is {commit} (expected for a committed bundle)",
            manifest.commit
        ));
    }
    let machine = record::MachineInfo::detect(false);
    if !machine.comparable_to(&manifest.machine) {
        outcome.notes.push(
            "note: different machine than the exporter — context latencies are not comparable"
                .to_string(),
        );
    }
    let text = outcome.render();
    if outcome.passed() {
        Ok(text)
    } else {
        Err(CliError::new(format!("{text}bundle verify: FAIL")))
    }
}

fn run_command(cli: &Cli) -> Result<String, CliError> {
    // The serving commands interpret `cli.urdf` as a robot spec and do
    // their own loading; dispatch before the single-URDF read below.
    match &cli.command {
        Command::Serve {
            port,
            port_file,
            queue,
            batch,
            workers,
            max_requests,
            chaos,
            deadline_ms,
            backend,
            shard,
            loops,
        } => {
            return run_serve(
                cli,
                *port,
                port_file.as_ref(),
                *queue,
                *batch,
                *workers,
                *max_requests,
                *chaos,
                *deadline_ms,
                *backend,
                shard.as_ref(),
                *loops,
            )
        }
        Command::Router {
            port,
            port_file,
            shards,
            max_requests,
        } => return run_router(*port, port_file.as_ref(), shards, *max_requests),
        Command::Loadgen {
            port,
            rate_hz,
            clients,
            requests,
            workload,
            deadline_us,
            retries,
            timeout_ms,
            seed,
            cluster,
        } => {
            return run_loadgen_command(
                cli,
                *port,
                *rate_hz,
                *clients,
                *requests,
                *workload,
                *deadline_us,
                *retries,
                *timeout_ms,
                *seed,
                *cluster,
            )
        }
        Command::Health { port } => return run_health(*port),
        Command::BenchCompare {
            baseline,
            current,
            smoke,
        } => return run_bench_compare(baseline, current, *smoke),
        Command::BenchAccept { baseline, current } => return run_bench_accept(baseline, current),
        Command::BundleExport {
            out,
            zoo_n,
            zoo_seed,
        } => return run_bundle_export(out, *zoo_n, *zoo_seed),
        Command::BundleVerify { dir } => return run_bundle_verify(dir),
        _ => {}
    }

    let urdf = std::fs::read_to_string(&cli.urdf)
        .map_err(|e| CliError::new(format!("cannot read {}: {e}", cli.urdf.display())))?;
    let fw =
        Framework::from_urdf(&urdf).map_err(|e| CliError::new(format!("invalid URDF: {e}")))?;
    let robot = fw.robot().clone();

    let mut out = String::new();
    match &cli.command {
        Command::Info => {
            let _ = writeln!(out, "robot: {} ({} links)", robot.name(), robot.num_links());
            let _ = writeln!(out, "metrics: {}", fw.metrics());
            let _ = writeln!(out, "topology:\n{}", robot.topology().render());
            let p = ParallelismProfile::of(robot.topology());
            let _ = writeln!(out, "forward parallelism per step:  {:?}", p.forward);
            let _ = writeln!(out, "backward parallelism per step: {:?}", p.backward);
            let pat = SparsityPattern::mass_matrix(robot.topology());
            let _ = writeln!(
                out,
                "mass matrix: {} nonzeros ({:.0}% sparse)\n{}",
                pat.nnz(),
                pat.sparsity() * 100.0,
                pat.render()
            );
        }
        Command::Generate {
            knobs,
            out: out_dir,
            timings,
        } => {
            let accel = match knobs {
                Some(k) => fw.generate_with_knobs(*k),
                None => fw.generate(Constraints::unconstrained()),
            };
            let k = accel.knobs();
            let d = accel.design();
            // One functional evaluation through the cycle-level simulator:
            // it re-validates the emitted schedule's dependencies (the
            // simulator panics on violations) and populates the sim cycle
            // histograms a `--metrics` snapshot reports.
            let n = robot.num_links();
            let sim_q: Vec<f64> = (0..n).map(|i| (0.23 * (i as f64 + 1.0)).sin()).collect();
            let sim = accel.simulate(&sim_q, &vec![0.1; n], &vec![0.2; n]);
            let _reports_span = obs::span(
                roboshape::PIPELINE_OBS_CATEGORY,
                PipelineStage::Reports.name(),
            );
            let report = fw.pipeline().observer().time(PipelineStage::Reports, || {
                let r = accel.resources();
                format!(
                    "robot: {}\nknobs: PEs_fwd={} PEs_bwd={} block={}\ncycles: {} (no pipelining: {})\nclock: {:.1} ns\nlatency: {:.2} us\nresources: {:.0} LUTs, {:.0} DSPs\nsimulated: {} tasks + {} mat-mul ops, schedule dependencies OK\n",
                    robot.name(),
                    k.pe_fwd,
                    k.pe_bwd,
                    k.block_size,
                    d.compute_cycles(),
                    d.compute_cycles_no_pipelining(),
                    d.clock_ns(),
                    d.compute_latency_us(),
                    r.luts,
                    r.dsps,
                    sim.stats.tasks_executed,
                    sim.stats.matmul_ops
                )
            });
            std::fs::create_dir_all(out_dir)
                .map_err(|e| CliError::new(format!("cannot create {}: {e}", out_dir.display())))?;
            for (name, src) in accel.verilog().files() {
                std::fs::write(out_dir.join(name), src)
                    .map_err(|e| CliError::new(format!("cannot write {name}: {e}")))?;
            }
            std::fs::write(out_dir.join("report.txt"), &report)
                .map_err(|e| CliError::new(format!("cannot write report: {e}")))?;
            let _ = writeln!(out, "{report}");
            let _ = writeln!(out, "wrote Verilog + report to {}", out_dir.display());
            if *timings {
                append_timings(&mut out, &fw);
            }
        }
        Command::Sweep {
            pareto_only,
            pruned,
            timings,
        } => {
            let (selected, pruned_stats) = if *pruned {
                let sweep =
                    roboshape::sweep_design_space_pruned_with(fw.pipeline(), robot.topology());
                let stats = format!(
                    "# pruned: evaluated {} of {} grid points ({} rows never scheduled)",
                    sweep.evaluated_points, sweep.grid_points, sweep.skipped_rows
                );
                (sweep.frontier, Some(stats))
            } else {
                let points = fw.design_space();
                let selected = if *pareto_only {
                    pareto_frontier(&points)
                } else {
                    points
                };
                (selected, None)
            };
            let _ = writeln!(
                out,
                "pe_fwd,pe_bwd,block,traversal_cycles,total_cycles,luts,dsps"
            );
            for p in selected {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{:.0},{:.0}",
                    p.pe_fwd,
                    p.pe_bwd,
                    p.block,
                    p.traversal_cycles,
                    p.total_cycles,
                    p.resources.luts,
                    p.resources.dsps
                );
            }
            if let Some(stats) = pruned_stats {
                let _ = writeln!(out, "{stats}");
            }
            if *timings {
                append_timings(&mut out, &fw);
            }
        }
        Command::Gantt { width } => {
            let accel = fw.generate(Constraints::unconstrained());
            let d = accel.design();
            let _ = writeln!(
                out,
                "schedule for {} at PEs=({},{}), makespan {} cycles:",
                robot.name(),
                accel.knobs().pe_fwd,
                accel.knobs().pe_bwd,
                d.schedule().makespan()
            );
            let _ = writeln!(out, "{}", d.schedule().render_gantt(d.task_graph(), *width));
            let _ = writeln!(
                out,
                "legend: F RNEA-fwd, B RNEA-bwd, g grad-fwd, b grad-bwd, . idle"
            );
        }
        Command::Kernels => {
            use roboshape::{simulate_inverse_dynamics, simulate_kinematics, KernelKind};
            let knobs = fw.choose_knobs(Constraints::unconstrained());
            let n = robot.num_links();
            let q: Vec<f64> = (0..n).map(|i| 0.2 * (i as f64 + 1.0).sin()).collect();
            let _ = writeln!(
                out,
                "{:<20} {:>8} {:>10} {:>12}",
                "kernel", "tasks", "cycles", "latency us"
            );
            for kernel in [
                KernelKind::ForwardKinematics,
                KernelKind::InverseDynamics,
                KernelKind::DynamicsGradient,
            ] {
                let d = roboshape::AcceleratorDesign::generate_for_kernel(
                    robot.topology(),
                    knobs,
                    kernel,
                );
                // Functionally verify each design before reporting it.
                match kernel {
                    KernelKind::ForwardKinematics => {
                        let _ = simulate_kinematics(&robot, &d, &q);
                    }
                    KernelKind::InverseDynamics => {
                        let _ =
                            simulate_inverse_dynamics(&robot, &d, &q, &vec![0.1; n], &vec![0.0; n]);
                    }
                    KernelKind::DynamicsGradient => {
                        let _ = simulate(&robot, &d, &q, &vec![0.1; n], &vec![0.2; n]);
                    }
                }
                let _ = writeln!(
                    out,
                    "{:<20} {:>8} {:>10} {:>12.2}",
                    format!("{kernel:?}"),
                    d.task_graph().len(),
                    d.compute_cycles(),
                    d.compute_latency_us()
                );
            }
        }
        Command::Energy => {
            use roboshape::PowerModel;
            let accel = fw.generate(Constraints::unconstrained());
            let plain = PowerModel::new().evaluate(accel.design());
            let gated = PowerModel::new()
                .with_power_gating()
                .evaluate(accel.design());
            let _ = writeln!(out, "robot: {} ({} links)", robot.name(), robot.num_links());
            let _ = writeln!(
                out,
                "static {:.2} W + dynamic {:.2} W = {:.2} W (utilization {:.0}%)",
                plain.static_w,
                plain.dynamic_w,
                plain.total_w(),
                plain.utilization * 100.0
            );
            let _ = writeln!(
                out,
                "with PE power gating: {:.2} W (saves {:.2} W of idle leakage)",
                gated.total_w(),
                plain.total_w() - gated.total_w()
            );
            let _ = writeln!(
                out,
                "energy per gradient evaluation: {:.1} uJ",
                plain.energy_per_eval_uj()
            );
        }
        Command::Soc { extra } => {
            use roboshape::{co_design, sweep_design_space, Platform, UTILIZATION_THRESHOLD};
            let mut robots = vec![robot.clone()];
            for path in extra {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError::new(format!("cannot read {}: {e}", path.display())))?;
                robots.push(
                    Framework::from_urdf(&text)
                        .map_err(|e| {
                            CliError::new(format!("invalid URDF {}: {e}", path.display()))
                        })?
                        .robot()
                        .clone(),
                );
            }
            let spaces: Vec<_> = robots
                .iter()
                .map(|r| sweep_design_space(r.topology()))
                .collect();
            for platform in Platform::all() {
                match co_design(&spaces, platform, UTILIZATION_THRESHOLD) {
                    Some(alloc) => {
                        let _ = writeln!(
                            out,
                            "{}: worst latency {} cycles, {:.0} LUTs / {:.0} DSPs total",
                            platform.name, alloc.worst_latency, alloc.total.luts, alloc.total.dsps
                        );
                        for (r, p) in robots.iter().zip(&alloc.assignments) {
                            let _ = writeln!(
                                out,
                                "  {:<12} ({:>2},{:>2},b{:<2}) {:>5} cycles {:>9.0} LUTs",
                                r.name(),
                                p.pe_fwd,
                                p.pe_bwd,
                                p.block,
                                p.total_cycles,
                                p.resources.luts
                            );
                        }
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "{}: the {} accelerators do not fit together",
                            platform.name,
                            robots.len()
                        );
                    }
                }
            }
        }
        Command::Verify => {
            let accel = fw.generate(Constraints::unconstrained());
            let n = robot.num_links();
            let q: Vec<f64> = (0..n).map(|i| (0.27 * (i as f64 + 1.0)).sin()).collect();
            let qd: Vec<f64> = (0..n).map(|i| 0.2 * (0.4 * i as f64).cos()).collect();
            let tau: Vec<f64> = (0..n).map(|i| 0.5 - 0.06 * i as f64).collect();
            let sim = simulate(&robot, accel.design(), &q, &qd, &tau);
            let err = sim.verify(&robot, &q, &qd, &tau);
            let _ = writeln!(
                out,
                "simulated {} tasks + {} mat-mul ops in {} cycles",
                sim.stats.tasks_executed, sim.stats.matmul_ops, sim.stats.cycles
            );
            let _ = writeln!(out, "max gradient deviation vs reference: {err:.3e}");
            if err > 1e-8 {
                return Err(CliError::new(format!(
                    "verification FAILED: error {err:.3e}"
                )));
            }
            let _ = writeln!(out, "VERIFIED");
        }
        Command::Serve { .. }
        | Command::Router { .. }
        | Command::Loadgen { .. }
        | Command::Health { .. }
        | Command::BenchCompare { .. }
        | Command::BenchAccept { .. }
        | Command::BundleExport { .. }
        | Command::BundleVerify { .. } => {
            unreachable!("dispatched before the URDF load")
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboshape_robots::{zoo_urdf, Zoo};

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn write_urdf(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("roboshape_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}.urdf"));
        std::fs::write(&path, zoo_urdf(Zoo::Hyq)).unwrap();
        path
    }

    #[test]
    fn parses_commands() {
        let c = parse_args(&args(&["info", "r.urdf"])).unwrap();
        assert_eq!(c.command, Command::Info);
        let c = parse_args(&args(&["sweep", "r.urdf", "--pareto"])).unwrap();
        assert_eq!(
            c.command,
            Command::Sweep {
                pareto_only: true,
                pruned: false,
                timings: false
            }
        );
        let c = parse_args(&args(&["sweep", "r.urdf", "--timings"])).unwrap();
        assert_eq!(
            c.command,
            Command::Sweep {
                pareto_only: false,
                pruned: false,
                timings: true
            }
        );
        let c = parse_args(&args(&["sweep", "r.urdf", "--pruned"])).unwrap();
        assert_eq!(
            c.command,
            Command::Sweep {
                pareto_only: false,
                pruned: true,
                timings: false
            }
        );
        let c = parse_args(&args(&["generate", "r.urdf", "--pe-fwd", "3", "--block=4"])).unwrap();
        match c.command {
            Command::Generate { knobs: Some(k), .. } => {
                assert_eq!(k.pe_fwd, 3);
                assert_eq!(k.block_size, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&args(&["info"])).is_err());
        assert!(parse_args(&args(&["frobnicate", "r.urdf"])).is_err());
        assert!(parse_args(&args(&["generate", "r.urdf", "--pe-fwd", "three"])).is_err());
        assert!(parse_args(&args(&["generate", "r.urdf", "--pe-fwd"])).is_err());
    }

    #[test]
    fn info_runs_on_a_real_urdf() {
        let path = write_urdf("info");
        let cli = parse_args(&args(&["info", path.to_str().unwrap()])).unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("12 links"));
        assert!(out.contains("75% sparse"));
    }

    #[test]
    fn generate_writes_verilog_bundle() {
        let path = write_urdf("generate");
        let out_dir = std::env::temp_dir().join("roboshape_cli_tests/gen_out");
        let cli = parse_args(&args(&[
            "generate",
            path.to_str().unwrap(),
            "--pe-fwd",
            "3",
            "--pe-bwd",
            "3",
            "--block",
            "3",
            "--out",
            out_dir.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("PEs_fwd=3"));
        assert!(out_dir.join("roboshape_top.v").exists());
        assert!(out_dir.join("report.txt").exists());
    }

    #[test]
    fn verify_passes_on_a_real_robot() {
        let path = write_urdf("verify");
        let cli = parse_args(&args(&["verify", path.to_str().unwrap()])).unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("VERIFIED"));
    }

    #[test]
    fn sweep_emits_csv() {
        let path = write_urdf("sweep");
        let cli = parse_args(&args(&["sweep", path.to_str().unwrap(), "--pareto"])).unwrap();
        let out = run(&cli).unwrap();
        assert!(out.starts_with("pe_fwd,pe_bwd,block"));
        assert!(out.lines().count() > 2);
    }

    #[test]
    fn sweep_pruned_emits_the_same_frontier() {
        let path = write_urdf("sweep_pruned");
        let pareto = parse_args(&args(&["sweep", path.to_str().unwrap(), "--pareto"])).unwrap();
        let pruned = parse_args(&args(&["sweep", path.to_str().unwrap(), "--pruned"])).unwrap();
        let pareto_out = run(&pareto).unwrap();
        let pruned_out = run(&pruned).unwrap();
        // Same frontier rows, plus the pruning stats comment.
        let rows = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(rows(&pareto_out), rows(&pruned_out));
        assert!(pruned_out.contains("# pruned: evaluated "));
    }

    #[test]
    fn sweep_with_timings_reports_pipeline_stages() {
        let path = write_urdf("sweep_timings");
        let cli = parse_args(&args(&[
            "sweep",
            path.to_str().unwrap(),
            "--pareto",
            "--timings",
        ]))
        .unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("== pipeline timings =="));
        assert!(out.contains("schedules"));
        assert!(out.contains("points evaluated"));
        assert!(out.contains("artifact store:"));
    }

    #[test]
    fn generate_with_timings_reports_pipeline_stages() {
        let path = write_urdf("generate_timings");
        let out_dir = std::env::temp_dir().join("roboshape_cli_tests/gen_timings_out");
        let cli = parse_args(&args(&[
            "generate",
            path.to_str().unwrap(),
            "--out",
            out_dir.to_str().unwrap(),
            "--timings",
        ]))
        .unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("== pipeline timings =="));
        assert!(out.contains("parse"));
        assert!(out.contains("reports"));
    }

    #[test]
    fn kernels_command_reports_three_kernels() {
        let path = write_urdf("kernels");
        let cli = parse_args(&args(&["kernels", path.to_str().unwrap()])).unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("ForwardKinematics"));
        assert!(out.contains("InverseDynamics"));
        assert!(out.contains("DynamicsGradient"));
    }

    #[test]
    fn energy_command_reports_gating() {
        let path = write_urdf("energy");
        let cli = parse_args(&args(&["energy", path.to_str().unwrap()])).unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("power gating"));
        assert!(out.contains("uJ"));
    }

    #[test]
    fn soc_command_co_designs_two_robots() {
        let a = write_urdf("soc_a");
        let dir = std::env::temp_dir().join("roboshape_cli_tests");
        let b = dir.join("soc_b.urdf");
        std::fs::write(&b, zoo_urdf(Zoo::Iiwa)).unwrap();
        let cli = parse_args(&args(&["soc", a.to_str().unwrap(), b.to_str().unwrap()])).unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("worst latency"));
        assert!(out.contains("iiwa"));
        assert!(out.contains("HyQ"));
    }

    #[test]
    fn gantt_draws_a_timeline() {
        let path = write_urdf("gantt");
        let cli = parse_args(&args(&["gantt", path.to_str().unwrap(), "--width", "40"])).unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("legend:"));
        assert!(out.contains("fwd0"));
        assert!(out.lines().any(|l| l.contains('F')));
    }

    #[test]
    fn warm_generate_trace_is_wellformed_chrome_json() {
        // The golden observability test: warm the artifact store with one
        // untraced run, then trace a second (all-hit) run and check the
        // emitted Chrome trace_event document end to end.
        let path = write_urdf("trace_golden");
        let dir = std::env::temp_dir().join("roboshape_cli_tests/trace_golden_out");
        let out_flag = dir.to_str().unwrap().to_string();
        let warm = parse_args(&args(&[
            "generate",
            path.to_str().unwrap(),
            "--out",
            &out_flag,
        ]))
        .unwrap();
        run(&warm).unwrap();

        let trace_path = dir.join("trace.json");
        let metrics_path = dir.join("metrics.json");
        let cli = parse_args(&args(&[
            "generate",
            path.to_str().unwrap(),
            "--out",
            &out_flag,
            "--trace",
            trace_path.to_str().unwrap(),
            "--metrics",
            metrics_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(cli.trace.as_deref(), Some(trace_path.as_path()));
        run(&cli).unwrap();

        let trace = std::fs::read_to_string(&trace_path).unwrap();
        obs::json::validate(&trace).unwrap_or_else(|e| panic!("malformed trace JSON: {e}"));
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\":\"X\""));
        // All eight pipeline stages appear as spans, even on a warm store.
        for stage in PipelineStage::ALL {
            assert!(
                trace.contains(&format!("\"name\":\"{}\"", stage.name())),
                "stage {} missing from trace",
                stage.name()
            );
        }
        // Spans nest: at least one span records a parent.
        assert!(trace.contains("\"parent\":"));
        // The root CLI span wraps the run.
        assert!(trace.contains("\"name\":\"generate\""));

        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        obs::json::validate(&metrics).unwrap_or_else(|e| panic!("malformed metrics JSON: {e}"));
        assert!(metrics.contains("\"counters\""));
        // The simulator ran, so its cycle histograms are in the snapshot.
        assert!(metrics.contains("sim.cycles.rnea_fwd"));
        assert!(metrics.contains("sim.pe_occupancy_pct"));
    }

    #[test]
    fn parses_serve_and_loadgen_commands() {
        let c = parse_args(&args(&[
            "serve",
            "zoo",
            "--port",
            "0",
            "--queue",
            "32",
            "--max-requests",
            "10",
        ]))
        .unwrap();
        assert_eq!(c.urdf, PathBuf::from("zoo"));
        match c.command {
            Command::Serve {
                port,
                queue,
                max_requests,
                backend,
                ..
            } => {
                assert_eq!(port, 0);
                assert_eq!(queue, 32);
                assert_eq!(max_requests, Some(10));
                // Lanes is the default backend.
                assert_eq!(backend, roboshape::BackendKind::Lanes);
            }
            other => panic!("unexpected {other:?}"),
        }

        let c = parse_args(&args(&["serve", "zoo", "--backend", "scalar"])).unwrap();
        match c.command {
            Command::Serve { backend, .. } => {
                assert_eq!(backend, roboshape::BackendKind::Scalar)
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&args(&["serve", "zoo", "--backend", "gpu"])).is_err());

        let c = parse_args(&args(&[
            "loadgen", "zoo:iiwa", "--port", "9000", "--rate", "50", "--kind", "fk",
        ]))
        .unwrap();
        match c.command {
            Command::Loadgen {
                port,
                rate_hz,
                workload,
                ..
            } => {
                assert_eq!(port, 9000);
                assert_eq!(rate_hz, Some(50.0));
                assert_eq!(
                    workload,
                    roboshape_serve::loadgen::Workload::Step(
                        roboshape::KernelKind::ForwardKinematics
                    )
                );
            }
            other => panic!("unexpected {other:?}"),
        }

        let c = parse_args(&args(&[
            "loadgen",
            "zoo:iiwa",
            "--port",
            "9000",
            "--workload",
            "rollout:4",
        ]))
        .unwrap();
        match c.command {
            Command::Loadgen { workload, .. } => {
                assert_eq!(workload, roboshape_serve::loadgen::Workload::Rollout(4));
            }
            other => panic!("unexpected {other:?}"),
        }

        let c = parse_args(&args(&[
            "loadgen",
            "zoo:iiwa",
            "--port",
            "9000",
            "--workload",
            "mixed",
        ]))
        .unwrap();
        match c.command {
            Command::Loadgen { workload, .. } => {
                assert_eq!(workload, roboshape_serve::loadgen::Workload::Mixed);
            }
            other => panic!("unexpected {other:?}"),
        }

        assert!(
            parse_args(&args(&["loadgen", "zoo"])).is_err(),
            "--port required"
        );
        assert!(parse_args(&args(&["loadgen", "zoo", "--port", "0"])).is_err());
        assert!(parse_args(&args(&["serve", "zoo", "--port", "70000"])).is_err());
        assert!(parse_args(&args(&["loadgen", "zoo", "--port", "9", "--kind", "x"])).is_err());
        assert!(parse_args(&args(&[
            "loadgen",
            "zoo",
            "--port",
            "9",
            "--workload",
            "rollout:0"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "loadgen",
            "zoo",
            "--port",
            "9",
            "--workload",
            "walk"
        ]))
        .is_err());
    }

    #[test]
    fn parses_resilience_flags() {
        let c = parse_args(&args(&[
            "serve",
            "zoo",
            "--chaos",
            "7:0.1",
            "--deadline-ms",
            "20",
        ]))
        .unwrap();
        match c.command {
            Command::Serve {
                chaos: Some(chaos),
                deadline_ms,
                ..
            } => {
                assert_eq!(chaos.seed, 7);
                assert!((chaos.crash - 0.1).abs() < 1e-12);
                assert_eq!(deadline_ms, Some(20));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&args(&["serve", "zoo", "--chaos", "junk"])).is_err());

        let c = parse_args(&args(&[
            "loadgen",
            "zoo",
            "--port",
            "9",
            "--retries",
            "6",
            "--timeout-ms",
            "250",
        ]))
        .unwrap();
        match c.command {
            Command::Loadgen {
                retries,
                timeout_ms,
                ..
            } => {
                assert_eq!(retries, 6);
                assert_eq!(timeout_ms, Some(250));
            }
            other => panic!("unexpected {other:?}"),
        }

        let c = parse_args(&args(&["health", "--port", "9000"])).unwrap();
        assert_eq!(c.command, Command::Health { port: 9000 });
        assert!(parse_args(&args(&["health"])).is_err(), "--port required");
    }

    #[test]
    fn parses_cluster_flags() {
        let c = parse_args(&args(&[
            "router",
            "--shards",
            "s0=7001,s1=127.0.0.1:7002",
            "--port",
            "0",
            "--max-requests",
            "5",
        ]))
        .unwrap();
        match c.command {
            Command::Router {
                shards,
                max_requests,
                port,
                ..
            } => {
                assert_eq!(port, 0);
                assert_eq!(max_requests, Some(5));
                assert_eq!(shards.len(), 2);
                assert_eq!(shards[0].name, "s0");
                assert_eq!(shards[0].addr.port(), 7001);
                assert_eq!(shards[1].addr.port(), 7002);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&args(&["router"])).is_err(), "--shards required");
        assert!(parse_args(&args(&["router", "--shards", "bad"])).is_err());
        assert!(parse_args(&args(&["router", "--shards", "s0=notaport"])).is_err());

        let c = parse_args(&args(&["serve", "zoo", "--shard", "s0", "--loops", "2"])).unwrap();
        match c.command {
            Command::Serve { shard, loops, .. } => {
                assert_eq!(shard.as_deref(), Some("s0"));
                assert_eq!(loops, 2);
            }
            other => panic!("unexpected {other:?}"),
        }

        let c = parse_args(&args(&[
            "loadgen",
            "zoo",
            "--port",
            "9",
            "--cluster",
            "--seed",
            "9",
        ]))
        .unwrap();
        match c.command {
            Command::Loadgen { cluster, seed, .. } => {
                assert!(cluster);
                assert_eq!(seed, 9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// The CI cluster-smoke scenario in-process: two shard engines (via
    /// the library), a CLI router over them, and a CLI `loadgen
    /// --cluster` driving the router. Checks the cluster accounting line
    /// and the router exit summary.
    #[test]
    fn router_and_cluster_loadgen_round_trip_via_cli() {
        use roboshape_robots::{zoo, Zoo};
        use roboshape_serve::{Engine, EngineConfig, Shard};
        let mk_engine = || {
            let engine = Engine::new(EngineConfig::default());
            for which in Zoo::ALL {
                engine.register(which.name(), zoo(which));
            }
            engine
        };
        let s0 = Shard::start("s0", mk_engine(), ("127.0.0.1", 0)).unwrap();
        let s1 = Shard::start("s1", mk_engine(), ("127.0.0.1", 0)).unwrap();

        let dir = std::env::temp_dir().join("roboshape_cli_tests/cluster_smoke");
        std::fs::create_dir_all(&dir).unwrap();
        let port_file = dir.join("port");
        let _ = std::fs::remove_file(&port_file);

        let clients = 3usize;
        let requests = 4usize;
        let total = (clients * requests) as u64;
        let router_cli = parse_args(&args(&[
            "router",
            "--shards",
            &format!("s0={},s1={}", s0.port(), s1.port()),
            "--port",
            "0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--max-requests",
            &total.to_string(),
        ]))
        .unwrap();
        let router = std::thread::spawn(move || run(&router_cli));

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let port = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = text.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(std::time::Instant::now() < deadline, "router never bound");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let health_cli = parse_args(&args(&["health", "--port", &port.to_string()])).unwrap();
        let health = run(&health_cli).unwrap();
        assert!(health.contains("ready=true"), "{health}");

        let loadgen_cli = parse_args(&args(&[
            "loadgen",
            "zoo",
            "--port",
            &port.to_string(),
            "--clients",
            &clients.to_string(),
            "--requests",
            &requests.to_string(),
            "--cluster",
        ]))
        .unwrap();
        let report = run(&loadgen_cli).unwrap();
        assert!(report.contains(&format!("ok={total}")), "{report}");
        assert!(report.contains("cluster: rerouted=0 lost=0"), "{report}");

        let summary = router.join().unwrap().unwrap();
        assert!(summary.contains("routed"), "{summary}");
        assert!(summary.contains("failovers=0"), "{summary}");

        s0.shutdown();
        s1.shutdown();
    }

    #[test]
    fn unknown_zoo_spec_is_a_clean_error() {
        let cli = parse_args(&args(&["serve", "zoo:atlas", "--max-requests", "1"])).unwrap();
        let err = run(&cli).unwrap_err();
        assert!(err.message.contains("unknown zoo robot"), "{}", err.message);
    }

    /// The CI smoke scenario in-process: serve the full zoo with
    /// `--max-requests`, drive it with the loadgen command, and check
    /// the report, the exit summary, and the metrics snapshot.
    #[test]
    fn serve_and_loadgen_round_trip_via_cli() {
        let dir = std::env::temp_dir().join("roboshape_cli_tests/serve_smoke");
        std::fs::create_dir_all(&dir).unwrap();
        let port_file = dir.join("port");
        let metrics_file = dir.join("serve_metrics.json");
        let _ = std::fs::remove_file(&port_file);

        let clients = 4usize;
        let requests = 3usize;
        let total = (clients * requests) as u64;
        let serve_cli = parse_args(&args(&[
            "serve",
            "zoo",
            "--port",
            "0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--max-requests",
            &total.to_string(),
            "--metrics",
            metrics_file.to_str().unwrap(),
        ]))
        .unwrap();
        let server = std::thread::spawn(move || run(&serve_cli));

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let port = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = text.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(std::time::Instant::now() < deadline, "server never bound");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let health_cli = parse_args(&args(&["health", "--port", &port.to_string()])).unwrap();
        let health = run(&health_cli).unwrap();
        assert!(health.contains("ready=true"), "{health}");
        assert!(health.contains("circuit=closed"), "{health}");
        assert!(health.contains("iiwa"), "{health}");

        let loadgen_cli = parse_args(&args(&[
            "loadgen",
            "zoo",
            "--port",
            &port.to_string(),
            "--clients",
            &clients.to_string(),
            "--requests",
            &requests.to_string(),
        ]))
        .unwrap();
        let report = run(&loadgen_cli).unwrap();
        assert!(report.contains(&format!("ok={total}")), "{report}");
        assert!(report.contains("shed=0"), "{report}");
        assert!(report.contains("throughput:"), "{report}");

        let summary = server.join().unwrap().unwrap();
        assert!(
            summary.contains(&format!("served {total} requests")),
            "{summary}"
        );
        assert!(summary.contains("shed=0"), "{summary}");

        let metrics = std::fs::read_to_string(&metrics_file).unwrap();
        obs::json::validate(&metrics).unwrap_or_else(|e| panic!("malformed metrics JSON: {e}"));
        assert!(metrics.contains("serve.requests"), "{metrics}");
        assert!(metrics.contains("serve.latency_us"), "{metrics}");
    }

    /// The CI chaos-smoke scenario in-process: serve one robot with
    /// deterministic fault injection, drive it with a retrying loadgen,
    /// and check that no request is lost and the resilience counters
    /// appear in the metrics snapshot.
    #[test]
    fn chaos_serve_loses_nothing_with_retries_via_cli() {
        let dir = std::env::temp_dir().join("roboshape_cli_tests/chaos_smoke");
        std::fs::create_dir_all(&dir).unwrap();
        let port_file = dir.join("port");
        let metrics_file = dir.join("chaos_metrics.json");
        let _ = std::fs::remove_file(&port_file);

        let clients = 2usize;
        let requests = 12usize;
        let total = (clients * requests) as u64;
        let serve_cli = parse_args(&args(&[
            "serve",
            "zoo:iiwa",
            "--port",
            "0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--chaos",
            "7:0.2",
            "--max-requests",
            &total.to_string(),
            "--metrics",
            metrics_file.to_str().unwrap(),
        ]))
        .unwrap();
        let server = std::thread::spawn(move || run(&serve_cli));

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let port = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = text.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(std::time::Instant::now() < deadline, "server never bound");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let loadgen_cli = parse_args(&args(&[
            "loadgen",
            "zoo:iiwa",
            "--port",
            &port.to_string(),
            "--clients",
            &clients.to_string(),
            "--requests",
            &requests.to_string(),
            "--retries",
            "6",
            "--timeout-ms",
            "2000",
        ]))
        .unwrap();
        let report = run(&loadgen_cli).unwrap();
        // The invariant under chaos is accounting, not perfection: every
        // request ends in a counted outcome.
        assert!(report.contains("lost=0"), "{report}");

        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("resilience:"), "{summary}");

        let metrics = std::fs::read_to_string(&metrics_file).unwrap();
        obs::json::validate(&metrics).unwrap_or_else(|e| panic!("malformed metrics JSON: {e}"));
        for name in [
            "serve.fault.worker_crash",
            "serve.fault.frame_corrupt",
            "serve.circuit.trips",
            "serve.circuit.open_robots",
            "serve.retry.attempts",
        ] {
            assert!(metrics.contains(name), "missing {name} in {metrics}");
        }
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let cli = parse_args(&args(&["info", "/nonexistent/robot.urdf"])).unwrap();
        let err = run(&cli).unwrap_err();
        assert!(err.message.contains("cannot read"));
    }

    #[test]
    fn parses_bench_and_bundle_commands() {
        let c = parse_args(&args(&["bench", "compare", "--smoke"])).unwrap();
        match c.command {
            Command::BenchCompare {
                baseline,
                current,
                smoke,
            } => {
                assert_eq!(baseline, PathBuf::from("bench/baselines"));
                assert_eq!(current, PathBuf::from("bench/current"));
                assert!(smoke);
            }
            other => panic!("unexpected {other:?}"),
        }

        let c = parse_args(&args(&[
            "bench",
            "accept",
            "--baseline",
            "hist",
            "--current",
            "now",
        ]))
        .unwrap();
        assert_eq!(
            c.command,
            Command::BenchAccept {
                baseline: PathBuf::from("hist"),
                current: PathBuf::from("now"),
            }
        );

        let c = parse_args(&args(&[
            "bundle", "export", "--out", "bdl", "--n", "12", "--seed", "7",
        ]))
        .unwrap();
        assert_eq!(
            c.command,
            Command::BundleExport {
                out: PathBuf::from("bdl"),
                zoo_n: 12,
                zoo_seed: 7,
            }
        );

        let c = parse_args(&args(&["bundle", "verify", "some/dir"])).unwrap();
        assert_eq!(
            c.command,
            Command::BundleVerify {
                dir: PathBuf::from("some/dir"),
            }
        );
        let c = parse_args(&args(&["bundle", "verify"])).unwrap();
        assert_eq!(
            c.command,
            Command::BundleVerify {
                dir: PathBuf::from("bench/baselines/example-bundle"),
            }
        );

        assert!(parse_args(&args(&["bench"])).is_err(), "action required");
        assert!(parse_args(&args(&["bundle"])).is_err(), "action required");
        assert!(parse_args(&args(&["bench", "frobnicate"])).is_err());
        assert!(parse_args(&args(&["bundle", "frobnicate"])).is_err());
    }

    /// Writes a `sim_throughput` record with one gated metric into
    /// `dir`, for exercising the compare gate without running benches.
    fn write_bench_record(dir: &std::path::Path, rps: f64) {
        let mut rec = roboshape_benchrec::BenchRecord::new("sim_throughput", false, false);
        rec.push("warm_evals_per_sec", rps, 0.0);
        rec.save(&dir.join("sim_throughput.json")).unwrap();
    }

    fn compare_cli(baseline: &std::path::Path, current: &std::path::Path) -> Cli {
        parse_args(&args(&[
            "bench",
            "compare",
            "--baseline",
            baseline.to_str().unwrap(),
            "--current",
            current.to_str().unwrap(),
        ]))
        .unwrap()
    }

    #[test]
    fn bench_compare_gates_a_degraded_run_via_cli() {
        let root = std::env::temp_dir().join("roboshape_cli_tests/compare_gate");
        let baseline = root.join("baselines");
        let current = root.join("current");
        let _ = std::fs::remove_dir_all(&root);

        // Identical records: within every band → PASS.
        write_bench_record(&baseline, 1000.0);
        write_bench_record(&current, 1000.0);
        let out = run(&compare_cli(&baseline, &current)).unwrap();
        assert!(out.contains("bench compare: PASS"), "{out}");

        // A −70% collapse of a higher-is-better metric: far outside the
        // 15% full-run band → nonzero exit with a FAIL summary.
        write_bench_record(&current, 300.0);
        let err = run(&compare_cli(&baseline, &current)).unwrap_err();
        assert!(
            err.message.contains("bench compare: FAIL"),
            "{}",
            err.message
        );
        assert!(err.message.contains("REGRESSED"), "{}", err.message);

        // The same collapse in the opposite direction is an improvement,
        // not a regression.
        write_bench_record(&current, 3000.0);
        let out = run(&compare_cli(&baseline, &current)).unwrap();
        assert!(out.contains("bench compare: PASS"), "{out}");
    }

    #[test]
    fn bench_compare_rejects_malformed_and_missing_baselines() {
        let root = std::env::temp_dir().join("roboshape_cli_tests/compare_malformed");
        let baseline = root.join("baselines");
        let current = root.join("current");
        let _ = std::fs::remove_dir_all(&root);
        write_bench_record(&current, 1000.0);

        // No baseline at all: every bench is skipped, and comparing
        // nothing is an error, not a pass.
        let err = run(&compare_cli(&baseline, &current)).unwrap_err();
        assert!(
            err.message.contains("nothing to compare"),
            "{}",
            err.message
        );

        // A corrupt baseline is a hard error, not a skip.
        std::fs::create_dir_all(&baseline).unwrap();
        std::fs::write(baseline.join("sim_throughput.json"), "{not json").unwrap();
        let err = run(&compare_cli(&baseline, &current)).unwrap_err();
        assert!(
            err.message.contains("sim_throughput.json"),
            "{}",
            err.message
        );
    }

    #[test]
    fn bench_accept_promotes_current_records() {
        let root = std::env::temp_dir().join("roboshape_cli_tests/accept");
        let baseline = root.join("baselines");
        let current = root.join("current");
        let _ = std::fs::remove_dir_all(&root);
        write_bench_record(&current, 1234.5);

        let cli = parse_args(&args(&[
            "bench",
            "accept",
            "--baseline",
            baseline.to_str().unwrap(),
            "--current",
            current.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cli).unwrap();
        assert!(out.contains("sim_throughput: accepted"), "{out}");

        // The promoted baseline round-trips and gates cleanly.
        let out = run(&compare_cli(&baseline, &current)).unwrap();
        assert!(out.contains("bench compare: PASS"), "{out}");

        // Accepting from an empty directory is an error.
        let _ = std::fs::remove_dir_all(&current);
        let cli = parse_args(&args(&[
            "bench",
            "accept",
            "--baseline",
            baseline.to_str().unwrap(),
            "--current",
            current.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(run(&cli).is_err());
    }

    /// The full reproducibility loop in-process: export a validation
    /// bundle at a small pinned population, then verify it on the same
    /// machine. Every snapshot must match byte-exactly and both probe
    /// invariants must hold; a tampered snapshot must flip the verdict.
    #[test]
    fn bundle_export_verify_round_trip_via_cli() {
        let out_dir = std::env::temp_dir().join("roboshape_cli_tests/bundle");
        let _ = std::fs::remove_dir_all(&out_dir);

        let export = parse_args(&args(&[
            "bundle",
            "export",
            "--out",
            out_dir.to_str().unwrap(),
            "--n",
            "12",
            "--seed",
            "7",
        ]))
        .unwrap();
        let out = run(&export).unwrap();
        assert!(out.contains("wrote bundle (10 snapshots"), "{out}");

        let verify = parse_args(&args(&["bundle", "verify", out_dir.to_str().unwrap()])).unwrap();
        let report = run(&verify).unwrap();
        assert!(report.contains("PASS"), "{report}");
        assert!(report.contains("probe.lost=0"), "{report}");

        // Tamper with one expected snapshot: verify must fail.
        let victim = out_dir.join("expected/table1.txt");
        let mut text = std::fs::read_to_string(&victim).unwrap();
        text.push_str("tampered\n");
        std::fs::write(&victim, text).unwrap();
        let err = run(&verify).unwrap_err();
        assert!(err.message.contains("FAIL"), "{}", err.message);
    }
}
