//! Topology-traversal task graphs and PE scheduling (paper Sec. 4.2).
//!
//! RoboShape's pattern ① — topology traversals — turns into hardware
//! through three steps, all implemented here:
//!
//! 1. [`TaskGraph::dynamics_gradient`] expands a robot topology into the
//!    task graph of the ∇FD kernel's traversal stages: the RNEA forward
//!    and backward passes (one task per link) and the ∇RNEA forward and
//!    backward passes (one task per `(link, seed)` pair on a shared
//!    root-to-leaf path — the `O(N²)` pattern of Fig. 4b);
//! 2. [`schedule`] maps those tasks onto a bounded number of forward and
//!    backward processing elements with a longest-thread list scheduler
//!    (the paper's "modified depth-first search"), in pipelined
//!    (dependency-driven) or stage-barrier mode;
//! 3. [`Schedule`] reports makespan cycles, per-PE programs, utilization,
//!    and the branch save/restore events that size the architecture's
//!    checkpoint storage (Fig. 8e).
//!
//! Each [`schedule`] call opens a `cat = "taskgraph"` tracing span and
//! bumps the global `taskgraph.schedules` counter and
//! `taskgraph.makespan_cycles` histogram (see [`roboshape_obs`]).
//!
//! # Examples
//!
//! ```
//! use roboshape_taskgraph::{schedule, SchedulerConfig, TaskGraph};
//! use roboshape_topology::Topology;
//!
//! let topo = Topology::chain(7); // iiwa
//! let graph = TaskGraph::dynamics_gradient(&topo);
//! let sched = schedule(&graph, &SchedulerConfig::with_pes(7, 7));
//! assert!(sched.validate(&graph).is_ok());
//! assert!(sched.makespan() > 0);
//! ```

#![warn(missing_docs)]

mod graph;
mod scheduler;

pub use graph::{Stage, Task, TaskGraph, TaskId, TaskKind};
pub use scheduler::{
    schedule, schedule_makespan, PeClass, Schedule, ScheduleEntry, ScheduleError, SchedulerConfig,
    TaskCosts,
};
