//! Bit-exactness pin for trajectory workloads (ISSUE satellite): a
//! `Rollout { steps: N }` request answered by one worker dispatch must
//! be bit-identical — every f64, every cycle count — to N sequential
//! single-step ∇FD requests with the state fed forward client-side
//! through the same shared integrator
//! ([`roboshape_serve::workload::advance`]). Pinned for the paper's zoo
//! robots *and* generated `roboshape-zoo` morphologies, on both
//! execution backends.

use proptest::prelude::*;
use roboshape_robots::{zoo, Zoo};
use roboshape_serve::{Engine, EngineConfig, ServePayload, ServeRequest};
use roboshape_sim::BackendKind;
use roboshape_urdf::RobotModel;

/// One engine per (robot, backend): run the rollout ticket and the
/// manual step-by-step reference against the same warmed artifact
/// store, then compare bit-for-bit.
fn rollout_equals_sequential(name: &str, model: &RobotModel, backend: BackendKind, steps: u32) {
    let engine = Engine::new(EngineConfig {
        backend,
        ..EngineConfig::default()
    });
    engine.register(name, model.clone());

    let n = model.num_links();
    let (q0, qd0, tau) = roboshape_serve::loadgen::request_inputs(n, 0xC0FFEE ^ steps as u64);

    let ticket = engine
        .submit(ServeRequest::rollout(
            name,
            q0.clone(),
            qd0.clone(),
            tau.clone(),
            steps,
        ))
        .expect("submit rollout");
    let rolled = ticket.wait().expect("rollout payload");

    // Reference: N single-step tickets, state advanced between steps by
    // the exact integrator the worker uses.
    let (mut q, mut qd) = (q0, qd0);
    let mut cycles_sum = 0u64;
    let mut last = None;
    for _ in 0..steps {
        let t = engine
            .submit(ServeRequest::gradient(
                name,
                q.clone(),
                qd.clone(),
                tau.clone(),
            ))
            .expect("submit step");
        let step = t.wait().expect("step payload");
        cycles_sum += step.cycles();
        roboshape_serve::workload::advance(model, &mut q, &mut qd, &tau);
        last = Some(step);
    }
    engine.shutdown();

    let (
        ServePayload::Rollout {
            steps: got_steps,
            q_final,
            qd_final,
            tau: roll_tau,
            dqdd_dq,
            dqdd_dqd,
            cycles,
        },
        ServePayload::Gradient {
            tau: step_tau,
            dqdd_dq: step_dq,
            dqdd_dqd: step_dqd,
            ..
        },
    ) = (rolled, last.expect("steps >= 1"))
    else {
        panic!("wrong payload shapes");
    };

    assert_eq!(got_steps, steps, "{name}/{backend:?}");
    assert_eq!(cycles, cycles_sum, "{name}/{backend:?}: cycle totals");
    let bitwise = |label: &str, a: &[f64], b: &[f64]| {
        assert_eq!(a.len(), b.len(), "{name}/{backend:?}: {label} length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{name}/{backend:?}: {label}[{i}] {x} vs {y}"
            );
        }
    };
    bitwise("q_final", &q_final, &q);
    bitwise("qd_final", &qd_final, &qd);
    bitwise("tau", &roll_tau, &step_tau);
    bitwise("dqdd_dq", &dqdd_dq, &step_dq);
    bitwise("dqdd_dqd", &dqdd_dqd, &step_dqd);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Zoo robots: a rollout ticket is bit-identical to its unrolled
    /// single-step equivalent on both backends.
    #[test]
    fn rollout_is_bit_identical_for_zoo_robots(steps_raw in 2u64..6) {
        let steps = steps_raw as u32;
        for which in [Zoo::Iiwa, Zoo::Hyq, Zoo::Baxter] {
            let model = zoo(which);
            for backend in [BackendKind::Scalar, BackendKind::Lanes] {
                rollout_equals_sequential(which.name(), &model, backend, steps);
            }
        }
    }

    /// Generated morphologies: the same pin holds for every
    /// `roboshape-zoo` family, so trajectory serving is exact on robots
    /// nobody hand-tuned.
    #[test]
    fn rollout_is_bit_identical_for_generated_robots(seed in 0u64..1_000_000, steps_raw in 2u64..5) {
        let steps = steps_raw as u32;
        let members = roboshape_zoo::population(seed, 4, &roboshape_zoo::Family::ALL)
            .expect("population");
        for member in &members {
            for backend in [BackendKind::Scalar, BackendKind::Lanes] {
                rollout_equals_sequential(
                    member.model.name(),
                    &member.model,
                    backend,
                    steps,
                );
            }
        }
    }
}
