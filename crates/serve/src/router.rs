//! The cluster front-end: one event-driven process that
//! consistent-hashes requests by robot across N shard processes.
//!
//! The router accepts ordinary protocol clients (nothing in the client
//! changes between single-engine and cluster mode), peeks each request's
//! robot name without decoding the `f64` payload, walks the
//! [`HashRing`] preference order to the first *alive* shard, and
//! forwards the body verbatim — only the correlation id is rewritten to
//! a router-global upstream id, and the checksum re-computed. Responses
//! stream back the moment a shard produces them (**completion order**,
//! not submission order; clients correlate by id) with the client's id
//! patched back in and, when a fallback shard answered,
//! [`crate::proto::REROUTED_FLAG`] OR-ed into the status byte.
//!
//! The failover ladder generalizes the per-robot circuit breaker to
//! shard granularity:
//!
//! 1. **Admission shed** — a shard with `max_inflight_per_shard`
//!    requests outstanding sheds new work with a typed `Rejected`
//!    (clients retry with backoff, exactly as for queue-full).
//! 2. **Reroute** — when a shard's connection dies, every request
//!    pending on it is re-dispatched to the next alive shard in that
//!    robot's ring preference, and new requests for its robots route
//!    there too; answers carry the `Rerouted` flag.
//! 3. **Degrade** — a rerouted robot lands on a shard whose own circuit
//!    breaker may be open, in which case the shard answers `Degraded`
//!    from the analytical model; with *no* shard alive the router sheds
//!    with a typed `Rejected` and health probes report `ready=false`.
//!
//! Everything runs on one event-loop thread built from the same
//! [`crate::net`] pieces as the shard server: client sockets and
//! upstream shard sockets sit in the same poller, so a response's path
//! through the router is wake → patch id → queue → flush, with no
//! cross-thread handoff. A dead shard is redialed every
//! `reconnect_interval` and re-enters the ring (hello handshake, then
//! alive) without dropping anything.

use crate::engine::{HealthReport, ServeError, ServePayload};
use crate::net::poll::{Interest, Poller, WakeRx, Waker, WAKE_TOKEN};
use crate::net::{FlushOutcome, FrameConn, FrameViolation, ReadOutcome};
use crate::proto::{
    decode_hello_response, decode_response, encode_health_request, encode_hello_request,
    encode_hello_response, encode_response, frame_bytes, peek_request_route, peek_response_head,
    rewrite_id, status_is_hello, HelloInfo, ProtoError, ResponseFrame,
};
use crate::shard::{HashRing, ShardSpec};
use crate::{
    OBS_CATEGORY, ROUTER_FAILOVERS_METRIC, ROUTER_INFLIGHT_METRIC, ROUTER_REQUESTS_METRIC,
    ROUTER_REROUTED_METRIC, ROUTER_RESPONSES_METRIC, ROUTER_SHARDS_ALIVE_METRIC,
    ROUTER_SHED_METRIC,
};
use roboshape_obs as obs;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poller token of the accept listener.
const LISTEN_TOKEN: u64 = u64::MAX - 1;

/// How long the loop sleeps in `wait` before re-checking the stop flag
/// and the reconnect schedule.
const TICK: Duration = Duration::from_millis(50);

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The shard fleet, in config order (ring identity comes from the
    /// names, so order does not matter for placement).
    pub shards: Vec<ShardSpec>,
    /// Per-shard admission cap: requests outstanding on one shard
    /// before new work for it is shed with a typed `Rejected`.
    pub max_inflight_per_shard: usize,
    /// Dial timeout for shard connections.
    pub connect_timeout: Duration,
    /// How long a dead shard waits between redial attempts.
    pub reconnect_interval: Duration,
}

impl RouterConfig {
    /// Defaults for a given fleet: 512 in-flight per shard, 250 ms
    /// dials, 200 ms redial interval.
    pub fn new(shards: Vec<ShardSpec>) -> RouterConfig {
        RouterConfig {
            shards,
            max_inflight_per_shard: 512,
            connect_timeout: Duration::from_millis(250),
            reconnect_interval: Duration::from_millis(200),
        }
    }
}

/// Live counters the CLI polls for its exit condition and summary line.
/// The same events also feed the global `serve.router.*` metrics; these
/// are per-router and cheap to read.
#[derive(Debug, Default)]
pub struct RouterStats {
    /// Kernel requests accepted from clients (routed or shed).
    pub requests: AtomicU64,
    /// Responses forwarded back to clients (any status).
    pub responses: AtomicU64,
    /// Requests shed by the router itself (admission cap / no shard).
    pub shed: AtomicU64,
    /// Requests dispatched to a non-owner shard (initial or failover).
    pub rerouted: AtomicU64,
    /// Shard connections lost (each one triggers pending re-dispatch).
    pub failovers: AtomicU64,
}

impl RouterStats {
    /// Responses plus router-side sheds — every client-visible outcome.
    pub fn settled(&self) -> u64 {
        self.responses.load(Ordering::Relaxed) + self.shed.load(Ordering::Relaxed)
    }
}

/// Touch every router metric once so `--metrics` snapshots always
/// contain the full `serve.router.*` vocabulary even on an uneventful
/// run — a missing key means an old binary, not a quiet fleet.
fn preregister_metrics() {
    let m = obs::metrics();
    for name in [
        ROUTER_REQUESTS_METRIC,
        ROUTER_RESPONSES_METRIC,
        ROUTER_REROUTED_METRIC,
        ROUTER_SHED_METRIC,
        ROUTER_FAILOVERS_METRIC,
    ] {
        m.counter(name).add(0);
    }
    m.gauge(ROUTER_SHARDS_ALIVE_METRIC).set(0.0);
    m.gauge(ROUTER_INFLIGHT_METRIC).set(0.0);
}

/// A running router. Call [`Router::shutdown`] for an orderly stop.
pub struct Router {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Waker,
    stats: Arc<RouterStats>,
    thread: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds `addr` and starts routing across `config.shards`. Shards
    /// that are down at start are redialed in the background; the
    /// router serves (shedding their robots) meanwhile.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn start(config: RouterConfig, addr: impl ToSocketAddrs) -> io::Result<Router> {
        preregister_metrics();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(RouterStats::default());
        let (waker, wake_rx) = Waker::new()?;
        let mut inner = RouterLoop::new(
            config,
            listener,
            wake_rx,
            Arc::clone(&stop),
            Arc::clone(&stats),
        )?;
        let thread = std::thread::spawn(move || inner.run());
        Ok(Router {
            addr: local,
            stop,
            waker,
            stats,
            thread: Some(thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Live counters (shared with the loop thread).
    pub fn stats(&self) -> Arc<RouterStats> {
        Arc::clone(&self.stats)
    }

    /// Stops the loop and joins it. In-flight requests whose shard
    /// responses have not arrived are dropped — stop traffic first.
    pub fn shutdown(mut self) {
        let _span = obs::span(OBS_CATEGORY, "router-shutdown");
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// What one upstream correlation id is waiting for.
enum Pending {
    /// A client's kernel request: everything needed to answer — or to
    /// re-dispatch on failover (the original body, un-rewritten).
    Client {
        token: u64,
        id: u64,
        robot: String,
        body: Vec<u8>,
        rerouted: bool,
        attempts: usize,
    },
    /// One leg of a health fan-out.
    HealthFan { fanout: u64 },
    /// The handshake sent right after connecting.
    Hello,
}

/// An aggregating health probe: one client request, one leg per alive
/// shard.
struct FanOut {
    token: u64,
    id: u64,
    remaining: usize,
    reports: Vec<(usize, HealthReport)>,
}

struct ClientConn {
    conn: FrameConn,
    interest: Interest,
    closing: bool,
}

enum LinkState {
    Down,
    Up {
        conn: FrameConn,
        token: u64,
        interest: Interest,
        pending: HashMap<u64, Pending>,
        hello: Option<HelloInfo>,
    },
}

struct ShardLink {
    spec: ShardSpec,
    state: LinkState,
    last_attempt: Option<Instant>,
}

struct RouterLoop {
    config: RouterConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<RouterStats>,
    poller: Poller,
    wake_rx: WakeRx,
    listener: TcpListener,
    ring: HashRing,
    clients: HashMap<u64, ClientConn>,
    shards: Vec<ShardLink>,
    /// token → shard index, for upstream connections.
    shard_tokens: HashMap<u64, usize>,
    fanouts: HashMap<u64, FanOut>,
    next_token: u64,
    next_uid: u64,
    next_fanout: u64,
}

impl RouterLoop {
    fn new(
        config: RouterConfig,
        listener: TcpListener,
        wake_rx: WakeRx,
        stop: Arc<AtomicBool>,
        stats: Arc<RouterStats>,
    ) -> io::Result<RouterLoop> {
        let mut poller = Poller::new()?;
        poller.register(wake_rx.fd(), WAKE_TOKEN, Interest::READABLE)?;
        poller.register(listener.as_raw_fd(), LISTEN_TOKEN, Interest::READABLE)?;
        let ring = HashRing::new(
            &config
                .shards
                .iter()
                .map(|s| s.name.clone())
                .collect::<Vec<_>>(),
        );
        let shards = config
            .shards
            .iter()
            .map(|spec| ShardLink {
                spec: spec.clone(),
                state: LinkState::Down,
                last_attempt: None,
            })
            .collect();
        Ok(RouterLoop {
            config,
            stop,
            stats,
            poller,
            wake_rx,
            listener,
            ring,
            clients: HashMap::new(),
            shards,
            shard_tokens: HashMap::new(),
            fanouts: HashMap::new(),
            next_token: 0,
            next_uid: 0,
            next_fanout: 0,
        })
    }

    fn run(&mut self) {
        let _span = obs::span(OBS_CATEGORY, "router-loop");
        let mut events = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            self.redial_down_shards();
            events.clear();
            if self.poller.wait(&mut events, Some(TICK)).is_err() {
                break;
            }
            let drained = std::mem::take(&mut events);
            for event in &drained {
                match event.token {
                    WAKE_TOKEN => self.wake_rx.drain(),
                    LISTEN_TOKEN => self.accept_ready(),
                    token if self.shard_tokens.contains_key(&token) => {
                        let idx = self.shard_tokens[&token];
                        self.shard_ready(idx, event.readable, event.hangup);
                    }
                    token => self.client_ready(token, event.readable, event.hangup),
                }
            }
            events = drained;
            self.publish_gauges();
        }
        obs::metrics().gauge(ROUTER_SHARDS_ALIVE_METRIC).set(0.0);
        obs::metrics().gauge(ROUTER_INFLIGHT_METRIC).set(0.0);
    }

    fn publish_gauges(&self) {
        let alive = self
            .shards
            .iter()
            .filter(|s| matches!(s.state, LinkState::Up { .. }))
            .count();
        let inflight: usize = self
            .shards
            .iter()
            .map(|s| match &s.state {
                LinkState::Up { pending, .. } => pending.len(),
                LinkState::Down => 0,
            })
            .sum();
        obs::metrics()
            .gauge(ROUTER_SHARDS_ALIVE_METRIC)
            .set(alive as f64);
        obs::metrics()
            .gauge(ROUTER_INFLIGHT_METRIC)
            .set(inflight as f64);
    }

    /// Dials every down shard whose redial interval has elapsed, and
    /// sends the hello handshake on success.
    fn redial_down_shards(&mut self) {
        for idx in 0..self.shards.len() {
            let due = {
                let link = &self.shards[idx];
                matches!(link.state, LinkState::Down)
                    && link
                        .last_attempt
                        .is_none_or(|t| t.elapsed() >= self.config.reconnect_interval)
            };
            if !due {
                continue;
            }
            self.shards[idx].last_attempt = Some(Instant::now());
            let addr = self.shards[idx].spec.addr;
            let stream = match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let conn = match FrameConn::new(stream) {
                Ok(c) => c,
                Err(_) => continue,
            };
            let token = self.next_token;
            self.next_token += 1;
            if self
                .poller
                .register(conn.fd(), token, Interest::READABLE)
                .is_err()
            {
                continue;
            }
            self.shard_tokens.insert(token, idx);
            self.shards[idx].state = LinkState::Up {
                conn,
                token,
                interest: Interest::READABLE,
                pending: HashMap::new(),
                hello: None,
            };
            let uid = self.next_uid;
            self.next_uid += 1;
            let wire = frame_bytes(&encode_hello_request(uid));
            if let LinkState::Up { conn, pending, .. } = &mut self.shards[idx].state {
                pending.insert(uid, Pending::Hello);
                conn.queue_wire(&wire);
            }
            self.flush_shard(idx);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let conn = match FrameConn::new(stream) {
                        Ok(c) => c,
                        Err(_) => continue,
                    };
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(conn.fd(), token, Interest::READABLE)
                        .is_err()
                    {
                        continue;
                    }
                    self.clients.insert(
                        token,
                        ClientConn {
                            conn,
                            interest: Interest::READABLE,
                            closing: false,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn client_ready(&mut self, token: u64, readable: bool, hangup: bool) {
        if readable {
            let (bodies, outcome) = {
                let client = match self.clients.get_mut(&token) {
                    Some(c) => c,
                    None => return,
                };
                if client.closing {
                    (Vec::new(), ReadOutcome::Open)
                } else {
                    let mut bodies = Vec::new();
                    let outcome = client.conn.read_frames(|b| bodies.push(b));
                    (bodies, outcome)
                }
            };
            for body in bodies {
                self.handle_client_frame(token, body);
            }
            match outcome {
                ReadOutcome::Open => {}
                ReadOutcome::Closed => {
                    self.drop_client(token);
                    return;
                }
                ReadOutcome::Violation(v) => {
                    let err = match v {
                        FrameViolation::TooLarge(len) => ProtoError::FrameTooLarge(len),
                        FrameViolation::BadChecksum => ProtoError::ChecksumMismatch,
                    };
                    let wire = frame_bytes(&encode_response(&ResponseFrame::direct(
                        0,
                        Err(ServeError::BadRequest(err.to_string())),
                    )));
                    if let Some(client) = self.clients.get_mut(&token) {
                        client.conn.queue_wire(&wire);
                        client.closing = true;
                    }
                }
            }
        }
        if hangup {
            let gone = self
                .clients
                .get(&token)
                .is_some_and(|c| !c.conn.wants_write());
            if gone {
                self.drop_client(token);
                return;
            }
        }
        self.reconcile_client(token);
    }

    fn handle_client_frame(&mut self, token: u64, body: Vec<u8>) {
        let route = match peek_request_route(&body) {
            Ok(r) => r,
            Err(e) => {
                self.send_to_client(
                    token,
                    &frame_bytes(&encode_response(&ResponseFrame::direct(
                        0,
                        Err(ServeError::BadRequest(e.to_string())),
                    ))),
                );
                return;
            }
        };
        if route.is_health {
            self.fan_out_health(token, route.id);
            return;
        }
        let robot = match route.robot {
            Some(r) => r,
            None => {
                // A hello aimed at the router: answer with the fleet's
                // merged roster so operators can introspect the cluster
                // with the same handshake shards speak.
                let mut robots: Vec<String> = self
                    .shards
                    .iter()
                    .filter_map(|s| match &s.state {
                        LinkState::Up {
                            hello: Some(info), ..
                        } => Some(info.robots.clone()),
                        _ => None,
                    })
                    .flatten()
                    .collect();
                robots.sort_unstable();
                robots.dedup();
                let wire = frame_bytes(&encode_hello_response(
                    route.id,
                    &HelloInfo {
                        shard: "router".to_string(),
                        robots,
                    },
                ));
                self.send_to_client(token, &wire);
                return;
            }
        };
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        obs::metrics().counter(ROUTER_REQUESTS_METRIC).add(1);
        let entry = Pending::Client {
            token,
            id: route.id,
            robot,
            body,
            rerouted: false,
            attempts: 0,
        };
        self.dispatch(entry);
    }

    /// Routes a pending client entry to the first alive shard in its
    /// robot's preference order, shedding typed errors when the ladder
    /// runs out. Re-used verbatim by failover (with `rerouted` set).
    fn dispatch(&mut self, entry: Pending) {
        let (token, id, robot, body, mut rerouted, attempts) = match entry {
            Pending::Client {
                token,
                id,
                robot,
                body,
                rerouted,
                attempts,
            } => (token, id, robot, body, rerouted, attempts),
            _ => return,
        };
        if attempts >= self.shards.len().max(1) {
            self.shed(token, id, "request bounced across every shard".to_string());
            return;
        }
        let preference = if self.ring.is_empty() {
            Vec::new()
        } else {
            self.ring.preference(&robot)
        };
        let owner = preference.first().copied();
        let chosen = preference
            .into_iter()
            .find(|&idx| matches!(self.shards[idx].state, LinkState::Up { .. }));
        let chosen = match chosen {
            Some(c) => c,
            None => {
                self.shed(token, id, format!("no shard alive for robot {robot}"));
                return;
            }
        };
        if Some(chosen) != owner {
            rerouted = true;
        }
        let over_cap = match &self.shards[chosen].state {
            LinkState::Up { pending, .. } => pending.len() >= self.config.max_inflight_per_shard,
            LinkState::Down => true,
        };
        if over_cap {
            let name = self.shards[chosen].spec.name.clone();
            self.shed(
                token,
                id,
                format!(
                    "shard {name} at capacity ({} in flight)",
                    self.config.max_inflight_per_shard
                ),
            );
            return;
        }
        if rerouted {
            self.stats.rerouted.fetch_add(1, Ordering::Relaxed);
            obs::metrics().counter(ROUTER_REROUTED_METRIC).add(1);
        }
        let uid = self.next_uid;
        self.next_uid += 1;
        let mut upstream_body = body.clone();
        rewrite_id(&mut upstream_body, uid, false);
        let wire = frame_bytes(&upstream_body);
        if let LinkState::Up { conn, pending, .. } = &mut self.shards[chosen].state {
            pending.insert(
                uid,
                Pending::Client {
                    token,
                    id,
                    robot,
                    body,
                    rerouted,
                    attempts: attempts + 1,
                },
            );
            conn.queue_wire(&wire);
        }
        self.flush_shard(chosen);
    }

    /// Typed router-side rejection (admission cap or an empty fleet).
    fn shed(&mut self, token: u64, id: u64, reason: String) {
        self.stats.shed.fetch_add(1, Ordering::Relaxed);
        obs::metrics().counter(ROUTER_SHED_METRIC).add(1);
        let wire = frame_bytes(&encode_response(&ResponseFrame::direct(
            id,
            Err(ServeError::Rejected { reason }),
        )));
        self.send_to_client(token, &wire);
    }

    fn fan_out_health(&mut self, token: u64, id: u64) {
        let alive: Vec<usize> = (0..self.shards.len())
            .filter(|&i| matches!(self.shards[i].state, LinkState::Up { .. }))
            .collect();
        if alive.is_empty() {
            let wire = frame_bytes(&encode_response(&ResponseFrame::direct(
                id,
                Ok(ServePayload::Health(HealthReport {
                    ready: false,
                    robots: Vec::new(),
                })),
            )));
            self.send_to_client(token, &wire);
            return;
        }
        let fanout_id = self.next_fanout;
        self.next_fanout += 1;
        self.fanouts.insert(
            fanout_id,
            FanOut {
                token,
                id,
                remaining: alive.len(),
                reports: Vec::with_capacity(alive.len()),
            },
        );
        for idx in alive {
            let uid = self.next_uid;
            self.next_uid += 1;
            let wire = frame_bytes(&encode_health_request(uid));
            if let LinkState::Up { conn, pending, .. } = &mut self.shards[idx].state {
                pending.insert(uid, Pending::HealthFan { fanout: fanout_id });
                conn.queue_wire(&wire);
            }
            self.flush_shard(idx);
        }
    }

    /// Completes a fan-out whose `remaining` reached zero: merges the
    /// per-shard reports (each robot's row comes from the alive shard
    /// ranked highest in its ring preference — its current effective
    /// owner) and answers the client.
    fn finish_fanout(&mut self, fanout_id: u64) {
        let fanout = match self.fanouts.remove(&fanout_id) {
            Some(f) => f,
            None => return,
        };
        let ready = fanout.reports.iter().any(|(_, r)| r.ready);
        let mut best: HashMap<String, (usize, crate::engine::RobotHealth)> = HashMap::new();
        for (shard_idx, report) in &fanout.reports {
            for robot in &report.robots {
                let rank = self
                    .ring
                    .preference(&robot.name)
                    .iter()
                    .position(|&i| i == *shard_idx)
                    .unwrap_or(usize::MAX);
                match best.get(&robot.name) {
                    Some((existing, _)) if *existing <= rank => {}
                    _ => {
                        best.insert(robot.name.clone(), (rank, robot.clone()));
                    }
                }
            }
        }
        let mut robots: Vec<crate::engine::RobotHealth> =
            best.into_values().map(|(_, r)| r).collect();
        robots.sort_by(|a, b| a.name.cmp(&b.name));
        let wire = frame_bytes(&encode_response(&ResponseFrame::direct(
            fanout.id,
            Ok(ServePayload::Health(HealthReport { ready, robots })),
        )));
        self.send_to_client(fanout.token, &wire);
    }

    fn shard_ready(&mut self, idx: usize, readable: bool, hangup: bool) {
        if readable {
            let (bodies, outcome) = {
                let link = &mut self.shards[idx];
                match &mut link.state {
                    LinkState::Up { conn, .. } => {
                        let mut bodies = Vec::new();
                        let outcome = conn.read_frames(|b| bodies.push(b));
                        (bodies, outcome)
                    }
                    LinkState::Down => return,
                }
            };
            for body in bodies {
                self.handle_shard_frame(idx, body);
            }
            match outcome {
                ReadOutcome::Open => {}
                // A framing violation from a shard (possible under
                // injected wire corruption) desyncs the stream exactly
                // like a crash: fail the link and re-dispatch.
                ReadOutcome::Closed | ReadOutcome::Violation(_) => {
                    self.fail_shard(idx);
                    return;
                }
            }
        }
        if hangup {
            let dead = match &self.shards[idx].state {
                LinkState::Up { conn, .. } => !conn.wants_write(),
                LinkState::Down => false,
            };
            if dead {
                self.fail_shard(idx);
                return;
            }
        }
        self.flush_shard(idx);
    }

    fn handle_shard_frame(&mut self, idx: usize, mut body: Vec<u8>) {
        let (uid, raw_status) = match peek_response_head(&body) {
            Ok(head) => head,
            Err(_) => return,
        };
        let entry = match &mut self.shards[idx].state {
            LinkState::Up { pending, .. } => match pending.remove(&uid) {
                Some(e) => e,
                None => return,
            },
            LinkState::Down => return,
        };
        match entry {
            Pending::Hello => {
                if status_is_hello(raw_status) {
                    if let Ok((_, info)) = decode_hello_response(&body) {
                        if let LinkState::Up { hello, .. } = &mut self.shards[idx].state {
                            *hello = Some(info);
                        }
                    }
                }
            }
            Pending::HealthFan { fanout } => {
                if let Ok(frame) = decode_response(&body) {
                    if let Ok(ServePayload::Health(report)) = frame.result {
                        if let Some(f) = self.fanouts.get_mut(&fanout) {
                            f.reports.push((idx, report));
                        }
                    }
                }
                let done = {
                    let f = self.fanouts.get_mut(&fanout);
                    match f {
                        Some(f) => {
                            f.remaining -= 1;
                            f.remaining == 0
                        }
                        None => false,
                    }
                };
                if done {
                    self.finish_fanout(fanout);
                }
            }
            Pending::Client {
                token,
                id,
                rerouted,
                ..
            } => {
                rewrite_id(&mut body, id, rerouted);
                let wire = frame_bytes(&body);
                self.stats.responses.fetch_add(1, Ordering::Relaxed);
                obs::metrics().counter(ROUTER_RESPONSES_METRIC).add(1);
                self.send_to_client(token, &wire);
            }
        }
    }

    /// Tears down a dead shard link and walks its pending table through
    /// the failover ladder: client requests re-dispatch to the next
    /// alive shard in their preference order (marked rerouted), health
    /// legs resolve their fan-outs, hellos evaporate.
    fn fail_shard(&mut self, idx: usize) {
        let state = std::mem::replace(&mut self.shards[idx].state, LinkState::Down);
        let (conn, token, pending) = match state {
            LinkState::Up {
                conn,
                token,
                pending,
                ..
            } => (conn, token, pending),
            LinkState::Down => return,
        };
        let _ = self.poller.deregister(conn.fd());
        self.shard_tokens.remove(&token);
        self.shards[idx].last_attempt = Some(Instant::now());
        self.stats.failovers.fetch_add(1, Ordering::Relaxed);
        obs::metrics().counter(ROUTER_FAILOVERS_METRIC).add(1);
        let mut finished_fanouts = Vec::new();
        for (_, entry) in pending {
            match entry {
                Pending::Hello => {}
                Pending::HealthFan { fanout } => {
                    if let Some(f) = self.fanouts.get_mut(&fanout) {
                        f.remaining -= 1;
                        if f.remaining == 0 {
                            finished_fanouts.push(fanout);
                        }
                    }
                }
                Pending::Client {
                    token,
                    id,
                    robot,
                    body,
                    attempts,
                    ..
                } => {
                    // Failover re-dispatch is always a reroute: the
                    // owner (or previous fallback) just died mid-flight.
                    self.dispatch(Pending::Client {
                        token,
                        id,
                        robot,
                        body,
                        rerouted: true,
                        attempts,
                    });
                }
            }
        }
        for fanout in finished_fanouts {
            self.finish_fanout(fanout);
        }
    }

    fn send_to_client(&mut self, token: u64, wire: &[u8]) {
        if let Some(client) = self.clients.get_mut(&token) {
            client.conn.queue_wire(wire);
        }
        self.reconcile_client(token);
    }

    fn reconcile_client(&mut self, token: u64) {
        let mut drop_after = false;
        {
            let client = match self.clients.get_mut(&token) {
                Some(c) => c,
                None => return,
            };
            match client.conn.flush() {
                FlushOutcome::Closed => drop_after = true,
                FlushOutcome::Drained | FlushOutcome::Blocked => {}
            }
            if !drop_after && client.closing && !client.conn.wants_write() {
                drop_after = true;
            }
            if !drop_after {
                let want = Interest {
                    readable: !client.closing,
                    writable: client.conn.wants_write(),
                };
                if want != client.interest {
                    if self.poller.modify(client.conn.fd(), token, want).is_err() {
                        drop_after = true;
                    } else {
                        client.interest = want;
                    }
                }
            }
        }
        if drop_after {
            self.drop_client(token);
        }
    }

    fn flush_shard(&mut self, idx: usize) {
        let mut failed = false;
        {
            let link = &mut self.shards[idx];
            if let LinkState::Up {
                conn,
                token,
                interest,
                ..
            } = &mut link.state
            {
                match conn.flush() {
                    FlushOutcome::Closed => failed = true,
                    FlushOutcome::Drained | FlushOutcome::Blocked => {}
                }
                if !failed {
                    let want = Interest {
                        readable: true,
                        writable: conn.wants_write(),
                    };
                    if want != *interest {
                        if self.poller.modify(conn.fd(), *token, want).is_err() {
                            failed = true;
                        } else {
                            *interest = want;
                        }
                    }
                }
            }
        }
        if failed {
            self.fail_shard(idx);
        }
    }

    fn drop_client(&mut self, token: u64) {
        if let Some(client) = self.clients.remove(&token) {
            let _ = self.poller.deregister(client.conn.fd());
        }
        // Pending upstream entries for this client stay in flight; their
        // responses are dropped on arrival (the token lookup misses).
        self.fanouts.retain(|_, f| f.token != token);
    }
}
