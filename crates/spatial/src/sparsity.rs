//! Robomorphic 6×6 sparsity analysis.
//!
//! RoboShape's processing elements inherit the *robomorphic* insight
//! (paper Sec. 2, "Prior Work"): the per-joint 6×6 spatial transforms and
//! inertias have structural sparsity fixed by the joint type and link
//! geometry — "small 6×6 joint/inertia matrices that are 40–60% sparse"
//! (paper Sec. 6). This module computes those structural patterns, which
//! size the sparse functional units inside each PE.

use crate::{Joint, SpatialInertia};
use roboshape_linalg::Mat6;

/// The structural nonzero pattern of a configuration-dependent 6×6
/// matrix: an entry is structurally nonzero if it is nonzero at *any*
/// sampled configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern6 {
    nonzero: [[bool; 6]; 6],
}

impl Pattern6 {
    /// The union pattern over a set of matrices.
    pub fn union_of<'a>(mats: impl IntoIterator<Item = &'a Mat6>, eps: f64) -> Pattern6 {
        let mut nonzero = [[false; 6]; 6];
        for m in mats {
            for (i, row) in nonzero.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    *cell |= m.get(i, j).abs() > eps;
                }
            }
        }
        Pattern6 { nonzero }
    }

    /// Structural nonzero count (out of 36).
    pub fn nnz(&self) -> usize {
        self.nonzero.iter().flatten().filter(|&&b| b).count()
    }

    /// Fraction of structural zeros.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / 36.0
    }

    /// Whether entry `(i, j)` is structurally nonzero.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds (6×6).
    pub fn is_nonzero(&self, i: usize, j: usize) -> bool {
        self.nonzero[i][j]
    }

    /// ASCII render, `x`/`.` per entry.
    pub fn render(&self) -> String {
        let mut s = String::with_capacity(42);
        for row in &self.nonzero {
            for &b in row {
                s.push(if b { 'x' } else { '.' });
            }
            s.push('\n');
        }
        s
    }
}

/// Structural pattern of a joint's parent→child transform `X(q)`, sampled
/// across the configuration range. Multiplier hardware inside a PE only
/// needs lanes for these entries.
pub fn joint_transform_pattern(joint: &Joint, samples: usize) -> Pattern6 {
    let mats: Vec<Mat6> = (0..samples.max(2))
        .map(|k| {
            let q = -3.0 + 6.0 * k as f64 / (samples.max(2) - 1) as f64;
            joint.child_xform(q).to_mat6()
        })
        .collect();
    Pattern6::union_of(mats.iter(), 1e-12)
}

/// Structural pattern of a link's 6×6 spatial inertia.
pub fn inertia_pattern(inertia: &SpatialInertia) -> Pattern6 {
    Pattern6::union_of([&inertia.to_mat6()], 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xform;
    use roboshape_linalg::Vec3;

    #[test]
    fn aligned_revolute_transform_is_sparse() {
        // A revolute joint about z with no tree offset: X(q) is block
        // diagonal with two 2+1 rotation blocks → 10/36 nonzero (72%
        // sparse functional unit).
        let joint = Joint::revolute(Vec3::unit_z());
        let p = joint_transform_pattern(&joint, 16);
        assert_eq!(p.nnz(), 10, "\n{}", p.render());
        assert!(p.sparsity() > 0.7);
    }

    #[test]
    fn offset_revolute_lands_in_the_robomorphic_band() {
        // With a link offset the bottom-left block fills in: the paper's
        // "40-60% sparse" regime for real robot joints.
        let joint = Joint::revolute(Vec3::unit_z())
            .with_tree_xform(Xform::from_translation(Vec3::new(0.1, 0.0, -0.3)));
        let p = joint_transform_pattern(&joint, 16);
        let s = p.sparsity();
        assert!((0.35..=0.65).contains(&s), "sparsity {s}\n{}", p.render());
    }

    #[test]
    fn prismatic_transforms_are_sparser_than_offset_revolute() {
        let pris = Joint::prismatic(Vec3::unit_z());
        let p = joint_transform_pattern(&pris, 16);
        // Identity rotation: diagonal + the translation skew entries.
        assert!(p.sparsity() >= 0.6, "{}", p.render());
    }

    #[test]
    fn inertia_pattern_reflects_geometry() {
        // A point mass on the z axis: products of inertia vanish, h has
        // only x/y skew entries.
        let i = SpatialInertia::point_like(2.0, Vec3::new(0.0, 0.0, -0.2), 0.01);
        let p = inertia_pattern(&i);
        assert!(p.sparsity() > 0.5, "{}", p.render());
        // Mass block diagonal always present.
        for k in 3..6 {
            assert!(p.is_nonzero(k, k));
        }
    }

    #[test]
    fn union_grows_monotonically() {
        let a = Mat6::identity();
        let mut b = Mat6::zero();
        b.set(0, 5, 1.0);
        let pa = Pattern6::union_of([&a], 1e-12);
        let pab = Pattern6::union_of([&a, &b], 1e-12);
        assert_eq!(pa.nnz(), 6);
        assert_eq!(pab.nnz(), 7);
    }
}
