//! The paper's Table 3 topology metrics.

use crate::Topology;
use core::fmt;

/// Shape metrics of a robot topology (paper Table 3 / Fig. 11).
///
/// These are the quantities the paper's resource-allocation strategies key
/// on (Sec. 5.4): forward-traversal parallelism tracks *leaf depth*,
/// backward-traversal parallelism tracks *descendants*, and asymmetry
/// (captured by the leaf-depth standard deviation) decides whether the
/// Hybrid heuristic matches the optimal allocation.
///
/// # Examples
///
/// ```
/// use roboshape_topology::Topology;
///
/// let iiwa = Topology::chain(7);
/// let m = iiwa.metrics();
/// assert_eq!(m.total_links, 7);
/// assert_eq!(m.max_leaf_depth, 7);
/// assert_eq!(m.max_descendants, 7);
/// assert_eq!(m.leaf_depth_stdev, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TopologyMetrics {
    /// Total number of moving links `N`.
    pub total_links: usize,
    /// Depth of the deepest leaf (longest chain).
    pub max_leaf_depth: usize,
    /// Mean leaf depth.
    pub avg_leaf_depth: f64,
    /// Largest subtree size (descendants of any link, itself included).
    pub max_descendants: usize,
    /// Population standard deviation of leaf depths (0 for symmetric
    /// robots; the paper reports 1.6 for HyQ+arm, which pins the population
    /// formula — see DESIGN.md).
    pub leaf_depth_stdev: f64,
}

impl Topology {
    /// Computes the Table 3 metrics for this topology.
    pub fn metrics(&self) -> TopologyMetrics {
        let leaves = self.leaves();
        let depths: Vec<f64> = leaves.iter().map(|&l| self.depth(l) as f64).collect();
        let max_leaf_depth = leaves.iter().map(|&l| self.depth(l)).max().unwrap_or(0);
        let avg = depths.iter().sum::<f64>() / depths.len() as f64;
        let var = depths.iter().map(|d| (d - avg) * (d - avg)).sum::<f64>() / depths.len() as f64;
        let max_descendants = (0..self.len())
            .map(|i| self.descendants(i))
            .max()
            .unwrap_or(0);
        TopologyMetrics {
            total_links: self.len(),
            max_leaf_depth,
            avg_leaf_depth: avg,
            max_descendants,
            leaf_depth_stdev: var.sqrt(),
        }
    }
}

impl fmt::Display for TopologyMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={} maxLeafDepth={} avgLeafDepth={:.1} maxDesc={} leafDepthStd={:.1}",
            self.total_links,
            self.max_leaf_depth,
            self.avg_leaf_depth,
            self.max_descendants,
            self.leaf_depth_stdev
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(parents: Vec<Option<usize>>) -> Topology {
        Topology::new(parents).unwrap()
    }

    #[test]
    fn chain_metrics() {
        let m = Topology::chain(12).metrics();
        assert_eq!(m.total_links, 12);
        assert_eq!(m.max_leaf_depth, 12);
        assert_eq!(m.avg_leaf_depth, 12.0);
        assert_eq!(m.max_descendants, 12);
        assert_eq!(m.leaf_depth_stdev, 0.0);
    }

    #[test]
    fn hyq_metrics() {
        // 4 independent legs of 3 links each.
        let mut parents = Vec::new();
        for _ in 0..4 {
            parents.push(None);
            let base = parents.len() - 1;
            parents.push(Some(base));
            parents.push(Some(base + 1));
        }
        let m = topo(parents).metrics();
        assert_eq!(m.total_links, 12);
        assert_eq!(m.max_leaf_depth, 3);
        assert_eq!(m.avg_leaf_depth, 3.0);
        assert_eq!(m.max_descendants, 3);
        assert_eq!(m.leaf_depth_stdev, 0.0);
    }

    #[test]
    fn baxter_metrics() {
        let mut parents = vec![None]; // head
        for _ in 0..2 {
            parents.push(None);
            for _ in 1..7 {
                parents.push(Some(parents.len() - 1));
            }
        }
        let m = topo(parents).metrics();
        assert_eq!(m.total_links, 15);
        assert_eq!(m.max_leaf_depth, 7);
        assert!((m.avg_leaf_depth - 5.0).abs() < 1e-12);
        assert_eq!(m.max_descendants, 7);
        // Population stdev of {1, 7, 7}: sqrt(8) ≈ 2.83 (the paper's table
        // prints 2.3; see DESIGN.md for the discrepancy note).
        assert!((m.leaf_depth_stdev - 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn hyq_plus_arm_metrics_match_paper() {
        // HyQ (4 × 3-link legs) plus a 7-link arm on the trunk.
        let mut parents = Vec::new();
        for _ in 0..4 {
            parents.push(None);
            let base = parents.len() - 1;
            parents.push(Some(base));
            parents.push(Some(base + 1));
        }
        parents.push(None);
        for _ in 1..7 {
            parents.push(Some(parents.len() - 1));
        }
        let m = topo(parents).metrics();
        assert_eq!(m.total_links, 19);
        assert_eq!(m.max_leaf_depth, 7);
        // Paper Table 3: avg leaf depth 3.8, leaf-depth stdev 1.6.
        assert!((m.avg_leaf_depth - 3.8).abs() < 1e-12);
        assert!((m.leaf_depth_stdev - 1.6).abs() < 1e-12);
        assert_eq!(m.max_descendants, 7);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Topology::chain(3).metrics().to_string();
        assert!(s.contains("N=3"));
    }
}
