//! Topology-based block-sparse matrix machinery (paper pattern ②).
//!
//! The mass matrix `M(q)` and its inverse have a sparsity pattern fixed by
//! the robot's topology: `M[i][j] ≠ 0` exactly when links `i` and `j`
//! share a root-to-leaf path, so robots with independent limbs produce
//! block-diagonal matrices (paper Sec. 3.2, Fig. 6a). This crate turns
//! that structure into hardware-ready plans:
//!
//! * [`SparsityPattern`] — the structural pattern, derived from a
//!   [`roboshape_topology::Topology`];
//! * [`BlockTiling`] — tiles the `N×N` matrix with `b×b` blocks and
//!   classifies each as dense work or a skippable all-zero NOP (Fig. 6b);
//! * [`BlockMatmulPlan`] — the blocked multiplication
//!   `C = M⁻¹ · [∂τ/∂q  ∂τ/∂q̇]` as a list of block operations scheduled
//!   over a fixed number of block mat-mul units, with a cycle-latency
//!   model ([`MatmulLatencyModel`]) exhibiting the paper's non-linear
//!   block-size behaviour (Fig. 15), plus an [`execute`](BlockMatmulPlan::execute)
//!   method that actually performs the arithmetic (verified against dense
//!   multiplication);
//! * [`IoModel`] / [`encode_sparse`] / [`decode_sparse`] — the sparse I/O
//!   packet format that skips structural zeros on the coprocessor link
//!   (Sec. 5.2: 3.1× I/O reduction for HyQ, 2.1× for Baxter).
//!
//! # Examples
//!
//! ```
//! use roboshape_blocksparse::{BlockTiling, SparsityPattern};
//! use roboshape_topology::Topology;
//!
//! // HyQ: four independent 3-link legs → block-diagonal pattern.
//! let mut parents = Vec::new();
//! for _ in 0..4 {
//!     parents.push(None);
//!     let b = parents.len() - 1;
//!     parents.push(Some(b));
//!     parents.push(Some(b + 1));
//! }
//! let topo = Topology::new(parents).unwrap();
//! let pattern = SparsityPattern::mass_matrix(&topo);
//! assert_eq!(pattern.nnz(), 36); // 4 legs × 3×3
//!
//! // 3×3 tiles align perfectly with the legs: only 4 of 16 tiles are work.
//! let tiling = BlockTiling::new(&pattern, 3);
//! assert_eq!(tiling.nonzero_tiles(), 4);
//! assert_eq!(tiling.nop_tiles(), 12);
//! ```

#![warn(missing_docs)]

mod factor;
mod io;
mod pattern;
mod plan;
mod tiling;

pub use factor::{FactorError, TopologyCholesky};
pub use io::{decode_sparse, encode_sparse, IoModel, SparseCodecError};
pub use pattern::SparsityPattern;
pub use plan::{block_matmul_latency, BlockMatmulPlan, BlockOp, MatmulLatencyModel};
pub use tiling::BlockTiling;
