//! Benchmark-history records and regression gating.
//!
//! The repository's Criterion benches record point-in-time numbers in
//! `BENCH_*.json`; nothing in those files stops a silent regression.
//! This crate is the correctness-tooling layer that does:
//!
//! * [`record`] — the [`BenchRecord`] schema every bench emits into
//!   `bench/current/` (and whose accepted copies live in the committed
//!   `bench/baselines/` history directory): commit SHA, machine
//!   fingerprint, and direction-classified metrics with a measured
//!   noise band. Metric keys are wall-clock-free: they name rates and
//!   quantiles, never timestamps, so records from different days are
//!   directly comparable.
//! * [`compare`] — the noise-aware diff between a baseline record and a
//!   current record. Direction-aware (throughput down or p99 up is a
//!   regression; the reverse is an improvement), with per-metric
//!   tolerance bands derived from repeated-run variance and widened in
//!   smoke mode. `roboshape bench compare` exits nonzero when any
//!   gated metric regresses past its band.
//! * [`bundle`] — the validation-bundle manifest for third-party blind
//!   reproduction (pinned seeds, expected report snapshots, latency and
//!   failure-histogram context, commit SHA), modeled on the
//!   rpg-encoder Validation Playbook.
//! * [`json`] — the minimal self-contained JSON tree parser/writer the
//!   above are built on (the workspace vendors no serde_json; see
//!   DESIGN.md §5 for the dependency policy).
//!
//! Everything here is deterministic and dependency-free so the gate
//! itself can never be the flaky part of CI.

#![deny(missing_docs)]

pub mod bundle;
pub mod compare;
pub mod json;
pub mod record;

pub use bundle::{Manifest, SnapshotEntry, SnapshotStatus, VerifyOutcome};
pub use compare::{CompareConfig, CompareReport, MetricDelta, MetricOutcome};
pub use json::Json;
pub use record::{BenchRecord, MachineInfo, Metric, MetricKind, RecordError};

/// FNV-1a 64-bit hash of a byte string — the bundle's snapshot
/// fingerprint (the same primitive the serve wire protocol uses for
/// frame checksums, reimplemented here so the crate stays leaf-level).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
