//! Simulator throughput over the full zoo: cold compile (schedule →
//! flat op program), warm execute (bound scratch arena, zero-alloc
//! path), and the retired schedule interpreter side by side. Besides
//! the Criterion timings, one instrumented run writes a
//! machine-readable summary to `BENCH_sim.json` at the repository
//! root.
//!
//! Set `SIM_BENCH_SMOKE=1` to shrink the iteration counts for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use roboshape::{
    shared_program, shared_program_for, try_simulate_interpreted, AcceleratorDesign,
    AcceleratorKnobs, BackendKind, CompiledProgram, SimScratch,
};
use roboshape_benchrec::record::relative_spread;
use roboshape_benchrec::{BenchRecord, MetricKind};
use roboshape_robots::{zoo, Zoo};
use std::fs;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("SIM_BENCH_SMOKE").is_some()
}

/// Warm evaluations per robot for the summary run.
fn evals() -> usize {
    if smoke() {
        50
    } else {
        2000
    }
}

/// Cold compiles per robot for the summary run.
fn compiles() -> usize {
    if smoke() {
        3
    } else {
        20
    }
}

fn knobs_for(n: usize) -> AcceleratorKnobs {
    // Mid-sized PE/block allocation: real pipelining, real blocked matmul.
    AcceleratorKnobs::symmetric(n.min(4), n.min(4))
}

fn bench_inputs(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    (
        (0..n).map(|i| 0.10 * (i as f64 + 1.0)).collect(),
        (0..n).map(|i| 0.02 * (i as f64 + 1.0)).collect(),
        (0..n).map(|i| 0.30 * (i as f64 + 1.0)).collect(),
    )
}

/// A batch of distinct-but-valid inputs (one trajectory step apart).
fn batch_inputs(n: usize, batch: usize) -> Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> {
    (0..batch)
        .map(|b| {
            let s = 0.03 * b as f64;
            (
                (0..n).map(|i| 0.10 * (i as f64 + 1.0) + s).collect(),
                (0..n).map(|i| 0.02 * (i as f64 + 1.0) - s).collect(),
                (0..n).map(|i| 0.30 * (i as f64 + 1.0) + s).collect(),
            )
        })
        .collect()
}

/// Which backend the Criterion batch timing runs (`SIM_BENCH_BACKEND`;
/// the JSON summary always measures both for the comparison flags).
fn selected_backend() -> BackendKind {
    match std::env::var("SIM_BENCH_BACKEND").as_deref() {
        Ok("scalar") => BackendKind::Scalar,
        _ => BackendKind::Lanes,
    }
}

/// Runs `total` iterations of `f` split into three timed chunks and
/// returns `(µs per iteration, relative spread of the per-chunk
/// rates)`. The spread is the noise estimate the BenchRecord carries:
/// what this machine's scheduler did to three back-to-back passes of
/// the identical workload.
fn timed_chunks<F: FnMut()>(total: usize, mut f: F) -> (f64, f64) {
    const CHUNKS: usize = 3;
    let per = (total / CHUNKS).max(1);
    let mut rates = [0.0; CHUNKS];
    let start = Instant::now();
    for rate in &mut rates {
        let chunk_start = Instant::now();
        for _ in 0..per {
            f();
        }
        *rate = per as f64 / chunk_start.elapsed().as_secs_f64().max(1e-12);
    }
    let us = start.elapsed().as_secs_f64() * 1e6 / (CHUNKS * per) as f64;
    (us, relative_spread(&rates))
}

struct RobotRow {
    name: &'static str,
    links: usize,
    compile_us: f64,
    cold_first_eval_us: f64,
    warm_exec_us: f64,
    /// Relative spread of the warm chunks' rates.
    warm_noise: f64,
    interpreted_us: f64,
    interp_noise: f64,
}

impl RobotRow {
    fn warm_evals_per_sec(&self) -> f64 {
        1e6 / self.warm_exec_us
    }

    fn speedup_vs_interpreted(&self) -> f64 {
        self.interpreted_us / self.warm_exec_us
    }
}

/// Times cold compile, warm execute, and the interpreter for one robot.
fn measure(which: Zoo) -> RobotRow {
    let robot = zoo(which);
    let n = robot.num_links();
    let design = AcceleratorDesign::generate(robot.topology(), knobs_for(n));
    let (q, qd, tau) = bench_inputs(n);

    // Compile alone: lowering the schedule, bypassing every cache.
    let k = compiles();
    let start = Instant::now();
    for _ in 0..k {
        black_box(CompiledProgram::compile(&design));
    }
    let compile_us = start.elapsed().as_secs_f64() * 1e6 / k as f64;

    // Cold request end-to-end: compile, bind a fresh arena, first eval.
    let start = Instant::now();
    for _ in 0..k {
        let program = CompiledProgram::compile(&design);
        let mut scratch = SimScratch::default();
        black_box(
            program
                .execute_gradient(&robot, &mut scratch, &q, &qd, &tau)
                .expect("cold evaluation"),
        );
    }
    let cold_first_eval_us = start.elapsed().as_secs_f64() * 1e6 / k as f64;

    // Warm: bound arena + sized output, the zero-alloc path.
    let program = shared_program(&design);
    let mut scratch = SimScratch::default();
    let mut out = program
        .execute_gradient(&robot, &mut scratch, &q, &qd, &tau)
        .expect("warm-up evaluation");
    let (warm_exec_us, warm_noise) = timed_chunks(evals(), || {
        program
            .execute_gradient_into(&robot, &mut scratch, &q, &qd, &tau, &mut out)
            .expect("warm evaluation");
        black_box(&out.tau);
    });

    // Interpreter: the retired per-eval schedule walk, as a baseline.
    let (interpreted_us, interp_noise) = timed_chunks((evals() / 4).max(10), || {
        black_box(try_simulate_interpreted(&robot, &design, &q, &qd, &tau).expect("interpreted"));
    });

    RobotRow {
        name: which.name(),
        links: n,
        compile_us,
        cold_first_eval_us,
        warm_exec_us,
        warm_noise,
        interpreted_us,
        interp_noise,
    }
}

struct BatchRow {
    name: &'static str,
    links: usize,
    /// Warm per-entry µs for (backend, batch) ∈ {scalar, lanes} × {4, 8}.
    scalar_b4_us: f64,
    lanes_b4_us: f64,
    scalar_b8_us: f64,
    lanes_b8_us: f64,
    /// Per-case chunk-rate spreads, same order as the `_us` fields.
    scalar_b4_noise: f64,
    lanes_b4_noise: f64,
    scalar_b8_noise: f64,
    lanes_b8_noise: f64,
}

impl BatchRow {
    fn speedup_b4(&self) -> f64 {
        self.scalar_b4_us / self.lanes_b4_us
    }

    fn speedup_b8(&self) -> f64 {
        self.scalar_b8_us / self.lanes_b8_us
    }
}

/// Warm per-entry latency of one backend at one batch size: bound lane
/// and scalar arenas, reused output buffers — the zero-alloc batch path.
fn measure_batch_case(
    robot: &roboshape::RobotModel,
    design: &AcceleratorDesign,
    backend: BackendKind,
    batch: usize,
) -> (f64, f64) {
    let program = shared_program_for(design, backend);
    let mut scratch = SimScratch::default();
    let steps = batch_inputs(robot.num_links(), batch);
    let mut outs = Vec::new();
    program
        .execute_batch_into(robot, &mut scratch, &steps, &mut outs)
        .expect("warm-up batch");
    let k = (evals() / batch).max(10);
    let (batch_us, noise) = timed_chunks(k, || {
        program
            .execute_batch_into(robot, &mut scratch, &steps, &mut outs)
            .expect("warm batch");
        black_box(&outs[batch - 1].tau);
    });
    (batch_us / batch as f64, noise)
}

/// Scalar-loop vs lane backend at batch 4 and 8 for one robot.
fn measure_batch(which: Zoo) -> BatchRow {
    let robot = zoo(which);
    let n = robot.num_links();
    let design = AcceleratorDesign::generate(robot.topology(), knobs_for(n));
    let (scalar_b4_us, scalar_b4_noise) =
        measure_batch_case(&robot, &design, BackendKind::Scalar, 4);
    let (lanes_b4_us, lanes_b4_noise) = measure_batch_case(&robot, &design, BackendKind::Lanes, 4);
    let (scalar_b8_us, scalar_b8_noise) =
        measure_batch_case(&robot, &design, BackendKind::Scalar, 8);
    let (lanes_b8_us, lanes_b8_noise) = measure_batch_case(&robot, &design, BackendKind::Lanes, 8);
    BatchRow {
        name: which.name(),
        links: n,
        scalar_b4_us,
        lanes_b4_us,
        scalar_b8_us,
        lanes_b8_us,
        scalar_b4_noise,
        lanes_b4_noise,
        scalar_b8_noise,
        lanes_b8_noise,
    }
}

fn write_summary(rows: &[RobotRow], batch_rows: &[BatchRow]) {
    let warm_beats_cold = rows.iter().all(|r| r.warm_exec_us < r.cold_first_eval_us);
    let robots = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{name}\", \"links\": {links}, \"compile_us\": {comp:.2}, \"cold_first_eval_us\": {cold:.2}, \"warm_exec_us\": {warm:.2}, \"interpreted_us\": {interp:.2}, \"warm_evals_per_sec\": {eps:.0}, \"speedup_vs_interpreted\": {speedup:.2}}}",
                name = r.name,
                links = r.links,
                comp = r.compile_us,
                cold = r.cold_first_eval_us,
                warm = r.warm_exec_us,
                interp = r.interpreted_us,
                eps = r.warm_evals_per_sec(),
                speedup = r.speedup_vs_interpreted(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    // The tentpole comparison: per-entry throughput of the lane backend
    // against the scalar loop on identical coalesced batches.
    let lanes_beats_scalar_at_batch4 =
        batch_rows.iter().filter(|r| r.speedup_b4() > 1.0).count() >= 4;
    let batch = batch_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{name}\", \"links\": {links}, \"scalar_b4_us\": {s4:.2}, \"lanes_b4_us\": {l4:.2}, \"scalar_b8_us\": {s8:.2}, \"lanes_b8_us\": {l8:.2}, \"lanes_evals_per_sec_b4\": {eps4:.0}, \"lanes_evals_per_sec_b8\": {eps8:.0}, \"speedup_b4\": {sp4:.2}, \"speedup_b8\": {sp8:.2}}}",
                name = r.name,
                links = r.links,
                s4 = r.scalar_b4_us,
                l4 = r.lanes_b4_us,
                s8 = r.scalar_b8_us,
                l8 = r.lanes_b8_us,
                eps4 = 1e6 / r.lanes_b4_us,
                eps8 = 1e6 / r.lanes_b8_us,
                sp4 = r.speedup_b4(),
                sp8 = r.speedup_b8(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"sim_throughput\",\n  \"kernel\": \"dynamics_gradient\",\n  \"smoke\": {smoke},\n  \"warm_evals\": {evals},\n  \"simd_feature\": {simd},\n  \"warm_beats_cold\": {warm_beats_cold},\n  \"lanes_beats_scalar_at_batch4\": {lanes_beats_scalar_at_batch4},\n  \"robots\": [\n{robots}\n  ],\n  \"batch\": [\n{batch}\n  ]\n}}\n",
        smoke = smoke(),
        evals = evals(),
        simd = cfg!(feature = "simd"),
    );
    roboshape::obs::json::validate(&json).expect("summary is well-formed JSON");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    fs::write(path, json).expect("write BENCH_sim.json");
}

/// Emits the regression-gate record into `bench/current/` (see
/// docs/BENCHMARKS.md): warm and batch throughputs gate with their
/// measured chunk spreads; cold paths (compile, first eval) are
/// recorded as informational context because µs-scale one-shot timings
/// have more variance than any honest threshold.
fn write_record(rows: &[RobotRow], batch_rows: &[BatchRow]) {
    let mut rec = BenchRecord::new("sim_throughput", smoke(), cfg!(feature = "simd"));
    for r in rows {
        let name = r.name;
        rec.push(
            &format!("{name}.warm_evals_per_sec"),
            r.warm_evals_per_sec(),
            r.warm_noise,
        );
        rec.push(
            &format!("{name}.speedup_vs_interpreted"),
            r.speedup_vs_interpreted(),
            r.warm_noise + r.interp_noise,
        );
        rec.push_kind(
            &format!("{name}.compile_us"),
            r.compile_us,
            1.0,
            MetricKind::Informational,
        );
        rec.push_kind(
            &format!("{name}.cold_first_eval_us"),
            r.cold_first_eval_us,
            1.0,
            MetricKind::Informational,
        );
    }
    for r in batch_rows {
        let name = r.name;
        rec.push(
            &format!("{name}.lanes_evals_per_sec_b4"),
            1e6 / r.lanes_b4_us,
            r.lanes_b4_noise,
        );
        rec.push(
            &format!("{name}.lanes_evals_per_sec_b8"),
            1e6 / r.lanes_b8_us,
            r.lanes_b8_noise,
        );
        rec.push(
            &format!("{name}.speedup_b4"),
            r.speedup_b4(),
            r.lanes_b4_noise + r.scalar_b4_noise,
        );
        rec.push(
            &format!("{name}.speedup_b8"),
            r.speedup_b8(),
            r.lanes_b8_noise + r.scalar_b8_noise,
        );
    }
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../bench/current/sim_throughput.json"
    );
    rec.save(Path::new(path)).expect("write bench record");
}

fn bench_sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    // Criterion timings for the largest robot's warm path: the number
    // the compile-once/execute-many split exists to improve.
    let robot = zoo(Zoo::HyqArm);
    let n = robot.num_links();
    let design = AcceleratorDesign::generate(robot.topology(), knobs_for(n));
    let program = shared_program(&design);
    let mut scratch = SimScratch::default();
    let (q, qd, tau) = bench_inputs(n);
    let mut out = program
        .execute_gradient(&robot, &mut scratch, &q, &qd, &tau)
        .expect("warm-up evaluation");
    g.bench_function("warm_execute_hyq_arm", |b| {
        b.iter(|| {
            program
                .execute_gradient_into(&robot, &mut scratch, &q, &qd, &tau, &mut out)
                .expect("warm evaluation");
            black_box(&out.tau);
        })
    });
    g.bench_function("interpreted_hyq_arm", |b| {
        b.iter(|| {
            black_box(
                try_simulate_interpreted(&robot, &design, &q, &qd, &tau).expect("interpreted"),
            )
        })
    });
    // Coalesced batch of 4 through the selected backend (lanes unless
    // SIM_BENCH_BACKEND=scalar): the serve engine's hot path.
    let backend = selected_backend();
    let batch_program = shared_program_for(&design, backend);
    let mut batch_scratch = SimScratch::default();
    let steps = batch_inputs(n, 4);
    let mut outs = Vec::new();
    batch_program
        .execute_batch_into(&robot, &mut batch_scratch, &steps, &mut outs)
        .expect("warm-up batch");
    g.bench_function(format!("batch4_{backend:?}_hyq_arm").to_lowercase(), |b| {
        b.iter(|| {
            batch_program
                .execute_batch_into(&robot, &mut batch_scratch, &steps, &mut outs)
                .expect("warm batch");
            black_box(&outs[3].tau);
        })
    });
    g.finish();

    let rows: Vec<RobotRow> = Zoo::ALL.iter().map(|&z| measure(z)).collect();
    for r in &rows {
        assert!(
            r.warm_exec_us < r.cold_first_eval_us,
            "{}: warm execute ({:.2}us) must beat a cold request ({:.2}us)",
            r.name,
            r.warm_exec_us,
            r.cold_first_eval_us
        );
    }
    let batch_rows: Vec<BatchRow> = Zoo::ALL.iter().map(|&z| measure_batch(z)).collect();
    write_summary(&rows, &batch_rows);
    write_record(&rows, &batch_rows);
}

criterion_group!(benches, bench_sim_throughput);
criterion_main!(benches);
