//! The scalar execution backend: the reference path, one evaluation at a
//! time, hoisted out of `program.rs` verbatim.
//!
//! The three private [`CompiledProgram`] stages live here — the host-side
//! forward-dynamics/`M⁻¹` replication, the lowered traversal sweep, and
//! the blocked mat-mul — and the [`Scalar`] backend drives batches as a
//! plain per-entry loop over [`CompiledProgram::execute_gradient_into`].
//! Every other backend's fallback path lands on these functions, so their
//! arithmetic is the definition of "correct to the bit".

use super::{BatchInput, ExecBackend, Scalar};
use crate::deriv::{DerivPair, ForcePair};
use crate::program::{CompiledProgram, Op};
use crate::scratch::SimScratch;
use crate::{SimError, Simulation};
use roboshape_dynamics::{
    bwd_deriv_step, bwd_link_step, fwd_deriv_step, fwd_link_step, Dynamics, Wrt,
};
use roboshape_linalg::Vec3;
use roboshape_spatial::{ForceVec, MotionVec};
use roboshape_urdf::RobotModel;

impl ExecBackend for Scalar {
    const KIND: super::BackendKind = super::BackendKind::Scalar;

    fn execute_gradient_batch(
        program: &CompiledProgram,
        model: &RobotModel,
        scratch: &mut SimScratch,
        inputs: &[BatchInput],
        outs: &mut [Simulation],
    ) -> Result<(), SimError> {
        for ((q, qd, tau), out) in inputs.iter().zip(outs.iter_mut()) {
            program.execute_gradient_into(model, scratch, q, qd, tau, out)?;
        }
        Ok(())
    }

    fn execute_inverse_dynamics_batch(
        program: &CompiledProgram,
        model: &RobotModel,
        scratch: &mut SimScratch,
        inputs: &[BatchInput],
    ) -> Result<Vec<Vec<f64>>, SimError> {
        inputs
            .iter()
            .map(|(q, qd, qdd)| {
                program
                    .execute_inverse_dynamics(model, scratch, q, qd, qdd)
                    .map(|(tau, _)| tau)
            })
            .collect()
    }
}

impl CompiledProgram {
    /// Host-side replication of `Dynamics::forward_dynamics` plus the
    /// Cholesky inverse, allocation-free and loop-for-loop identical to
    /// the reference library (same values, same rounding).
    pub(crate) fn host_forward_dynamics(
        &self,
        model: &RobotModel,
        scratch: &mut SimScratch,
        q: &[f64],
        qd: &[f64],
        tau: &[f64],
    ) -> Result<(), SimError> {
        let n = self.n;
        let dynamics = Dynamics::new(model);
        let a_base = MotionVec::from_parts(Vec3::ZERO, -dynamics.gravity());

        // Bias torques: RNEA at q̈ = 0, mirroring `Dynamics::rnea_cache`.
        for i in 0..n {
            let (vp, ap) = match self.parents[i] {
                Some(p) => (scratch.hv[p], scratch.ha[p]),
                None => (MotionVec::ZERO, a_base),
            };
            let out = fwd_link_step(model, i, q[i], qd[i], 0.0, vp, ap);
            scratch.hxup[i] = out.xup;
            scratch.hv[i] = out.v;
            scratch.ha[i] = out.a;
            scratch.hf[i] = out.f;
        }
        for i in (0..n).rev() {
            let (t, to_parent) = bwd_link_step(model, i, &scratch.hxup[i], scratch.hf[i]);
            scratch.bias[i] = t;
            if let Some(p) = self.parents[i] {
                scratch.hf[p] += to_parent;
            }
        }
        // rhs = τ − bias, solved in place below.
        for (i, &t) in tau.iter().enumerate().take(n) {
            scratch.qdd[i] = t - scratch.bias[i];
        }

        // Mass matrix, mirroring `mass_matrix_with` (CRBA). Structural
        // zeros persist from the bind-time clearing: the written slot set
        // is fixed by the topology.
        for (i, &q_i) in q.iter().enumerate().take(n) {
            scratch.hxup[i] = model.joint(i).child_xform(q_i);
            scratch.svec[i] = model.joint(i).motion_subspace();
            scratch.ic[i] = model.link(i).inertia;
        }
        for i in (0..n).rev() {
            if let Some(p) = self.parents[i] {
                let in_parent = scratch.ic[i].transform(&scratch.hxup[i].inverse());
                scratch.ic[p] = scratch.ic[p].add(&in_parent);
            }
        }
        for i in 0..n {
            let mut fh: ForceVec = scratch.ic[i].apply(scratch.svec[i]);
            scratch.mass[(i, i)] = scratch.svec[i].dot_force(fh);
            let mut j = i;
            while let Some(p) = self.parents[j] {
                fh = scratch.hxup[j].apply_force_transpose(fh);
                scratch.mass[(i, p)] = scratch.svec[p].dot_force(fh);
                scratch.mass[(p, i)] = scratch.mass[(i, p)];
                j = p;
            }
        }

        // Cholesky factor, mirroring `Cholesky::new`. Only the lower
        // triangle is written and read; subslice zips keep the exact
        // ascending-k summation order with bounds checks hoisted.
        let mass = scratch.mass.as_slice();
        let ch = scratch.chol.as_mut_slice();
        for j in 0..n {
            let mut diag = mass[j * n + j];
            for &v in &ch[j * n..j * n + j] {
                diag -= v * v;
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(SimError::NotPositiveDefinite);
            }
            let ljj = diag.sqrt();
            ch[j * n + j] = ljj;
            for i in (j + 1)..n {
                let mut v = mass[i * n + j];
                for (a, b) in ch[i * n..i * n + j].iter().zip(&ch[j * n..j * n + j]) {
                    v -= a * b;
                }
                ch[i * n + j] = v / ljj;
            }
        }
        let ch = scratch.chol.as_slice();

        // q̈ = M⁻¹ rhs, mirroring `Cholesky::solve_vec` in place.
        let qdd = &mut scratch.qdd;
        for i in 0..n {
            let (done, rest) = qdd.split_at_mut(i);
            let mut v = rest[0];
            for (l, x) in ch[i * n..i * n + i].iter().zip(done.iter()) {
                v -= l * x;
            }
            rest[0] = v / ch[i * n + i];
        }
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                qdd[i] -= ch[k * n + i] * qdd[k];
            }
            qdd[i] /= ch[i * n + i];
        }

        // M⁻¹ column by column, mirroring `Cholesky::inverse` (solve
        // against identity columns). Factoring once and reusing L is
        // bit-identical to the reference's repeated use of the same
        // factor object.
        let minv = scratch.minv.as_mut_slice();
        let ycol = &mut scratch.ycol;
        for j in 0..n {
            for (i, y) in ycol.iter_mut().enumerate() {
                *y = if i == j { 1.0 } else { 0.0 };
            }
            for i in 0..n {
                let (done, rest) = ycol.split_at_mut(i);
                let mut v = rest[0];
                for (l, x) in ch[i * n..i * n + i].iter().zip(done.iter()) {
                    v -= l * x;
                }
                rest[0] = v / ch[i * n + i];
            }
            for i in (0..n).rev() {
                for k in (i + 1)..n {
                    ycol[i] -= ch[k * n + i] * ycol[k];
                }
                ycol[i] /= ch[i * n + i];
            }
            for i in 0..n {
                minv[i * n + j] = ycol[i];
            }
        }
        Ok(())
    }

    /// Executes the lowered traversal ops against the scratch arena.
    pub(crate) fn run_traversals(
        &self,
        model: &RobotModel,
        scratch: &mut SimScratch,
        q: &[f64],
        qd: &[f64],
        qdd: &[f64],
    ) {
        let a_base = MotionVec::from_parts(Vec3::ZERO, -Dynamics::new(model).gravity());
        for op in &self.ops {
            match *op {
                Op::RneaFwd { link, parent } => {
                    let l = link as usize;
                    let (vp, ap) = if parent >= 0 {
                        let p = parent as usize;
                        (scratch.cache.0.v[p], scratch.cache.0.a[p])
                    } else {
                        (MotionVec::ZERO, a_base)
                    };
                    let out = fwd_link_step(model, l, q[l], qd[l], qdd[l], vp, ap);
                    scratch.cache.0.xup[l] = out.xup;
                    scratch.cache.0.v[l] = out.v;
                    scratch.cache.0.a[l] = out.a;
                    let s = model.joint(l).motion_subspace();
                    scratch.cache.0.s[l] = s;
                    scratch.cache.0.vj[l] = s * qd[l];
                    scratch.cache.0.h[l] = model.link(l).inertia.apply(out.v);
                    scratch.f_local[l] = out.f;
                }
                Op::RneaBwd { link, parent } => {
                    let l = link as usize;
                    // Consume the accumulator: each link's slot is read by
                    // exactly one RneaBwd op per evaluation.
                    let acc = std::mem::take(&mut scratch.f_acc[l]);
                    let f_total = scratch.f_local[l] + acc;
                    scratch.cache.0.f[l] = f_total;
                    let (t, to_parent) = bwd_link_step(model, l, &scratch.cache.0.xup[l], f_total);
                    scratch.cache.0.tau[l] = t;
                    if parent >= 0 {
                        scratch.f_acc[parent as usize] += to_parent;
                    }
                }
                Op::GradFwd {
                    link,
                    slot,
                    parent,
                    parent_slot,
                    is_seed,
                } => {
                    let l = link as usize;
                    let (v_parent, a_parent) = if parent >= 0 {
                        let p = parent as usize;
                        (scratch.cache.0.v[p], scratch.cache.0.a[p])
                    } else {
                        (MotionVec::ZERO, a_base)
                    };
                    let parent_pair = if parent_slot >= 0 {
                        scratch.dstate[parent_slot as usize]
                    } else {
                        DerivPair::default()
                    };
                    scratch.dstate[slot as usize] = DerivPair {
                        dq: fwd_deriv_step(
                            model,
                            l,
                            is_seed,
                            Wrt::Q,
                            &scratch.cache.0,
                            v_parent,
                            a_parent,
                            &parent_pair.dq,
                        ),
                        dqd: fwd_deriv_step(
                            model,
                            l,
                            is_seed,
                            Wrt::Qd,
                            &scratch.cache.0,
                            v_parent,
                            a_parent,
                            &parent_pair.dqd,
                        ),
                    };
                }
                Op::GradBwd {
                    link,
                    state_slot,
                    acc_slot,
                    parent_acc_slot,
                    b_q,
                    b_qd,
                    is_seed,
                } => {
                    let l = link as usize;
                    let local = if state_slot >= 0 {
                        scratch.dstate[state_slot as usize]
                    } else {
                        DerivPair::default()
                    };
                    // Consume-on-read: compilation proved this slot is
                    // read exactly once per evaluation.
                    let acc = if acc_slot >= 0 {
                        std::mem::take(&mut scratch.dacc[acc_slot as usize])
                    } else {
                        ForcePair::default()
                    };
                    let df_q = local.dq.df + acc.dq;
                    let df_qd = local.dqd.df + acc.dqd;
                    let (dtau_q, to_parent_q) =
                        bwd_deriv_step(l, is_seed, Wrt::Q, &scratch.cache.0, df_q);
                    let (dtau_qd, to_parent_qd) =
                        bwd_deriv_step(l, is_seed, Wrt::Qd, &scratch.cache.0, df_qd);
                    if parent_acc_slot >= 0 {
                        let e = &mut scratch.dacc[parent_acc_slot as usize];
                        e.dq += to_parent_q;
                        e.dqd += to_parent_qd;
                    }
                    // Sign folded in: C = M⁻¹(−∂τ) is ∂q̈ directly.
                    scratch.b[(l, b_q as usize)] = -dtau_q;
                    scratch.b[(l, b_qd as usize)] = -dtau_qd;
                }
                Op::FkStep { .. } => {
                    unreachable!("traversal programs contain no kinematics ops")
                }
            }
        }
    }

    /// Executes the blocked mat-mul tile ops, replicating
    /// `BlockMatmulPlan::execute`'s arithmetic (tile padding, the
    /// zero-skip on `M⁻¹` entries, ascending-k accumulation) against the
    /// scratch operands.
    pub(crate) fn run_matmul(&self, scratch: &mut SimScratch) {
        let n = self.n;
        let bl = self.mm_block;
        let b_cols = 2 * n;
        let minv = scratch.minv.as_slice();
        let b = scratch.b.as_slice();
        let c = scratch.c.as_mut_slice();
        let prod = &mut scratch.prod;
        for v in c.iter_mut() {
            *v = 0.0;
        }
        for op in &self.mm_ops {
            let (r0, k0, c0) = (op.ti * bl, op.tk * bl, op.tj * bl);
            for p in prod.iter_mut() {
                *p = 0.0;
            }
            for i in 0..bl {
                let ai = r0 + i;
                if ai >= n {
                    // Padded A row: a == 0.0 at every k, all skipped.
                    continue;
                }
                let arow = &minv[ai * n..(ai + 1) * n];
                let prow = &mut prod[i * bl..(i + 1) * bl];
                for k in 0..bl {
                    let ak = k0 + k;
                    if ak >= n {
                        // Padded A column: a == 0.0, skipped.
                        continue;
                    }
                    let a = arow[ak];
                    if a == 0.0 {
                        continue;
                    }
                    let brow = &b[ak * b_cols..(ak + 1) * b_cols];
                    let in_bounds = bl.min(b_cols.saturating_sub(c0));
                    for (j, p) in prow.iter_mut().enumerate().take(in_bounds) {
                        *p += a * brow[c0 + j];
                    }
                    // Padded B columns: the interpreter adds a·0.0 there,
                    // which is not a no-op for a −0.0 accumulator — keep
                    // the adds for bit-exactness.
                    for p in prow[in_bounds..].iter_mut() {
                        *p += a * 0.0;
                    }
                }
            }
            for i in 0..bl {
                let r = r0 + i;
                if r >= n {
                    continue;
                }
                let crow = &mut c[r * b_cols..(r + 1) * b_cols];
                let prow = &prod[i * bl..(i + 1) * bl];
                for (j, &pv) in prow.iter().enumerate() {
                    let cc = c0 + j;
                    if cc < b_cols {
                        crow[cc] += pv;
                    }
                }
            }
        }
    }
}
