//! Cross-crate integration: the full framework pipeline on every robot.

use roboshape::{lint, Constraints, Framework};
use roboshape_suite::prelude::*;

/// URDF text → parse → generate → simulate → verify, for all six robots.
#[test]
fn urdf_to_verified_accelerator_for_every_zoo_robot() {
    for which in Zoo::ALL {
        let urdf = zoo_urdf(which);
        let fw = Framework::from_urdf(&urdf).unwrap_or_else(|e| panic!("{which:?}: {e}"));
        let robot = fw.robot().clone();
        let accel = fw.generate(Constraints::unconstrained());

        let n = robot.num_links();
        let q: Vec<f64> = (0..n).map(|i| (0.21 * (i as f64 + 1.0)).sin()).collect();
        let qd: Vec<f64> = (0..n).map(|i| 0.3 * (0.4 * i as f64).cos()).collect();
        let tau: Vec<f64> = (0..n).map(|i| 0.6 - 0.05 * i as f64).collect();
        let sim = accel.simulate(&q, &qd, &tau);
        let err = sim.verify(&robot, &q, &qd, &tau);
        assert!(err < 1e-8, "{which:?}: gradient error {err}");

        // Schedule validity and Verilog well-formedness, end to end.
        accel
            .design()
            .schedule()
            .validate(accel.design().task_graph())
            .unwrap_or_else(|e| panic!("{which:?}: {e}"));
        for (name, src) in accel.verilog().files() {
            lint(src).unwrap_or_else(|e| panic!("{which:?}/{name}: {e}"));
        }
    }
}

/// The generated knob choice respects both the topology and the caps.
#[test]
fn knob_generation_respects_constraints_everywhere() {
    for which in Zoo::ALL {
        let fw = Framework::from_model(zoo(which));
        for cap in [1, 2, 5, 100] {
            let knobs = fw.choose_knobs(Constraints::new(cap, cap, cap));
            let m = fw.metrics();
            assert!(knobs.pe_fwd <= cap.min(m.max_leaf_depth.max(1)));
            assert!(knobs.pe_bwd <= cap.min(m.max_descendants.max(1)));
            assert!(knobs.block_size <= cap.min(fw.robot().num_links()));
        }
    }
}

/// Random robots survive the full pipeline too (fuzz-style smoke).
#[test]
fn random_robots_survive_the_full_pipeline() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(20230617);
    for trial in 0..5 {
        let robot = random_robot(
            &mut rng,
            RandomRobotConfig {
                links: 3 + 3 * trial,
                branch_prob: 0.3,
                new_limb_prob: 0.2,
                allow_prismatic: true,
            },
        );
        // Round-trip the robot through URDF text first.
        let urdf = roboshape::write_urdf(&robot);
        let fw = Framework::from_urdf(&urdf).unwrap();
        let accel = fw.generate(Constraints::unconstrained());
        let n = robot.num_links();
        let q = vec![0.15; n];
        let qd = vec![-0.1; n];
        let tau = vec![0.2; n];
        let err = accel
            .simulate(&q, &qd, &tau)
            .verify(fw.robot(), &q, &qd, &tau);
        assert!(err < 1e-8, "trial {trial}: {err}");
    }
}

/// Simulator statistics line up with the design's own bookkeeping.
#[test]
fn simulation_stats_match_design() {
    let fw = Framework::from_model(zoo(Zoo::Baxter));
    let accel = fw.generate_with_knobs(AcceleratorKnobs::symmetric(4, 4));
    let n = 15;
    let sim = accel.simulate(&vec![0.1; n], &vec![0.0; n], &vec![0.3; n]);
    assert_eq!(sim.stats.tasks_executed, accel.design().task_graph().len());
    assert_eq!(sim.stats.cycles, accel.design().compute_cycles());
    assert_eq!(
        sim.stats.matmul_ops + sim.stats.matmul_nops,
        sim.stats.matmul_ops + accel.design().matmul_plan().unwrap().skipped_ops()
    );
}

/// The extra Fig. 1 robots (Bittle, Pepper, a full humanoid) run the
/// whole pipeline too — including a 28-link robot larger than anything in
/// the paper's evaluation.
#[test]
fn extra_robots_survive_the_full_pipeline() {
    use roboshape_robots::{extra_robot, ExtraRobot};
    for which in ExtraRobot::ALL {
        let robot = extra_robot(which);
        let fw = Framework::from_model(robot.clone());
        let accel = fw.generate(Constraints::unconstrained());
        let n = robot.num_links();
        let q: Vec<f64> = (0..n).map(|i| 0.15 * ((i as f64) * 0.9).sin()).collect();
        let qd = vec![0.1; n];
        let tau = vec![0.2; n];
        let err = accel.simulate(&q, &qd, &tau).verify(&robot, &q, &qd, &tau);
        assert!(err < 1e-8, "{which:?}: {err}");
        accel
            .design()
            .schedule()
            .validate(accel.design().task_graph())
            .unwrap_or_else(|e| panic!("{which:?}: {e}"));
    }
}
