//! Cluster soak: three shard servers behind a router on loopback, the
//! full robot zoo spread across them by consistent hashing, and one
//! shard killed (SIGKILL-style abort) mid-run.
//!
//! The invariants this file pins:
//!
//! * **Zero lost requests** — every request issued through the router
//!   ends in an accounted outcome, across the shard kill and the
//!   resulting failover reroutes.
//! * **Bit-exactness survives failover** — every successful payload is
//!   bit-identical to a direct in-process simulation on the same
//!   design, whether the owner shard answered or a fallback did (the
//!   designs are deterministic, so every shard computes the same
//!   floats).
//! * **Rerouted robots are answered by the fallback** — responses for
//!   the dead shard's robots carry the `Rerouted` status flag, and the
//!   router's failover counter records the lost shard.

use roboshape_arch::KernelKind;
use roboshape_robots::{zoo, Zoo};
use roboshape_serve::loadgen::request_inputs;
use roboshape_serve::{
    Client, Engine, EngineConfig, HashRing, Router, RouterConfig, ServePayload, ServeRequest,
    Shard, ShardSpec,
};
use roboshape_sim::try_simulate;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn zoo_engine() -> Engine {
    let engine = Engine::new(EngineConfig::default());
    for which in Zoo::ALL {
        engine.register(which.name(), zoo(which));
    }
    engine
}

/// Gradient request `i` of client `client`, cycling the zoo, with
/// reproducible inputs.
fn nth_gradient(client: usize, i: usize) -> (Zoo, u64, ServeRequest) {
    let which = Zoo::ALL[(client + i) % Zoo::ALL.len()];
    let n = zoo(which).num_links();
    let seed = (client * 1000 + i) as u64;
    let (q, qd, tau) = request_inputs(n, seed);
    (
        which,
        seed,
        ServeRequest::gradient(which.name(), q, qd, tau),
    )
}

/// Checks a served gradient payload bit-for-bit against direct
/// simulation on the reference engine's (identical) design.
fn assert_bit_exact(reference: &Engine, which: Zoo, seed: u64, payload: &ServePayload) {
    let robot = zoo(which);
    let n = robot.num_links();
    let (q, qd, tau) = request_inputs(n, seed);
    let design = reference
        .design_for(which.name(), KernelKind::DynamicsGradient)
        .expect("reference design");
    let expect = try_simulate(&robot, &design, &q, &qd, &tau).expect("reference sim");
    match payload {
        ServePayload::Gradient {
            tau: tau_out,
            dqdd_dq,
            dqdd_dqd,
            cycles,
        } => {
            assert_eq!(*cycles, expect.stats.cycles, "{}", which.name());
            for j in 0..n {
                assert_eq!(
                    tau_out[j].to_bits(),
                    expect.tau[j].to_bits(),
                    "τ[{j}] of {}",
                    which.name()
                );
                for k in 0..n {
                    assert_eq!(
                        dqdd_dq[j * n + k].to_bits(),
                        expect.dqdd_dq[(j, k)].to_bits()
                    );
                    assert_eq!(
                        dqdd_dqd[j * n + k].to_bits(),
                        expect.dqdd_dqd[(j, k)].to_bits()
                    );
                }
            }
        }
        other => panic!("expected a gradient payload, got {other:?}"),
    }
}

/// The soak itself: 4 clients × 24 requests over 3 shards; the shard
/// owning `iiwa` is aborted once every client has finished its first
/// half, while the second half is already in flight.
#[test]
fn shard_kill_mid_run_loses_nothing_and_stays_bit_exact() {
    let names: Vec<String> = (0..3).map(|i| format!("s{i}")).collect();
    let ring = HashRing::new(&names);
    let victim_idx = ring.owner("iiwa");

    let mut shards: Vec<Option<Shard>> = Vec::new();
    let mut specs = Vec::new();
    for name in &names {
        let shard = Shard::start(name.clone(), zoo_engine(), "127.0.0.1:0").expect("bind shard");
        specs.push(ShardSpec {
            name: name.clone(),
            addr: shard.addr(),
        });
        shards.push(Some(shard));
    }
    let mut config = RouterConfig::new(specs);
    config.reconnect_interval = Duration::from_millis(100);
    let router = Router::start(config, "127.0.0.1:0").expect("bind router");
    let addr = router.addr();

    // Never serves traffic; exists to produce the reference designs.
    let reference = zoo_engine();

    const CLIENTS: usize = 4;
    const REQUESTS: usize = 24;
    const HALF: usize = REQUESTS / 2;
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let rerouted_total = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..CLIENTS)
        .map(|client_idx| {
            let barrier = Arc::clone(&barrier);
            let rerouted_total = Arc::clone(&rerouted_total);
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect to router");
                let mut answered = 0u64;
                for i in 0..REQUESTS {
                    if i == HALF {
                        // All clients are mid-run here; the main thread
                        // aborts the victim shard concurrently with the
                        // second half.
                        barrier.wait();
                    }
                    let (which, seed, req) = nth_gradient(client_idx, i);
                    // Retry typed retryable outcomes (a dying shard may
                    // answer `Rejected` while shutting down); transport
                    // errors would mean the *router* died, which is a
                    // test failure.
                    let mut frame = client.call_tracked(&req).expect("router transport");
                    let mut tries = 0;
                    while matches!(&frame.result, Err(e) if e.is_retryable()) {
                        tries += 1;
                        assert!(tries < 50, "request never settled: {:?}", frame.result);
                        std::thread::sleep(Duration::from_millis(5));
                        frame = client.call_tracked(&req).expect("router transport");
                    }
                    if frame.rerouted {
                        rerouted_total.fetch_add(1, Ordering::Relaxed);
                    }
                    let payload = frame.result.expect("settled payload");
                    assert_bit_exact(&reference, which, seed, &payload);
                    answered += 1;
                }
                answered
            })
        })
        .collect();

    barrier.wait();
    shards[victim_idx].take().expect("victim present").abort();

    let mut answered_total = 0u64;
    for handle in handles {
        answered_total += handle.join().expect("client thread");
    }
    assert_eq!(
        answered_total,
        (CLIENTS * REQUESTS) as u64,
        "every request must settle with a payload — zero lost"
    );
    assert!(
        rerouted_total.load(Ordering::Relaxed) > 0,
        "the dead shard's robots must be answered by a fallback (rerouted flag)"
    );

    let stats = router.stats();
    assert!(
        stats.failovers.load(Ordering::Relaxed) >= 1,
        "the router must have recorded the shard loss"
    );
    assert_eq!(stats.settled() - stats.shed.load(Ordering::Relaxed), {
        stats.responses.load(Ordering::Relaxed)
    });

    // Health through the router still reports ready on the surviving
    // shards, covering every robot.
    let mut probe = Client::connect(addr).expect("connect for health");
    let report = probe.health().expect("health through router");
    assert!(report.ready, "survivors keep the cluster ready");
    assert_eq!(report.robots.len(), Zoo::ALL.len());

    router.shutdown();
    reference.shutdown();
    for shard in shards.into_iter().flatten() {
        shard.shutdown();
    }
}

/// Hello handshakes: a shard announces its own name and roster; the
/// router answers as `"router"` with the fleet's merged roster.
#[test]
fn hello_identifies_shards_and_router_merges_rosters() {
    let shard = Shard::start("alpha", zoo_engine(), "127.0.0.1:0").expect("bind shard");
    let mut direct = Client::connect(shard.addr()).expect("connect shard");
    let info = direct.hello().expect("shard hello");
    assert_eq!(info.shard, "alpha");
    assert_eq!(info.robots.len(), Zoo::ALL.len());

    let router = Router::start(
        RouterConfig::new(vec![ShardSpec {
            name: "alpha".to_string(),
            addr: shard.addr(),
        }]),
        "127.0.0.1:0",
    )
    .expect("bind router");
    // The router learns the roster from its own hello handshake; poll
    // briefly until the link is up.
    let mut via_router = Client::connect(router.addr()).expect("connect router");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let merged = loop {
        let info = via_router.hello().expect("router hello");
        if !info.robots.is_empty() {
            break info;
        }
        assert!(std::time::Instant::now() < deadline, "roster never arrived");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(merged.shard, "router");
    assert_eq!(merged.robots.len(), Zoo::ALL.len());

    router.shutdown();
    shard.shutdown();
}

/// A router with every shard down sheds typed errors instead of
/// hanging, and recovers when a shard comes back.
#[test]
fn empty_fleet_sheds_and_recovers_when_a_shard_returns() {
    // Reserve an address, then drop the listener: the router dials a
    // dead port until the real shard binds it... ports may be reused, so
    // instead start the router against a never-bound port first.
    let placeholder = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let addr = placeholder.local_addr().expect("addr");
    drop(placeholder);

    let mut config = RouterConfig::new(vec![ShardSpec {
        name: "late".to_string(),
        addr,
    }]);
    config.reconnect_interval = Duration::from_millis(50);
    let router = Router::start(config, "127.0.0.1:0").expect("bind router");

    let mut client = Client::connect(router.addr()).expect("connect router");
    let (_, _, req) = nth_gradient(0, 0);
    let frame = client.call_tracked(&req).expect("router transport");
    assert!(
        matches!(
            &frame.result,
            Err(roboshape_serve::ServeError::Rejected { .. })
        ),
        "no shard alive must be a typed shed, got {:?}",
        frame.result
    );

    // Health with nothing alive: answered, not ready.
    let report = client.health().expect("health with empty fleet");
    assert!(!report.ready);

    // Bring the shard up on the reserved address and wait for recovery.
    let shard = Shard::start("late", zoo_engine(), addr).expect("bind shard on reserved port");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let frame = client.call_tracked(&req).expect("router transport");
        match frame.result {
            Ok(payload) => {
                assert!(matches!(payload, ServePayload::Gradient { .. }));
                break;
            }
            Err(e) => {
                assert!(e.is_retryable(), "unexpected terminal error: {e:?}");
                assert!(
                    std::time::Instant::now() < deadline,
                    "router never recovered the shard"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }

    router.shutdown();
    shard.shutdown();
}
