//! Sparse I/O packets for coprocessor deployment (paper Secs. 3.3, 5.2).
//!
//! When the accelerator runs as a PCIe coprocessor, every time step ships
//! the (inverse) mass matrix in and the two partial-derivative matrices
//! out; since all three share the topology-determined sparsity pattern,
//! structural zeros never need to cross the link. [`encode_sparse`] /
//! [`decode_sparse`] implement that packet format, and [`IoModel`] is the
//! corresponding size model that reproduces the paper's numbers: matrices
//! are 84%/90%/92% of I/O bits for iiwa/HyQ/Baxter, and skipping zeros
//! shrinks total I/O by 3.1× for HyQ and 2.1× for Baxter.

use crate::SparsityPattern;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use core::fmt;
use roboshape_linalg::DMat;

/// Error returned by [`decode_sparse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseCodecError {
    /// The buffer ended before all pattern entries were filled.
    Truncated {
        /// Number of values expected (the pattern's nnz).
        expected: usize,
        /// Number of values available.
        got: usize,
    },
    /// The buffer holds more values than the pattern has nonzeros.
    TrailingData,
}

impl fmt::Display for SparseCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseCodecError::Truncated { expected, got } => {
                write!(
                    f,
                    "sparse packet truncated: expected {expected} values, got {got}"
                )
            }
            SparseCodecError::TrailingData => write!(f, "sparse packet has trailing data"),
        }
    }
}

impl std::error::Error for SparseCodecError {}

/// Encodes the structurally-nonzero entries of `m` (row-major order,
/// 32-bit floats — the paper's accelerators are single-precision) into a
/// packet. The pattern itself is compile-time knowledge on both ends, so
/// no indices are transmitted.
///
/// # Panics
///
/// Panics if `m`'s shape differs from the pattern's.
pub fn encode_sparse(m: &DMat, pattern: &SparsityPattern) -> Bytes {
    let n = pattern.dim();
    assert_eq!(
        (m.rows(), m.cols()),
        (n, n),
        "matrix/pattern shape mismatch"
    );
    let mut buf = BytesMut::with_capacity(pattern.nnz() * 4);
    for i in 0..n {
        for j in 0..n {
            if pattern.is_nonzero(i, j) {
                buf.put_f32_le(m[(i, j)] as f32);
            }
        }
    }
    buf.freeze()
}

/// Decodes a packet produced by [`encode_sparse`] back into a full matrix
/// (structural zeros restored).
///
/// # Errors
///
/// Returns [`SparseCodecError`] if the packet length does not match the
/// pattern's nonzero count.
pub fn decode_sparse(packet: &[u8], pattern: &SparsityPattern) -> Result<DMat, SparseCodecError> {
    let n = pattern.dim();
    let expected = pattern.nnz();
    let got = packet.len() / 4;
    if got < expected || !packet.len().is_multiple_of(4) {
        return Err(SparseCodecError::Truncated { expected, got });
    }
    if got > expected {
        return Err(SparseCodecError::TrailingData);
    }
    let mut m = DMat::zeros(n, n);
    let mut buf = packet;
    for i in 0..n {
        for j in 0..n {
            if pattern.is_nonzero(i, j) {
                m[(i, j)] = buf.get_f32_le() as f64;
            }
        }
    }
    Ok(m)
}

/// Per-time-step coprocessor I/O size model (32-bit words).
///
/// Inputs: `4N` per-link scalars (q, q̇, q̈-seed, τ) plus the `N²` inverse
/// mass matrix. Outputs: the two `N²` partial-derivative matrices. This is
/// the decomposition that reproduces the paper's matrix-share numbers
/// exactly (Sec. 5.2) — see DESIGN.md.
#[derive(Debug, Clone, PartialEq)]
pub struct IoModel {
    pattern: SparsityPattern,
}

impl IoModel {
    /// Builds the model from the robot's mass-matrix pattern.
    pub fn new(pattern: SparsityPattern) -> IoModel {
        IoModel { pattern }
    }

    /// Robot size `N`.
    pub fn dim(&self) -> usize {
        self.pattern.dim()
    }

    /// Total dense I/O per time step, in 32-bit words: `4N + 3N²`.
    pub fn dense_words(&self) -> usize {
        let n = self.dim();
        4 * n + 3 * n * n
    }

    /// Total I/O with structural zeros skipped in all three matrices:
    /// `4N + 3·nnz`.
    pub fn sparse_words(&self) -> usize {
        4 * self.dim() + 3 * self.pattern.nnz()
    }

    /// Fraction of dense I/O bits occupied by the matrices:
    /// `3N²/(3N²+4N)` — 84%/90%/92% for N = 7/12/15.
    pub fn matrix_fraction(&self) -> f64 {
        let n = self.dim() as f64;
        3.0 * n * n / (3.0 * n * n + 4.0 * n)
    }

    /// The I/O size reduction factor from sparsity compression
    /// (dense ÷ sparse) — 3.1× for HyQ, 2.1× for Baxter, 1× for iiwa.
    pub fn reduction(&self) -> f64 {
        self.dense_words() as f64 / self.sparse_words() as f64
    }

    /// The underlying pattern.
    pub fn pattern(&self) -> &SparsityPattern {
        &self.pattern
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use roboshape_topology::Topology;

    fn hyq_like() -> Topology {
        let mut parents = Vec::new();
        for _ in 0..4 {
            parents.push(None);
            let b = parents.len() - 1;
            parents.push(Some(b));
            parents.push(Some(b + 1));
        }
        Topology::new(parents).unwrap()
    }

    fn baxter_like() -> Topology {
        let mut parents = vec![None];
        for _ in 0..2 {
            parents.push(None);
            for _ in 1..7 {
                parents.push(Some(parents.len() - 1));
            }
        }
        Topology::new(parents).unwrap()
    }

    #[test]
    fn matrix_fraction_matches_paper() {
        // Paper Sec. 5.2: matrices make up 84%, 90%, and 92% of I/O bits
        // for iiwa (7), HyQ (12), Baxter (15).
        let f = |n: usize| IoModel::new(SparsityPattern::dense(n)).matrix_fraction();
        assert!((f(7) - 0.84).abs() < 0.005, "iiwa: {}", f(7));
        assert!((f(12) - 0.90).abs() < 0.005, "HyQ: {}", f(12));
        assert!((f(15) - 0.92).abs() < 0.005, "Baxter: {}", f(15));
    }

    #[test]
    fn reduction_matches_paper() {
        // Paper Sec. 5.2: expected I/O reductions of 3.1× (HyQ) and 2.1×
        // (Baxter); iiwa's matrix is dense, so no reduction.
        let hyq = IoModel::new(SparsityPattern::mass_matrix(&hyq_like()));
        assert!(
            (hyq.reduction() - 3.1).abs() < 0.05,
            "HyQ: {}",
            hyq.reduction()
        );
        let baxter = IoModel::new(SparsityPattern::mass_matrix(&baxter_like()));
        assert!(
            (baxter.reduction() - 2.1).abs() < 0.05,
            "Baxter: {}",
            baxter.reduction()
        );
        let iiwa = IoModel::new(SparsityPattern::dense(7));
        assert!((iiwa.reduction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn codec_roundtrip_on_patterned_matrix() {
        let p = SparsityPattern::mass_matrix(&baxter_like());
        let m = DMat::from_fn(15, 15, |i, j| {
            if p.is_nonzero(i, j) {
                (i as f64) - (j as f64) * 0.5
            } else {
                0.0
            }
        });
        let packet = encode_sparse(&m, &p);
        assert_eq!(packet.len(), p.nnz() * 4);
        let back = decode_sparse(&packet, &p).unwrap();
        assert!(back.max_abs_diff(&m).unwrap() < 1e-6); // f32 quantization
    }

    #[test]
    fn codec_detects_bad_lengths() {
        let p = SparsityPattern::dense(3);
        let m = DMat::identity(3);
        let packet = encode_sparse(&m, &p);
        assert!(matches!(
            decode_sparse(&packet[..8], &p),
            Err(SparseCodecError::Truncated { .. })
        ));
        let mut long = packet.to_vec();
        long.extend_from_slice(&[0, 0, 0, 0]);
        assert_eq!(
            decode_sparse(&long, &p),
            Err(SparseCodecError::TrailingData)
        );
    }

    #[test]
    fn error_display() {
        assert!(SparseCodecError::Truncated {
            expected: 9,
            got: 2
        }
        .to_string()
        .contains("expected 9"));
        assert!(SparseCodecError::TrailingData
            .to_string()
            .contains("trailing"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn roundtrip_on_random_trees(picks in proptest::collection::vec(0usize..6, 1..12)) {
            let parents: Vec<Option<usize>> = picks
                .iter()
                .enumerate()
                .map(|(i, &p)| if i == 0 || p >= i { None } else { Some(p) })
                .collect();
            let topo = Topology::new(parents).unwrap();
            let p = SparsityPattern::mass_matrix(&topo);
            let n = p.dim();
            let m = DMat::from_fn(n, n, |i, j| {
                if p.is_nonzero(i, j) { ((i * 13 + j * 7) % 10) as f64 * 0.25 } else { 0.0 }
            });
            let back = decode_sparse(&encode_sparse(&m, &p), &p).unwrap();
            prop_assert!(back.max_abs_diff(&m).unwrap() < 1e-6);
            // Compression is monotone: sparse ≤ dense words.
            let model = IoModel::new(p);
            prop_assert!(model.sparse_words() <= model.dense_words());
            prop_assert!(model.reduction() >= 1.0);
        }
    }
}
