//! Exhaustive knob sweeps and Pareto frontiers (paper Fig. 12).

use roboshape_arch::{AcceleratorKnobs, DseModel, MatmulUnits, Resources};
use roboshape_blocksparse::{BlockMatmulPlan, MatmulLatencyModel, SparsityPattern};
use roboshape_taskgraph::{schedule, SchedulerConfig, TaskGraph};
use roboshape_topology::Topology;

/// One evaluated design point of a robot's design space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Forward-traversal PEs.
    pub pe_fwd: usize,
    /// Backward-traversal PEs.
    pub pe_bwd: usize,
    /// Mat-mul block size.
    pub block: usize,
    /// Traversal schedule makespan, cycles.
    pub traversal_cycles: u64,
    /// Total compute cycles (traversal + blocked mat-mul).
    pub total_cycles: u64,
    /// PE-level resource estimate (the Figs. 12–16 model).
    pub resources: Resources,
}

impl DesignPoint {
    /// The knob setting of this point (per-link mat-mul units).
    pub fn knobs(&self) -> AcceleratorKnobs {
        AcceleratorKnobs::new(self.pe_fwd, self.pe_bwd, self.block)
    }

    /// `true` if `self` dominates `other` (no worse in cycles and LUTs,
    /// strictly better in one).
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let no_worse = self.total_cycles <= other.total_cycles
            && self.resources.luts <= other.resources.luts;
        let strictly = self.total_cycles < other.total_cycles
            || self.resources.luts < other.resources.luts;
        no_worse && strictly
    }
}

/// Evaluates the full `N³` design space of a robot: every combination of
/// `PEs_fwd`, `PEs_bwd` ∈ `1..=N` and block size ∈ `1..=N`.
///
/// The traversal schedule does not depend on the block size, so `N²`
/// schedules are computed (in parallel) and each is combined with the `N`
/// block plans. Points are returned sorted by `(pe_fwd, pe_bwd, block)`.
pub fn sweep_design_space(topo: &Topology) -> Vec<DesignPoint> {
    let n = topo.len();
    let graph = TaskGraph::dynamics_gradient(topo);
    let pattern = SparsityPattern::mass_matrix(topo);
    let mm_model = MatmulLatencyModel::default();
    let units = MatmulUnits::PerLink.resolve(n);
    let mm_latency: Vec<u64> = (1..=n)
        .map(|b| BlockMatmulPlan::new(&pattern, 2 * n, b, units).latency(&mm_model))
        .collect();

    let mut points: Vec<Option<Vec<DesignPoint>>> = vec![None; n];
    crossbeam::thread::scope(|scope| {
        for (pe_fwd_minus_1, slot) in points.iter_mut().enumerate() {
            let graph = &graph;
            let mm_latency = &mm_latency;
            scope.spawn(move |_| {
                let pe_fwd = pe_fwd_minus_1 + 1;
                let mut row = Vec::with_capacity(n * n);
                for pe_bwd in 1..=n {
                    let s = schedule(graph, &SchedulerConfig::with_pes(pe_fwd, pe_bwd));
                    let makespan = s.makespan();
                    for block in 1..=n {
                        let knobs = AcceleratorKnobs::new(pe_fwd, pe_bwd, block);
                        row.push(DesignPoint {
                            pe_fwd,
                            pe_bwd,
                            block,
                            traversal_cycles: makespan,
                            total_cycles: makespan + mm_latency[block - 1],
                            resources: DseModel.estimate(n, &knobs),
                        });
                    }
                }
                *slot = Some(row);
            });
        }
    })
    .expect("sweep threads must not panic");
    points.into_iter().flat_map(|row| row.expect("all rows filled")).collect()
}

/// The Pareto-optimal subset of a design space under (total cycles, LUTs)
/// minimization, sorted by cycles. These are the red-X frontier points of
/// the paper's Fig. 12.
pub fn pareto_frontier(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut sorted: Vec<DesignPoint> = points.to_vec();
    sorted.sort_by(|a, b| {
        a.total_cycles
            .cmp(&b.total_cycles)
            .then(a.resources.luts.partial_cmp(&b.resources.luts).expect("finite luts"))
    });
    let mut frontier: Vec<DesignPoint> = Vec::new();
    let mut best_luts = f64::INFINITY;
    for p in sorted {
        if p.resources.luts < best_luts {
            best_luts = p.resources.luts;
            frontier.push(p);
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboshape_robots::{zoo, Zoo};

    #[test]
    fn sweep_covers_full_grid() {
        let topo = Topology::chain(4);
        let pts = sweep_design_space(&topo);
        assert_eq!(pts.len(), 64);
        // Deterministic order and coverage.
        let mut seen = std::collections::HashSet::new();
        for p in &pts {
            assert!(seen.insert((p.pe_fwd, p.pe_bwd, p.block)));
            assert!(p.total_cycles >= p.traversal_cycles);
        }
    }

    #[test]
    fn design_spaces_are_tractable_thousands_of_points() {
        // Paper Fig. 12: "tractable (1000s of design points) design spaces".
        let hyq_arm = zoo(Zoo::HyqArm);
        let pts = sweep_design_space(hyq_arm.topology());
        assert_eq!(pts.len(), 19 * 19 * 19); // 6859
    }

    #[test]
    fn frontier_members_are_mutually_nondominated() {
        let topo = zoo(Zoo::Hyq);
        let pts = sweep_design_space(topo.topology());
        let frontier = pareto_frontier(&pts);
        assert!(!frontier.is_empty());
        for a in &frontier {
            for b in &frontier {
                assert!(!a.dominates(b) || a == b, "{a:?} dominates {b:?}");
            }
        }
    }

    #[test]
    fn every_point_is_dominated_by_or_on_the_frontier() {
        let topo = Topology::chain(5);
        let pts = sweep_design_space(&topo);
        let frontier = pareto_frontier(&pts);
        for p in &pts {
            let covered = frontier.iter().any(|f| {
                f == p
                    || (f.total_cycles <= p.total_cycles && f.resources.luts <= p.resources.luts)
            });
            assert!(covered, "{p:?} not covered by frontier");
        }
    }

    #[test]
    fn more_pes_never_increase_traversal_latency() {
        let topo = zoo(Zoo::Baxter);
        let pts = sweep_design_space(topo.topology());
        let n = 15;
        // Along the symmetric diagonal at fixed block.
        let lat = |pe: usize| {
            pts.iter()
                .find(|p| p.pe_fwd == pe && p.pe_bwd == pe && p.block == 4)
                .unwrap()
                .traversal_cycles
        };
        let mut prev = u64::MAX;
        for pe in 1..=n {
            let l = lat(pe);
            assert!(l <= prev, "pe {pe}: {l} > {prev}");
            prev = l;
        }
    }

    #[test]
    fn max_latency_range_matches_fig12_scale() {
        // Paper Fig. 12: maximum latencies are 829–7230 cycles across the
        // six robots. Our calibrated model lands in the same regime (same
        // decade, hundreds-to-thousands; exact per-robot values in
        // EXPERIMENTS.md).
        for which in [Zoo::Iiwa, Zoo::HyqArm] {
            let pts = sweep_design_space(zoo(which).topology());
            let max = pts.iter().map(|p| p.total_cycles).max().unwrap();
            assert!(
                (500..12_000).contains(&max),
                "{which:?}: max latency {max} out of regime"
            );
        }
    }
}
