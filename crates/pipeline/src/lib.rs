//! The staged compilation pipeline behind the RoboShape framework.
//!
//! Accelerator generation is a chain of pure stages
//!
//! ```text
//! Parse → Topology → Ir {TaskGraph, SparsityPattern}
//!       → Schedules → BlockPlans → Design → Reports
//! ```
//!
//! whose intermediate products depend only on a robot's *topology* and a
//! few integer knobs — not on which caller asked. A design-space sweep
//! re-derives the same task graph `N²` times and the same block plans
//! once per `(PEf, PEb)` pair; the strategy study re-schedules
//! allocations the sweep already visited; the experiments binary walks
//! the same six robots a dozen times. This crate makes those products
//! shared, memoized artifacts:
//!
//! * [`ArtifactStore`] — a thread-safe store of stage products, keyed by
//!   the stage's actual inputs (task graphs and patterns per topology,
//!   schedules per `(topology, PEf, PEb, mode)`, block plans per
//!   `(topology, pattern, block)`);
//! * [`Pipeline`] — the staged accessors (compute-on-miss, `Arc`-shared
//!   on hit) plus a [`PipelineObserver`] that counts cache hits/misses,
//!   accumulates per-stage wall time and tallies evaluated design points
//!   (the `--timings` report);
//! * [`Pipeline::global`] — the process-wide warmed instance the
//!   framework, CLI, experiments and benches all default to.
//! * content-addressed **fragments** — scalar sub-artifacts (a traversal
//!   makespan, a block-plan latency) keyed by a [`FragmentId`] content
//!   hash of their full input, so incremental consumers (the DSE sweeps)
//!   can join thousands of cached fragments per point instead of
//!   re-deriving whole-stage artifacts (see [`Pipeline::fragment_u64`]).
//!
//! All stages are deterministic, so a warm store returns bit-identical
//! artifacts to a cold run — only faster.
//!
//! # Observability
//!
//! The pipeline is instrumented through [`roboshape_obs`]: every stage
//! accessor opens a `cat = "pipeline"` tracing span named after its
//! [`PipelineStage`] (so a `--trace` capture shows where compilation time
//! goes, including cache-hit lookups), and hit/miss tallies are mirrored
//! into the global [`roboshape_obs::metrics`] registry under the
//! [`PipelineStage::hits_metric`]/[`PipelineStage::misses_metric`] names.
//! [`PipelineObserver`] itself implements [`roboshape_obs::Sink`]: it
//! consumes exactly that span/counter vocabulary, so it can be driven
//! either directly (the fast path used here) or by replaying a recorded
//! trace. With no sink installed the extra cost is one relaxed atomic
//! load per stage access plus the counter adds.
//!
//! # Examples
//!
//! ```
//! use roboshape_pipeline::{PatternKind, Pipeline};
//! use roboshape_topology::Topology;
//!
//! let pipeline = Pipeline::new();
//! let topo = Topology::chain(5);
//! let a = pipeline.pattern(&topo, PatternKind::InverseMass);
//! let b = pipeline.pattern(&topo, PatternKind::InverseMass);
//! assert!(std::sync::Arc::ptr_eq(&a, &b)); // second call is a cache hit
//! assert_eq!(pipeline.observer().report().hits(), 1);
//! ```

#![deny(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use roboshape_arch::{AcceleratorDesign, AcceleratorKnobs, KernelKind};
use roboshape_blocksparse::{BlockMatmulPlan, SparsityPattern};
use roboshape_obs as obs;
use roboshape_obs::{Counter, Sink, SpanRecord};
use roboshape_sim::{BackendKind, CompiledProgram};
use roboshape_taskgraph::{schedule, Schedule, SchedulerConfig, TaskCosts, TaskGraph};
use roboshape_topology::Topology;

/// The tracing span/metric category every pipeline event is tagged with.
pub const OBS_CATEGORY: &str = "pipeline";

/// Global metrics counter name for the evaluated-design-point tally.
pub const POINTS_METRIC: &str = "pipeline.points_evaluated";

/// The pipeline's compilation stages, in dataflow order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineStage {
    /// URDF text → robot model.
    Parse,
    /// Robot model → topology metrics.
    Topology,
    /// Topology → intermediate representation: task graphs and sparsity
    /// patterns.
    Ir,
    /// Task graph + PE allocation → PE schedules.
    Schedules,
    /// Sparsity pattern + block size → blocked mat-mul plans.
    BlockPlans,
    /// Cached parts → elaborated accelerator design.
    Design,
    /// Design → compiled simulation program (flat op array + scratch
    /// layout, see [`roboshape_sim::CompiledProgram`]).
    Programs,
    /// Design → storage/resource/latency reports and emitted artifacts.
    Reports,
}

impl PipelineStage {
    /// Every stage in dataflow order.
    pub const ALL: [PipelineStage; 8] = [
        PipelineStage::Parse,
        PipelineStage::Topology,
        PipelineStage::Ir,
        PipelineStage::Schedules,
        PipelineStage::BlockPlans,
        PipelineStage::Design,
        PipelineStage::Programs,
        PipelineStage::Reports,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PipelineStage::Parse => "parse",
            PipelineStage::Topology => "topology",
            PipelineStage::Ir => "ir",
            PipelineStage::Schedules => "schedules",
            PipelineStage::BlockPlans => "block-plans",
            PipelineStage::Design => "design",
            PipelineStage::Programs => "programs",
            PipelineStage::Reports => "reports",
        }
    }

    /// The stage with [`PipelineStage::name`] equal to `name`, if any
    /// (how the observer's [`Sink`] impl attributes span records).
    pub fn from_name(name: &str) -> Option<PipelineStage> {
        PipelineStage::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Global metrics counter name for this stage's artifact-store hits.
    pub fn hits_metric(self) -> &'static str {
        match self {
            PipelineStage::Parse => "pipeline.parse.hits",
            PipelineStage::Topology => "pipeline.topology.hits",
            PipelineStage::Ir => "pipeline.ir.hits",
            PipelineStage::Schedules => "pipeline.schedules.hits",
            PipelineStage::BlockPlans => "pipeline.block-plans.hits",
            PipelineStage::Design => "pipeline.design.hits",
            PipelineStage::Programs => "pipeline.programs.hits",
            PipelineStage::Reports => "pipeline.reports.hits",
        }
    }

    /// Global metrics counter name for this stage's artifact-store misses.
    pub fn misses_metric(self) -> &'static str {
        match self {
            PipelineStage::Parse => "pipeline.parse.misses",
            PipelineStage::Topology => "pipeline.topology.misses",
            PipelineStage::Ir => "pipeline.ir.misses",
            PipelineStage::Schedules => "pipeline.schedules.misses",
            PipelineStage::BlockPlans => "pipeline.block-plans.misses",
            PipelineStage::Design => "pipeline.design.misses",
            PipelineStage::Programs => "pipeline.programs.misses",
            PipelineStage::Reports => "pipeline.reports.misses",
        }
    }

    fn index(self) -> usize {
        PipelineStage::ALL
            .iter()
            .position(|&s| s == self)
            .expect("stage in ALL")
    }
}

/// Which topology-derived sparsity pattern an artifact is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// The mass matrix `M` (nonzero where links share a root path).
    Mass,
    /// The inverse mass matrix `M⁻¹` (fills in at mid-limb branches; the
    /// left operand of the blocked multiply).
    InverseMass,
}

/// A 128-bit content address of a fine-grained pipeline sub-artifact.
///
/// Fragment ids are produced by [`FragmentHasher`]: the hash covers a
/// domain tag plus the *entire* input of the fragment (topology parent
/// vector, kernel, every knob), so — as with the coarse store keys — the
/// only invalidation rule is "never": a changed input is a different id,
/// not a stale entry. Two 64-bit FNV-1a lanes with distinct offset bases
/// make accidental collisions across a million-point sweep negligible
/// (the store is not defending against adversarial inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragmentId([u64; 2]);

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Second-lane offset basis: the standard basis with its halves swapped,
/// so the two lanes walk different hash streams over the same bytes.
const FNV_OFFSET_ALT: u64 = FNV_OFFSET.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;

/// Incremental hasher building a [`FragmentId`] from a domain tag and a
/// stream of integers/bytes.
///
/// # Examples
///
/// ```
/// use roboshape_pipeline::FragmentHasher;
///
/// let a = FragmentHasher::new("dse.sched.makespan")
///     .usize(3)
///     .usize(4)
///     .finish();
/// let b = FragmentHasher::new("dse.sched.makespan")
///     .usize(4)
///     .usize(3)
///     .finish();
/// assert_ne!(a, b); // order is part of the content
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FragmentHasher {
    lanes: [u64; 2],
}

impl FragmentHasher {
    /// Starts a hash over the given domain tag (the tag separates key
    /// spaces: identical knob streams under different tags never collide).
    pub fn new(domain: &str) -> FragmentHasher {
        FragmentHasher {
            lanes: [FNV_OFFSET, FNV_OFFSET_ALT],
        }
        .bytes(domain.as_bytes())
        .byte(0xff) // terminator: "ab" + "c" ≠ "a" + "bc"
    }

    fn byte(mut self, b: u8) -> FragmentHasher {
        for lane in &mut self.lanes {
            *lane = (*lane ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds raw bytes.
    pub fn bytes(mut self, bytes: &[u8]) -> FragmentHasher {
        for &b in bytes {
            self = self.byte(b);
        }
        self
    }

    /// Feeds one `u64` (little-endian).
    pub fn u64(self, v: u64) -> FragmentHasher {
        self.bytes(&v.to_le_bytes())
    }

    /// Feeds one `usize` (widened to 64 bits, so ids agree across targets).
    pub fn usize(self, v: usize) -> FragmentHasher {
        self.u64(v as u64)
    }

    /// Feeds a topology parent vector (`None` encoded distinctly from any
    /// index, lengths separated by the leading count).
    pub fn parents(mut self, parents: &[Option<usize>]) -> FragmentHasher {
        self = self.usize(parents.len());
        for p in parents {
            self = match p {
                None => self.u64(u64::MAX),
                Some(i) => self.usize(*i),
            };
        }
        self
    }

    /// The finished content address.
    pub fn finish(self) -> FragmentId {
        FragmentId(self.lanes)
    }
}

/// Per-stage accumulators. All 64-bit (never `usize`): the nanosecond
/// and cycle tallies of a long sweep overflow 32 bits in seconds, so the
/// counters must not narrow on 32-bit targets.
#[derive(Default)]
struct StageStats {
    nanos: AtomicU64,
    runs: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Thread-safe per-stage instrumentation: wall time, cache hit/miss
/// counters and the number of design points evaluated. All counters are
/// monotonic `u64` atomics, safe to update from sweep worker threads;
/// `report` snapshots them.
///
/// The observer is also a [`roboshape_obs::Sink`]: span records with
/// category [`OBS_CATEGORY`] and a [`PipelineStage::name`] are attributed
/// as stage executions, and counter records named
/// [`PipelineStage::hits_metric`]/[`PipelineStage::misses_metric`]/
/// [`POINTS_METRIC`] feed the corresponding tallies. The direct methods
/// ([`time`](PipelineObserver::time), [`hit`](PipelineObserver::hit), …)
/// produce exactly those events, mirror them into the global
/// [`roboshape_obs::metrics`] registry, and forward the hit/miss counters
/// to any installed trace sink.
pub struct PipelineObserver {
    stages: [StageStats; PipelineStage::ALL.len()],
    points: AtomicU64,
    /// Cached handles into the global metrics registry (one atomic add on
    /// the hot path instead of a name lookup).
    global_hits: [Arc<Counter>; PipelineStage::ALL.len()],
    global_misses: [Arc<Counter>; PipelineStage::ALL.len()],
    global_points: Arc<Counter>,
}

impl Default for PipelineObserver {
    fn default() -> PipelineObserver {
        PipelineObserver {
            stages: Default::default(),
            points: AtomicU64::new(0),
            global_hits: std::array::from_fn(|i| {
                obs::metrics().counter(PipelineStage::ALL[i].hits_metric())
            }),
            global_misses: std::array::from_fn(|i| {
                obs::metrics().counter(PipelineStage::ALL[i].misses_metric())
            }),
            global_points: obs::metrics().counter(POINTS_METRIC),
        }
    }
}

impl std::fmt::Debug for PipelineObserver {
    // Field-complete (a derived impl would dump raw atomics; this prints
    // the same data as snapshots). Keep every counter listed here when
    // adding one.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineObserver")
            .field("stages", &self.report().stages)
            .field("points_evaluated", &self.points.load(Ordering::Relaxed))
            .field("global_points", &self.global_points.get())
            .finish()
    }
}

impl Sink for PipelineObserver {
    /// Attributes a `cat = "pipeline"` span named after a stage as one
    /// execution of that stage (other spans are ignored).
    fn span(&self, span: &SpanRecord) {
        if span.cat != OBS_CATEGORY {
            return;
        }
        if let Some(stage) = PipelineStage::from_name(span.name) {
            let s = &self.stages[stage.index()];
            s.nanos.fetch_add(span.dur_ns, Ordering::Relaxed);
            s.runs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Feeds hit/miss/point counter records into the matching tallies
    /// (other counters are ignored).
    fn counter(&self, name: &str, delta: u64) {
        if name == POINTS_METRIC {
            self.points.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        for stage in PipelineStage::ALL {
            if name == stage.hits_metric() {
                self.stages[stage.index()]
                    .hits
                    .fetch_add(delta, Ordering::Relaxed);
                return;
            }
            if name == stage.misses_metric() {
                self.stages[stage.index()]
                    .misses
                    .fetch_add(delta, Ordering::Relaxed);
                return;
            }
        }
    }
}

impl PipelineObserver {
    /// A fresh observer with all counters at zero.
    pub fn new() -> PipelineObserver {
        PipelineObserver::default()
    }

    /// Runs `f` attributed to `stage`, accumulating its wall time (and
    /// delivering the timing to this observer through its [`Sink`]
    /// interface — the same record a trace replay would produce).
    pub fn time<T>(&self, stage: PipelineStage, f: impl FnOnce() -> T) -> T {
        let start_ns = obs::now_ns();
        let start = Instant::now();
        let out = f();
        let dur_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.span(&SpanRecord {
            name: stage.name(),
            cat: OBS_CATEGORY,
            start_ns,
            dur_ns,
            thread: 0,
            id: 0,
            parent: None,
        });
        out
    }

    /// Records a cache hit for `stage`, mirrored to the global metrics
    /// registry and to any installed trace sink.
    pub fn hit(&self, stage: PipelineStage) {
        self.counter(stage.hits_metric(), 1);
        self.global_hits[stage.index()].add(1);
        obs::emit_counter(stage.hits_metric(), 1);
    }

    /// Records a cache miss for `stage`, mirrored to the global metrics
    /// registry and to any installed trace sink.
    pub fn miss(&self, stage: PipelineStage) {
        self.counter(stage.misses_metric(), 1);
        self.global_misses[stage.index()].add(1);
        obs::emit_counter(stage.misses_metric(), 1);
    }

    /// Adds to the evaluated-design-point tally (mirrored globally).
    pub fn add_points(&self, n: u64) {
        self.counter(POINTS_METRIC, n);
        self.global_points.add(n);
        obs::emit_counter(POINTS_METRIC, n);
    }

    /// Snapshots all counters.
    pub fn report(&self) -> PipelineReport {
        PipelineReport {
            stages: PipelineStage::ALL
                .iter()
                .map(|&stage| {
                    let s = &self.stages[stage.index()];
                    StageReport {
                        stage,
                        wall: Duration::from_nanos(s.nanos.load(Ordering::Relaxed)),
                        runs: s.runs.load(Ordering::Relaxed),
                        hits: s.hits.load(Ordering::Relaxed),
                        misses: s.misses.load(Ordering::Relaxed),
                    }
                })
                .collect(),
            points_evaluated: self.points.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for s in &self.stages {
            s.nanos.store(0, Ordering::Relaxed);
            s.runs.store(0, Ordering::Relaxed);
            s.hits.store(0, Ordering::Relaxed);
            s.misses.store(0, Ordering::Relaxed);
        }
        self.points.store(0, Ordering::Relaxed);
    }
}

/// One stage's counters at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageReport {
    /// The stage.
    pub stage: PipelineStage,
    /// Accumulated wall time of stage executions (cache misses).
    pub wall: Duration,
    /// Number of stage executions.
    pub runs: u64,
    /// Artifact-store hits attributed to this stage.
    pub hits: u64,
    /// Artifact-store misses attributed to this stage.
    pub misses: u64,
}

/// A full instrumentation snapshot (the `--timings` table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineReport {
    /// Per-stage counters, in dataflow order.
    pub stages: Vec<StageReport>,
    /// Total design points evaluated through the pipeline.
    pub points_evaluated: u64,
}

impl PipelineReport {
    /// Total wall time across all stages.
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|s| s.wall).sum()
    }

    /// Total cache hits across all stages.
    pub fn hits(&self) -> u64 {
        self.stages.iter().map(|s| s.hits).sum()
    }

    /// Total cache misses across all stages.
    pub fn misses(&self) -> u64 {
        self.stages.iter().map(|s| s.misses).sum()
    }
}

impl std::fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<12} {:>6} {:>8} {:>8} {:>12}",
            "stage", "runs", "hits", "misses", "wall"
        )?;
        for s in &self.stages {
            if s.runs == 0 && s.hits == 0 && s.misses == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<12} {:>6} {:>8} {:>8} {:>12}",
                s.stage.name(),
                s.runs,
                s.hits,
                s.misses,
                format!("{:.3?}", s.wall),
            )?;
        }
        write!(f, "points evaluated: {}", self.points_evaluated)
    }
}

type TopoKey = Vec<Option<usize>>;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ScheduleKey {
    topo: TopoKey,
    kernel: KernelKind,
    pe_fwd: usize,
    pe_bwd: usize,
    pipelined: bool,
    limb_sequential: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    topo: TopoKey,
    kind: PatternKind,
    b_cols: usize,
    block: usize,
    units: usize,
}

/// Cache key of the Programs stage: the backend is part of the key, so
/// scalar and lane variants of the same design stay warm side by side
/// under distinct program identities.
type ProgramKey = (TopoKey, AcceleratorKnobs, KernelKind, BackendKind);

/// Thread-safe store of compilation artifacts, keyed by the producing
/// stage's inputs. Artifacts are held behind `Arc`, so a hit shares the
/// stored product instead of recomputing or cloning it. Every stage is a
/// pure function of its key, which makes the only invalidation rule
/// "never": keys embed the full input (the topology's parent vector, PE
/// counts, scheduling mode, pattern kind, block geometry), so a changed
/// input is a different key, not a stale entry.
#[derive(Default)]
pub struct ArtifactStore {
    graphs: RwLock<HashMap<(TopoKey, KernelKind), Arc<TaskGraph>>>,
    patterns: RwLock<HashMap<(TopoKey, PatternKind), Arc<SparsityPattern>>>,
    schedules: RwLock<HashMap<ScheduleKey, Arc<Schedule>>>,
    plans: RwLock<HashMap<PlanKey, Arc<BlockMatmulPlan>>>,
    programs: RwLock<HashMap<ProgramKey, Arc<CompiledProgram>>>,
    fragments: RwLock<HashMap<FragmentId, u64>>,
}

/// Entry counts per artifact kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Cached task graphs.
    pub task_graphs: usize,
    /// Cached sparsity patterns.
    pub patterns: usize,
    /// Cached schedules.
    pub schedules: usize,
    /// Cached blocked mat-mul plans.
    pub block_plans: usize,
    /// Cached compiled simulation programs.
    pub programs: usize,
    /// Cached content-addressed scalar fragments.
    pub fragments: usize,
}

impl StoreStats {
    /// Total cached artifacts.
    pub fn total(&self) -> usize {
        self.task_graphs
            + self.patterns
            + self.schedules
            + self.block_plans
            + self.programs
            + self.fragments
    }
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "artifact store: {} task graphs, {} patterns, {} schedules, {} block plans, {} programs, {} fragments",
            self.task_graphs, self.patterns, self.schedules, self.block_plans, self.programs,
            self.fragments
        )
    }
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("stats", &self.stats())
            .finish()
    }
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> ArtifactStore {
        ArtifactStore::default()
    }

    /// Entry counts per artifact kind.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            task_graphs: self.graphs.read().len(),
            patterns: self.patterns.read().len(),
            schedules: self.schedules.read().len(),
            block_plans: self.plans.read().len(),
            programs: self.programs.read().len(),
            fragments: self.fragments.read().len(),
        }
    }

    /// Drops every cached artifact.
    pub fn clear(&self) {
        self.graphs.write().clear();
        self.patterns.write().clear();
        self.schedules.write().clear();
        self.plans.write().clear();
        self.programs.write().clear();
        self.fragments.write().clear();
    }
}

/// A handle to the staged pipeline: the shared [`ArtifactStore`] plus the
/// [`PipelineObserver`]. Cloning shares both (the handle is a pair of
/// `Arc`s), so workers of a parallel sweep and sequential callers all see
/// one store and one set of counters.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    store: Arc<ArtifactStore>,
    observer: Arc<PipelineObserver>,
}

impl Pipeline {
    /// A pipeline with a fresh (cold) store and zeroed counters.
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// A pipeline over an existing store (fresh counters).
    pub fn with_store(store: Arc<ArtifactStore>) -> Pipeline {
        Pipeline {
            store,
            observer: Arc::new(PipelineObserver::new()),
        }
    }

    /// The process-wide pipeline every framework entry point defaults to.
    /// One warmed store shared by `Framework`, the design-space sweeps,
    /// the CLI, the experiments binary and the benches.
    pub fn global() -> &'static Pipeline {
        static GLOBAL: OnceLock<Pipeline> = OnceLock::new();
        GLOBAL.get_or_init(Pipeline::new)
    }

    /// The artifact store.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// A shared handle to the artifact store, for building further
    /// pipelines over the same warmed artifacts (via
    /// [`Pipeline::with_store`]) — e.g. one per serving worker, so
    /// concurrent readers share products but keep separate counters.
    pub fn store_handle(&self) -> Arc<ArtifactStore> {
        Arc::clone(&self.store)
    }

    /// The instrumentation counters.
    pub fn observer(&self) -> &PipelineObserver {
        &self.observer
    }

    /// Ir stage: the traversal task graph of `(topo, kernel)`.
    pub fn task_graph(&self, topo: &Topology, kernel: KernelKind) -> Arc<TaskGraph> {
        let _span = obs::span(OBS_CATEGORY, PipelineStage::Ir.name());
        let key = (topo.parents().to_vec(), kernel);
        if let Some(g) = self.store.graphs.read().get(&key) {
            self.observer.hit(PipelineStage::Ir);
            return Arc::clone(g);
        }
        self.observer.miss(PipelineStage::Ir);
        let g = self.observer.time(PipelineStage::Ir, || {
            Arc::new(match kernel {
                KernelKind::DynamicsGradient => TaskGraph::dynamics_gradient(topo),
                KernelKind::InverseDynamics => TaskGraph::inverse_dynamics(topo),
                KernelKind::ForwardKinematics => TaskGraph::forward_kinematics(topo),
            })
        });
        Arc::clone(self.store.graphs.write().entry(key).or_insert(g))
    }

    /// Ir stage: the `kind` sparsity pattern of `topo`.
    pub fn pattern(&self, topo: &Topology, kind: PatternKind) -> Arc<SparsityPattern> {
        let _span = obs::span(OBS_CATEGORY, PipelineStage::Ir.name());
        let key = (topo.parents().to_vec(), kind);
        if let Some(p) = self.store.patterns.read().get(&key) {
            self.observer.hit(PipelineStage::Ir);
            return Arc::clone(p);
        }
        self.observer.miss(PipelineStage::Ir);
        let p = self.observer.time(PipelineStage::Ir, || {
            Arc::new(match kind {
                PatternKind::Mass => SparsityPattern::mass_matrix(topo),
                PatternKind::InverseMass => SparsityPattern::inverse_mass_matrix(topo),
            })
        });
        Arc::clone(self.store.patterns.write().entry(key).or_insert(p))
    }

    /// Schedules stage: the PE schedule of `(topo, kernel)` under `cfg`.
    ///
    /// Schedules are cached per `(topology, kernel, PEf, PEb, pipelined,
    /// limb-sequential)`. Non-default task costs fall outside the key
    /// space, so those configurations are computed fresh on every call
    /// (counted as misses) rather than risking a collision.
    pub fn schedule_for(
        &self,
        topo: &Topology,
        kernel: KernelKind,
        cfg: &SchedulerConfig,
    ) -> Arc<Schedule> {
        let _span = obs::span(OBS_CATEGORY, PipelineStage::Schedules.name());
        let graph = self.task_graph(topo, kernel);
        if cfg.costs != TaskCosts::default() {
            self.observer.miss(PipelineStage::Schedules);
            return self
                .observer
                .time(PipelineStage::Schedules, || Arc::new(schedule(&graph, cfg)));
        }
        let key = ScheduleKey {
            topo: topo.parents().to_vec(),
            kernel,
            pe_fwd: cfg.pe_fwd,
            pe_bwd: cfg.pe_bwd,
            pipelined: cfg.pipelined,
            limb_sequential: cfg.limb_sequential,
        };
        if let Some(s) = self.store.schedules.read().get(&key) {
            self.observer.hit(PipelineStage::Schedules);
            return Arc::clone(s);
        }
        self.observer.miss(PipelineStage::Schedules);
        let s = self
            .observer
            .time(PipelineStage::Schedules, || Arc::new(schedule(&graph, cfg)));
        Arc::clone(self.store.schedules.write().entry(key).or_insert(s))
    }

    /// BlockPlans stage: the NOP-skipping blocked mat-mul plan over the
    /// `kind` pattern of `topo`, for a `dim×dim · dim×b_cols` product at
    /// the given block size and unit count.
    pub fn block_plan(
        &self,
        topo: &Topology,
        kind: PatternKind,
        b_cols: usize,
        block: usize,
        units: usize,
    ) -> Arc<BlockMatmulPlan> {
        let _span = obs::span(OBS_CATEGORY, PipelineStage::BlockPlans.name());
        let key = PlanKey {
            topo: topo.parents().to_vec(),
            kind,
            b_cols,
            block,
            units,
        };
        if let Some(p) = self.store.plans.read().get(&key) {
            self.observer.hit(PipelineStage::BlockPlans);
            return Arc::clone(p);
        }
        self.observer.miss(PipelineStage::BlockPlans);
        let pattern = self.pattern(topo, kind);
        let p = self.observer.time(PipelineStage::BlockPlans, || {
            Arc::new(BlockMatmulPlan::new(&pattern, b_cols, block, units))
        });
        Arc::clone(self.store.plans.write().entry(key).or_insert(p))
    }

    /// Design stage: a fully-elaborated [`AcceleratorDesign`], assembled
    /// from cached parts (graph, both schedules, block plan). Produces a
    /// design identical to [`AcceleratorDesign::generate_for_kernel`].
    pub fn design(
        &self,
        topo: &Topology,
        knobs: AcceleratorKnobs,
        kernel: KernelKind,
    ) -> AcceleratorDesign {
        let _span = obs::span(OBS_CATEGORY, PipelineStage::Design.name());
        let graph = self.task_graph(topo, kernel);
        let cfg = SchedulerConfig::with_pes(knobs.pe_fwd, knobs.pe_bwd);
        let sched = self.schedule_for(topo, kernel, &cfg);
        let sched_np = self.schedule_for(topo, kernel, &cfg.without_pipelining());
        let matmul = (kernel == KernelKind::DynamicsGradient).then(|| {
            let n = topo.len();
            let plan = self.block_plan(
                topo,
                PatternKind::InverseMass,
                2 * n,
                knobs.block_size,
                knobs.matmul_units.resolve(n),
            );
            (*plan).clone()
        });
        self.observer.time(PipelineStage::Design, || {
            AcceleratorDesign::from_parts(
                topo.clone(),
                knobs,
                kernel,
                (*graph).clone(),
                (*sched).clone(),
                (*sched_np).clone(),
                matmul,
            )
        })
    }

    /// Programs stage: the compiled simulation program of the
    /// `(topo, knobs, kernel)` design — the lowered flat op array the
    /// cycle-level simulator executes ([`roboshape_sim::CompiledProgram`]).
    ///
    /// A miss assembles the design from cached parts and delegates to the
    /// simulator's process-wide program cache
    /// ([`roboshape_sim::shared_program`]), so a program obtained here and
    /// one obtained by calling `try_simulate` directly are the same `Arc`
    /// — serving, DSE sweeps and the experiments all share one compile
    /// per design.
    pub fn compiled_program(
        &self,
        topo: &Topology,
        knobs: AcceleratorKnobs,
        kernel: KernelKind,
    ) -> Arc<CompiledProgram> {
        self.compiled_program_for(topo, knobs, kernel, BackendKind::Scalar)
    }

    /// Fragment store: the cached scalar addressed by `id`, or the result
    /// of `compute`, stored under `id` for the next caller. Returns the
    /// value and whether it was served from the store (`true` on a hit).
    ///
    /// Fragments carry no stage attribution of their own — the consumer
    /// decides which [`PipelineStage`] a hit stands in for (the DSE sweep
    /// credits a makespan-fragment hit to the Schedules stage, since
    /// that's the computation the hit avoided) and keeps its own
    /// domain-level counters (`dse.frag.{hits,misses}`). A miss runs
    /// `compute` outside any store lock, so compute paths are free to
    /// re-enter the pipeline's stage accessors.
    pub fn fragment_u64(&self, id: FragmentId, compute: impl FnOnce() -> u64) -> (u64, bool) {
        if let Some(&v) = self.store.fragments.read().get(&id) {
            return (v, true);
        }
        let v = compute();
        (*self.store.fragments.write().entry(id).or_insert(v), false)
    }

    /// [`Self::compiled_program`] for an explicit execution backend.
    /// Backends are part of the cache key: a scalar and a lane program
    /// for the same design are distinct artifacts (distinct program ids,
    /// so scratch arenas rebind correctly when switching).
    pub fn compiled_program_for(
        &self,
        topo: &Topology,
        knobs: AcceleratorKnobs,
        kernel: KernelKind,
        backend: BackendKind,
    ) -> Arc<CompiledProgram> {
        let _span = obs::span(OBS_CATEGORY, PipelineStage::Programs.name());
        let key = (topo.parents().to_vec(), knobs, kernel, backend);
        if let Some(p) = self.store.programs.read().get(&key) {
            self.observer.hit(PipelineStage::Programs);
            return Arc::clone(p);
        }
        self.observer.miss(PipelineStage::Programs);
        let design = self.design(topo, knobs, kernel);
        let p = self.observer.time(PipelineStage::Programs, || {
            roboshape_sim::shared_program_for(&design, backend)
        });
        Arc::clone(self.store.programs.write().entry(key).or_insert(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboshape_robots::{zoo, Zoo};

    #[test]
    fn artifacts_hit_on_second_access() {
        let p = Pipeline::new();
        let topo = Topology::chain(4);
        let g1 = p.task_graph(&topo, KernelKind::DynamicsGradient);
        let g2 = p.task_graph(&topo, KernelKind::DynamicsGradient);
        assert!(Arc::ptr_eq(&g1, &g2));
        let s1 = p.schedule_for(
            &topo,
            KernelKind::DynamicsGradient,
            &SchedulerConfig::with_pes(2, 2),
        );
        let s2 = p.schedule_for(
            &topo,
            KernelKind::DynamicsGradient,
            &SchedulerConfig::with_pes(2, 2),
        );
        assert!(Arc::ptr_eq(&s1, &s2));
        let b1 = p.block_plan(&topo, PatternKind::InverseMass, 8, 2, 4);
        let b2 = p.block_plan(&topo, PatternKind::InverseMass, 8, 2, 4);
        assert!(Arc::ptr_eq(&b1, &b2));
        let report = p.observer().report();
        // g2, the graph lookup inside each schedule_for, s2 and b2.
        assert_eq!(report.hits(), 5);
        // graph + schedule + plan + pattern misses.
        assert!(report.misses() >= 4);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let p = Pipeline::new();
        let a = Topology::chain(4);
        let b = Topology::chain(5);
        assert_ne!(
            p.task_graph(&a, KernelKind::DynamicsGradient).tasks().len(),
            p.task_graph(&b, KernelKind::DynamicsGradient).tasks().len(),
        );
        let cfg = SchedulerConfig::with_pes(2, 2);
        let pipelined = p.schedule_for(&a, KernelKind::DynamicsGradient, &cfg);
        let barrier = p.schedule_for(&a, KernelKind::DynamicsGradient, &cfg.without_pipelining());
        assert!(pipelined.makespan() <= barrier.makespan());
        assert_ne!(
            p.pattern(&a, PatternKind::Mass).dim(),
            p.pattern(&b, PatternKind::Mass).dim()
        );
    }

    #[test]
    fn non_default_costs_bypass_the_cache() {
        let p = Pipeline::new();
        let topo = Topology::chain(3);
        let mut cfg = SchedulerConfig::with_pes(1, 1);
        cfg.costs.rnea_fwd += 7;
        let a = p.schedule_for(&topo, KernelKind::DynamicsGradient, &cfg);
        let b = p.schedule_for(&topo, KernelKind::DynamicsGradient, &cfg);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(*a, *b); // still deterministic
        assert_eq!(p.store().stats().schedules, 0);
    }

    #[test]
    fn design_matches_direct_generation() {
        let p = Pipeline::new();
        for which in [Zoo::Iiwa, Zoo::Jaco2] {
            let robot = zoo(which);
            let topo = robot.topology();
            let knobs = AcceleratorKnobs::new(3, 2, 2);
            let direct = AcceleratorDesign::generate(topo, knobs);
            for _ in 0..2 {
                // Cold then warm: both must match the uncached path.
                let piped = p.design(topo, knobs, KernelKind::DynamicsGradient);
                assert_eq!(piped.schedule(), direct.schedule());
                assert_eq!(
                    piped.schedule_without_pipelining(),
                    direct.schedule_without_pipelining()
                );
                assert_eq!(piped.matmul_plan(), direct.matmul_plan());
                assert_eq!(piped.compute_cycles(), direct.compute_cycles());
                assert_eq!(piped.storage(), direct.storage());
            }
        }
    }

    #[test]
    fn store_stats_and_clear() {
        let p = Pipeline::new();
        let topo = zoo(Zoo::Hyq);
        p.design(
            topo.topology(),
            AcceleratorKnobs::new(2, 2, 3),
            KernelKind::DynamicsGradient,
        );
        let stats = p.store().stats();
        assert_eq!(stats.task_graphs, 1);
        assert_eq!(stats.patterns, 1);
        assert_eq!(stats.schedules, 2); // pipelined + barrier
        assert_eq!(stats.block_plans, 1);
        assert_eq!(stats.total(), 5);
        p.store().clear();
        assert_eq!(p.store().stats().total(), 0);
    }

    #[test]
    fn observer_counts_points_and_resets() {
        let obs = PipelineObserver::new();
        obs.add_points(100);
        obs.add_points(25);
        obs.time(PipelineStage::Reports, || {
            std::thread::sleep(Duration::from_millis(1))
        });
        let r = obs.report();
        assert_eq!(r.points_evaluated, 125);
        assert!(r.total_wall() >= Duration::from_millis(1));
        let rendered = r.to_string();
        assert!(rendered.contains("reports"));
        assert!(rendered.contains("points evaluated: 125"));
        obs.reset();
        assert_eq!(obs.report().points_evaluated, 0);
        assert_eq!(obs.report().total_wall(), Duration::ZERO);
    }

    #[test]
    fn stage_name_and_metric_lookup_roundtrip() {
        for stage in PipelineStage::ALL {
            assert_eq!(PipelineStage::from_name(stage.name()), Some(stage));
            assert!(stage.hits_metric().ends_with(".hits"));
            assert!(stage.misses_metric().ends_with(".misses"));
            assert!(stage.hits_metric().contains(stage.name()));
        }
        assert_eq!(PipelineStage::from_name("nonsense"), None);
    }

    #[test]
    fn observer_driven_purely_through_sink_interface() {
        // The observer must be usable as a trace consumer: feed it the
        // span/counter vocabulary the accessors emit and expect the same
        // report the direct methods would produce.
        let obs = PipelineObserver::new();
        obs.span(&SpanRecord {
            name: PipelineStage::Schedules.name(),
            cat: OBS_CATEGORY,
            start_ns: 0,
            dur_ns: 1_000,
            thread: 1,
            id: 1,
            parent: None,
        });
        obs.span(&SpanRecord {
            name: "schedules",
            cat: "unrelated-category",
            start_ns: 0,
            dur_ns: 9_999_999,
            thread: 1,
            id: 2,
            parent: None,
        });
        obs.counter(PipelineStage::Schedules.hits_metric(), 3);
        obs.counter(PipelineStage::Ir.misses_metric(), 2);
        obs.counter(POINTS_METRIC, 11);
        obs.counter("some.other.metric", 99);
        let r = obs.report();
        let sched = r.stages[PipelineStage::Schedules.index()];
        assert_eq!(sched.runs, 1);
        assert_eq!(sched.wall, Duration::from_nanos(1_000));
        assert_eq!(sched.hits, 3);
        assert_eq!(r.stages[PipelineStage::Ir.index()].misses, 2);
        assert_eq!(r.points_evaluated, 11);
        assert_eq!(r.hits(), 3);
    }

    #[test]
    fn stage_accessors_emit_trace_spans() {
        let sink = Arc::new(roboshape_obs::CollectingSink::new());
        roboshape_obs::set_sink(sink.clone());
        let p = Pipeline::new();
        p.design(
            zoo(Zoo::Baxter).topology(),
            AcceleratorKnobs::new(2, 2, 2),
            KernelKind::DynamicsGradient,
        );
        roboshape_obs::clear_sink();
        let spans = sink.spans();
        for stage in [
            PipelineStage::Ir,
            PipelineStage::Schedules,
            PipelineStage::BlockPlans,
            PipelineStage::Design,
        ] {
            assert!(
                spans
                    .iter()
                    .any(|s| s.cat == OBS_CATEGORY && s.name == stage.name()),
                "no {} span captured",
                stage.name()
            );
        }
        // Accessors called from design() nest under the design span.
        let design = spans
            .iter()
            .find(|s| s.name == PipelineStage::Design.name())
            .unwrap();
        assert!(spans
            .iter()
            .any(|s| s.name == PipelineStage::Ir.name() && s.parent == Some(design.id)));
        // Hit/miss counters reached the sink alongside the spans.
        let counters = sink.counters();
        assert!(counters
            .iter()
            .any(|c| c.name == PipelineStage::Ir.misses_metric()));
    }

    #[test]
    fn store_handle_shares_artifacts_with_fresh_counters() {
        let warm = Pipeline::new();
        let topo = Topology::chain(5);
        let g1 = warm.task_graph(&topo, KernelKind::DynamicsGradient);
        let reader = Pipeline::with_store(warm.store_handle());
        let g2 = reader.task_graph(&topo, KernelKind::DynamicsGradient);
        assert!(Arc::ptr_eq(&g1, &g2)); // same stored artifact
        assert_eq!(reader.observer().report().hits(), 1); // own counters
        assert_eq!(reader.observer().report().misses(), 0);
        assert_eq!(warm.observer().report().misses(), 1);
    }

    #[test]
    fn programs_stage_shares_one_compile_per_design() {
        let p = Pipeline::new();
        let robot = zoo(Zoo::Iiwa);
        let topo = robot.topology();
        let knobs = AcceleratorKnobs::new(4, 6, 2);
        let kernel = KernelKind::DynamicsGradient;
        let first = p.compiled_program(topo, knobs, kernel);
        let second = p.compiled_program(topo, knobs, kernel);
        assert!(Arc::ptr_eq(&first, &second), "store must hand out one Arc");
        assert_eq!(p.store().stats().programs, 1);
        // The sim crate's own process-wide cache and the pipeline store
        // resolve a matching design to the *same* compiled program, so
        // serving and direct try_simulate calls share the compile.
        let design = p.design(topo, knobs, kernel);
        let direct = roboshape_sim::shared_program(&design);
        assert!(
            Arc::ptr_eq(&first, &direct),
            "pipeline and sim-global caches diverged"
        );
        // A different knob setting compiles its own program.
        let other = p.compiled_program(topo, AcceleratorKnobs::new(1, 1, 1), kernel);
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(p.store().stats().programs, 2);
    }

    #[test]
    fn fragments_hit_on_second_access_and_clear() {
        let p = Pipeline::new();
        let id = FragmentHasher::new("test.frag").usize(7).u64(42).finish();
        let mut computes = 0;
        let (v, hit) = p.fragment_u64(id, || {
            computes += 1;
            99
        });
        assert_eq!((v, hit), (99, false));
        let (v, hit) = p.fragment_u64(id, || {
            computes += 1;
            0 // never runs
        });
        assert_eq!((v, hit), (99, true));
        assert_eq!(computes, 1);
        assert_eq!(p.store().stats().fragments, 1);
        p.store().clear();
        assert_eq!(p.store().stats().fragments, 0);
    }

    #[test]
    fn fragment_ids_separate_domains_and_content() {
        let base = FragmentHasher::new("a").usize(1).usize(2).finish();
        // Same stream under another domain tag.
        assert_ne!(base, FragmentHasher::new("b").usize(1).usize(2).finish());
        // Domain/content boundary: "ab" + nothing vs "a" + content "b".
        assert_ne!(
            FragmentHasher::new("ab").finish(),
            FragmentHasher::new("a").bytes(b"b").finish()
        );
        // Parent vectors: None is distinct from any index, and length
        // participates.
        let chain = Topology::chain(4);
        let star = Topology::new(vec![None, Some(0), Some(0), Some(0)]).unwrap();
        assert_ne!(
            FragmentHasher::new("t").parents(chain.parents()).finish(),
            FragmentHasher::new("t").parents(star.parents()).finish()
        );
        // Deterministic across calls.
        assert_eq!(base, FragmentHasher::new("a").usize(1).usize(2).finish());
    }

    #[test]
    fn fragments_are_shared_through_store_handles() {
        let warm = Pipeline::new();
        let id = FragmentHasher::new("test.shared").finish();
        warm.fragment_u64(id, || 5);
        let reader = Pipeline::with_store(warm.store_handle());
        let (v, hit) = reader.fragment_u64(id, || unreachable!("must hit"));
        assert_eq!((v, hit), (5, true));
    }

    #[test]
    fn pipeline_is_shareable_across_threads() {
        let p = Pipeline::new();
        let topo = Topology::chain(6);
        std::thread::scope(|scope| {
            for pe in 1..=6 {
                let p = p.clone();
                let topo = &topo;
                scope.spawn(move || {
                    p.schedule_for(
                        topo,
                        KernelKind::DynamicsGradient,
                        &SchedulerConfig::with_pes(pe, 1),
                    );
                });
            }
        });
        assert_eq!(p.store().stats().schedules, 6);
    }
}
