//! Joint models: motion subspaces and configuration-dependent transforms.

use crate::{MotionVec, Xform};
use roboshape_linalg::Vec3;

/// The kind of a robot joint.
///
/// The paper's robots use single-degree-of-freedom revolute joints, but the
/// robomorphic processing elements (and the URDF format) also cover
/// prismatic joints; fixed joints appear in URDF files and are fused away
/// during parsing.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum JointKind {
    /// Rotation about `axis` (unit vector in the joint frame).
    Revolute {
        /// Rotation axis, unit length.
        axis: Vec3,
    },
    /// Translation along `axis` (unit vector in the joint frame).
    Prismatic {
        /// Translation axis, unit length.
        axis: Vec3,
    },
    /// Rigid attachment (no degree of freedom).
    Fixed,
}

/// A single robot joint: its kind plus the fixed tree transform from the
/// parent link frame to the joint frame.
///
/// The total parent→child transform at configuration `q` is
/// `X(q) = XJ(q) ∘ Xtree` ([`Joint::child_xform`]).
///
/// # Examples
///
/// ```
/// use roboshape_linalg::Vec3;
/// use roboshape_spatial::{Joint, Xform};
///
/// let joint = Joint::revolute(Vec3::unit_z())
///     .with_tree_xform(Xform::from_translation(Vec3::new(0.0, 0.0, 0.3)));
/// let x = joint.child_xform(0.7);
/// assert!((x.translation().z - 0.3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Joint {
    kind: JointKind,
    tree_xform: Xform,
}

impl Joint {
    /// A revolute joint about `axis` with identity tree transform.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is numerically zero.
    pub fn revolute(axis: Vec3) -> Joint {
        Joint {
            kind: JointKind::Revolute {
                axis: axis.normalized(),
            },
            tree_xform: Xform::identity(),
        }
    }

    /// A prismatic joint along `axis` with identity tree transform.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is numerically zero.
    pub fn prismatic(axis: Vec3) -> Joint {
        Joint {
            kind: JointKind::Prismatic {
                axis: axis.normalized(),
            },
            tree_xform: Xform::identity(),
        }
    }

    /// A fixed joint with identity tree transform.
    pub fn fixed() -> Joint {
        Joint {
            kind: JointKind::Fixed,
            tree_xform: Xform::identity(),
        }
    }

    /// Returns the joint with the given fixed parent-frame → joint-frame
    /// transform.
    pub fn with_tree_xform(mut self, x: Xform) -> Joint {
        self.tree_xform = x;
        self
    }

    /// The joint kind.
    pub fn kind(&self) -> JointKind {
        self.kind
    }

    /// The fixed tree transform (parent link frame → joint frame).
    pub fn tree_xform(&self) -> Xform {
        self.tree_xform
    }

    /// Number of degrees of freedom (1 for revolute/prismatic, 0 for fixed).
    pub fn dof(&self) -> usize {
        match self.kind {
            JointKind::Fixed => 0,
            _ => 1,
        }
    }

    /// The motion subspace column `S` (in the child/joint frame): joint
    /// velocity `q̇` contributes `S·q̇` to the child link velocity.
    pub fn motion_subspace(&self) -> MotionVec {
        match self.kind {
            JointKind::Revolute { axis } => MotionVec::from_parts(axis, Vec3::ZERO),
            JointKind::Prismatic { axis } => MotionVec::from_parts(Vec3::ZERO, axis),
            JointKind::Fixed => MotionVec::ZERO,
        }
    }

    /// The configuration-dependent joint transform `XJ(q)` (joint frame at
    /// zero → joint frame at `q`).
    pub fn joint_xform(&self, q: f64) -> Xform {
        match self.kind {
            JointKind::Revolute { axis } => Xform::from_rotation(axis, q),
            JointKind::Prismatic { axis } => Xform::from_translation(axis * q),
            JointKind::Fixed => Xform::identity(),
        }
    }

    /// The full parent-link → child-link transform at configuration `q`:
    /// `X(q) = XJ(q) ∘ Xtree`.
    pub fn child_xform(&self, q: f64) -> Xform {
        self.joint_xform(q).compose(&self.tree_xform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cross_motion;
    use proptest::prelude::*;

    #[test]
    fn dof_per_kind() {
        assert_eq!(Joint::revolute(Vec3::unit_z()).dof(), 1);
        assert_eq!(Joint::prismatic(Vec3::unit_x()).dof(), 1);
        assert_eq!(Joint::fixed().dof(), 0);
    }

    #[test]
    fn motion_subspace_revolute_is_angular() {
        let s = Joint::revolute(Vec3::unit_y()).motion_subspace();
        assert_eq!(s.angular(), Vec3::unit_y());
        assert_eq!(s.linear(), Vec3::ZERO);
    }

    #[test]
    fn motion_subspace_prismatic_is_linear() {
        let s = Joint::prismatic(Vec3::unit_y()).motion_subspace();
        assert_eq!(s.angular(), Vec3::ZERO);
        assert_eq!(s.linear(), Vec3::unit_y());
    }

    #[test]
    fn axis_is_normalized() {
        let j = Joint::revolute(Vec3::new(0.0, 0.0, 5.0));
        assert_eq!(j.motion_subspace().angular(), Vec3::unit_z());
    }

    #[test]
    fn joint_xform_at_zero_is_identity() {
        for j in [
            Joint::revolute(Vec3::unit_x()),
            Joint::prismatic(Vec3::unit_z()),
            Joint::fixed(),
        ] {
            let x = j.joint_xform(0.0);
            assert!(x.to_mat6().distance(&Xform::identity().to_mat6()) < 1e-12);
        }
    }

    #[test]
    fn child_xform_composes_tree() {
        let tree = Xform::from_translation(Vec3::new(1.0, 0.0, 0.0));
        let j = Joint::revolute(Vec3::unit_z()).with_tree_xform(tree);
        let x = j.child_xform(0.0);
        assert!((x.translation() - Vec3::unit_x()).norm() < 1e-12);
    }

    proptest! {
        /// The derivative identity the analytical gradients rely on
        /// (paper Alg. 3): d/dq [X(q)·u] = −S × (X(q)·u).
        #[test]
        fn xform_derivative_is_motion_cross(
            axis_pick in 0usize..6,
            q in -3.0..3.0f64,
            u_raw in proptest::array::uniform6(-3.0..3.0f64),
        ) {
            let axes = [Vec3::unit_x(), Vec3::unit_y(), Vec3::unit_z()];
            let joint = if axis_pick < 3 {
                Joint::revolute(axes[axis_pick])
            } else {
                Joint::prismatic(axes[axis_pick - 3])
            };
            let joint = joint.with_tree_xform(Xform::from_origin(
                Vec3::new(0.1, -0.2, 0.3),
                [0.2, -0.1, 0.4],
            ));
            let u = MotionVec::from_vec6(u_raw.into());
            let s = joint.motion_subspace();
            let h = 1e-6;
            let plus = joint.child_xform(q + h).apply_motion(u);
            let minus = joint.child_xform(q - h).apply_motion(u);
            let fd = (plus - minus) * (0.5 / h);
            let analytic = -cross_motion(s, joint.child_xform(q).apply_motion(u));
            prop_assert!((fd - analytic).norm() < 1e-5 * (1.0 + analytic.norm()));
        }
    }
}
