//! Compiled simulation programs: schedule interpretation hoisted out of
//! the request path.
//!
//! The paper's designs fix their schedule at generation time, so
//! everything `try_simulate` used to re-derive per call — task-kind
//! dispatch through the task graph, parent/child lookups through the
//! topology, `(link, seed)` hashing for derivative state, and the
//! per-entry dependency `assert!`s — is a pure function of the design.
//! [`CompiledProgram::compile`] performs that work once, lowering the
//! schedule into a flat `Op` array with every index pre-resolved and
//! every dependency proven, and execution becomes a branch-light sweep
//! over the array against a reusable [`SimScratch`] arena.
//!
//! Three guarantees make the fast path safe to trust:
//!
//! 1. **Compile-time dependency verification.** Lowering walks the
//!    schedule in order and panics with the interpreter's exact messages
//!    if any op would read state no earlier op produced — the same
//!    scheduler-bug net the interpreted path casts per evaluation, paid
//!    once per design.
//! 2. **Bit-identical arithmetic.** Each op calls the same step functions
//!    in the same order on the same values as the interpreted path, and
//!    the host-side forward dynamics / `M⁻¹` replication mirrors the
//!    reference library's loop structure exactly. The one transformation
//!    — writing `−∂τ` into the mat-mul operand so `C = M⁻¹B` *is* the
//!    output — is exact because IEEE-754 rounding is an odd function
//!    (`−(a ⊕ b) = (−a) ⊕ (−b)` for every rounded op). A property test
//!    pins `f64`-equality against the interpreted oracle.
//! 3. **Consume-on-read accumulators.** Compilation proves every pushed
//!    accumulator slot is read exactly once per evaluation, so reads
//!    reset the slot and warm evaluations need no O(n²) clearing.
//!
//! Programs are shared process-wide through [`shared_program`] (the
//! `sim.compile.{hit,miss}` counters watch that cache) and additionally
//! cached in the pipeline artifact store, so serving, DSE, and the
//! experiments all compile each design once. The replicated-batch
//! makespan is memoized per `(program, batch length)` behind the
//! `sim.batch_schedule.{hit,miss}` counters.

use crate::exec::{BackendKind, ExecBackend};
use crate::scratch::SimScratch;
use crate::{check_input, SimError, SimStats, Simulation, CYCLE_BOUNDS, OCCUPANCY_BOUNDS};
use roboshape_arch::{AcceleratorDesign, AcceleratorKnobs, KernelKind};
use roboshape_blocksparse::BlockOp;
use roboshape_linalg::DMat;
use roboshape_obs as obs;
use roboshape_obs::{Counter, Histogram};
use roboshape_spatial::Xform;
use roboshape_taskgraph::{Stage, TaskGraph, TaskKind};
use roboshape_urdf::RobotModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Sentinel for "no index" in the packed op fields.
const NONE: i32 = -1;

/// One lowered schedule entry. All indices are resolved at compile time;
/// execution never consults the task graph or topology.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// RNEA forward step for `link`; `parent < 0` means root (gravity-
    /// seeded base acceleration).
    RneaFwd { link: u32, parent: i32 },
    /// RNEA backward step; consumes the link's force accumulator and
    /// pushes onto `parent`'s (when non-negative).
    RneaBwd { link: u32, parent: i32 },
    /// ∇RNEA forward step writing derivative slot `slot`; `parent_slot`
    /// is the parent thread's slot or [`NONE`] for a default pair.
    GradFwd {
        link: u32,
        slot: u32,
        parent: i32,
        parent_slot: i32,
        is_seed: bool,
    },
    /// ∇RNEA backward step: reads `state_slot` (or default), consumes
    /// `acc_slot` (or default), pushes onto `parent_acc_slot`, and writes
    /// the sign-folded `B` entries in row `link` at columns `b_q`/`b_qd`.
    GradBwd {
        link: u32,
        state_slot: i32,
        acc_slot: i32,
        parent_acc_slot: i32,
        b_q: u32,
        b_qd: u32,
        is_seed: bool,
    },
    /// Forward-kinematics pose composition.
    FkStep { link: u32, parent: i32 },
}

/// A histogram handle plus the precomputed sample one evaluation records.
#[derive(Debug, Clone)]
struct HistSample {
    hist: Arc<Histogram>,
    value: u64,
}

/// A `(design, topology)` pair lowered to a flat op program.
///
/// Compile once (or fetch from [`shared_program`] / the pipeline artifact
/// store), then call the `execute_*` entry points with a [`SimScratch`];
/// warm executions of the dynamics-gradient kernel perform no heap
/// allocation inside the program.
#[derive(Debug)]
pub struct CompiledProgram {
    /// Process-unique id (scratch binding, batch memo keys). Starts at 1.
    id: u64,
    kernel: KernelKind,
    /// Which execution backend batch entry points drive the ops with.
    backend: BackendKind,
    pub(crate) n: usize,
    /// The design topology's parent array (request-time validation and
    /// host-side traversals).
    pub(crate) parents: Vec<Option<usize>>,
    pub(crate) ops: Vec<Op>,
    /// Blocked mat-mul tile ops (dynamics-gradient kernel only).
    pub(crate) mm_ops: Vec<BlockOp>,
    pub(crate) mm_block: usize,
    stats: SimStats,
    knobs: AcceleratorKnobs,
    /// Single-evaluation traversal makespan (cache-hit validation).
    makespan: u64,
    /// The design's task graph, kept for batched-makespan scheduling.
    graph: TaskGraph,
    /// Memoized replicated-batch makespans by batch length.
    makespans: Mutex<HashMap<usize, u64>>,
    /// Counter handles with precomputed per-evaluation deltas.
    eval_counts: Vec<(Arc<Counter>, u64)>,
    /// Histogram handles with precomputed per-evaluation samples.
    eval_hists: Vec<HistSample>,
    scratch_reuse: Arc<Counter>,
    batch_hit: Arc<Counter>,
    batch_miss: Arc<Counter>,
    /// Evaluations executed through the scalar backend (singles,
    /// remainders, fallbacks).
    exec_scalar: Arc<Counter>,
    /// Evaluations executed through the lane backend (whole groups of 4).
    exec_lanes: Arc<Counter>,
}

fn next_program_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl CompiledProgram {
    /// Lowers `design` into a compiled program tagged with the default
    /// [`BackendKind::Scalar`] backend. See [`Self::compile_for`].
    ///
    /// # Panics
    ///
    /// Panics — with the interpreted path's messages — if the design's
    /// schedule violates a data dependency or contains task kinds its
    /// kernel cannot (a scheduler/generator bug, not a bad request).
    pub fn compile(design: &AcceleratorDesign) -> CompiledProgram {
        CompiledProgram::compile_for(design, BackendKind::Scalar)
    }

    /// Lowers `design` into a compiled program whose batch entry points
    /// execute through `backend`, verifying every schedule dependency
    /// along the way. The backend choice affects *how* batches are
    /// driven, never the results: all backends are bit-exact.
    ///
    /// # Panics
    ///
    /// As [`Self::compile`].
    pub fn compile_for(design: &AcceleratorDesign, backend: BackendKind) -> CompiledProgram {
        let _span = obs::span(crate::OBS_CATEGORY, "compile");
        let topo = design.topology();
        let n = topo.len();
        let graph = design.task_graph();
        let schedule = design.schedule();
        let kernel = design.kernel();

        let mut fwd_done = vec![false; n];
        let mut bwd_done = vec![false; n];
        let mut dstate_written = vec![false; n * n];
        let mut acc_pushed = vec![false; n * n];
        let mut gradbwd_done = vec![false; n * n];
        let mut ops = Vec::with_capacity(schedule.entries().len());

        for entry in schedule.entries() {
            let kind = graph.task(entry.task).kind;
            if kernel == KernelKind::ForwardKinematics {
                let TaskKind::RneaFwd { link } = kind else {
                    panic!("forward-kinematics schedules contain only forward tasks");
                };
                let parent = match topo.parent(link) {
                    Some(p) => {
                        assert!(fwd_done[p], "schedule read of unready parent pose");
                        p as i32
                    }
                    None => NONE,
                };
                fwd_done[link] = true;
                ops.push(Op::FkStep {
                    link: link as u32,
                    parent,
                });
                continue;
            }
            match kind {
                TaskKind::RneaFwd { link } => {
                    let parent = match topo.parent(link) {
                        Some(p) => {
                            assert!(fwd_done[p], "schedule read of unready parent state");
                            p as i32
                        }
                        None => NONE,
                    };
                    fwd_done[link] = true;
                    ops.push(Op::RneaFwd {
                        link: link as u32,
                        parent,
                    });
                }
                TaskKind::RneaBwd { link } => {
                    assert!(fwd_done[link], "backward step before forward state ready");
                    for &c in topo.children(link) {
                        assert!(bwd_done[c], "parent backward step before child retired");
                    }
                    bwd_done[link] = true;
                    ops.push(Op::RneaBwd {
                        link: link as u32,
                        parent: topo.parent(link).map_or(NONE, |p| p as i32),
                    });
                }
                TaskKind::GradFwd { link, seed } => {
                    assert!(
                        kernel == KernelKind::DynamicsGradient,
                        "inverse-dynamics schedules cannot contain {kind:?}"
                    );
                    assert!(fwd_done[link], "gradient step before RNEA state ready");
                    let (parent, parent_slot) = match topo.parent(link) {
                        Some(p) if p == seed || topo.is_ancestor(seed, p) => {
                            assert!(
                                dstate_written[p * n + seed],
                                "schedule read of unready derivative parent state"
                            );
                            (p as i32, (p * n + seed) as i32)
                        }
                        Some(p) => (p as i32, NONE),
                        None => (NONE, NONE),
                    };
                    dstate_written[link * n + seed] = true;
                    ops.push(Op::GradFwd {
                        link: link as u32,
                        slot: (link * n + seed) as u32,
                        parent,
                        parent_slot,
                        is_seed: link == seed,
                    });
                }
                TaskKind::GradBwd { link, seed } => {
                    assert!(
                        kernel == KernelKind::DynamicsGradient,
                        "inverse-dynamics schedules cannot contain {kind:?}"
                    );
                    assert!(bwd_done[link], "gradient backward before RNEA force ready");
                    let slot = link * n + seed;
                    let state_slot = if dstate_written[slot] {
                        slot as i32
                    } else {
                        NONE
                    };
                    let acc_slot = if acc_pushed[slot] { slot as i32 } else { NONE };
                    gradbwd_done[slot] = true;
                    let parent_acc_slot = match topo.parent(link) {
                        Some(p) => {
                            let ps = p * n + seed;
                            // A push after the parent retired would leak
                            // into the next evaluation's accumulators.
                            assert!(
                                !gradbwd_done[ps],
                                "schedule pushed a derivative force after the parent gradient retired"
                            );
                            acc_pushed[ps] = true;
                            ps as i32
                        }
                        None => NONE,
                    };
                    ops.push(Op::GradBwd {
                        link: link as u32,
                        state_slot,
                        acc_slot,
                        parent_acc_slot,
                        b_q: seed as u32,
                        b_qd: (seed + n) as u32,
                        is_seed: link == seed,
                    });
                }
            }
        }
        // Every accumulator slot that received a push must also have been
        // consumed, or warm evaluations would observe stale forces.
        for slot in 0..n * n {
            assert!(
                !acc_pushed[slot] || gradbwd_done[slot],
                "schedule left a derivative force accumulator unconsumed"
            );
        }

        let (mm_ops, mm_block, matmul_ops, matmul_nops) = match kernel {
            KernelKind::DynamicsGradient => {
                let plan = design
                    .matmul_plan()
                    .expect("dynamics-gradient designs carry a mat-mul plan");
                (
                    plan.ops().to_vec(),
                    plan.block(),
                    plan.ops().len(),
                    plan.skipped_ops(),
                )
            }
            _ => (Vec::new(), 1, 0, 0),
        };

        let stats = SimStats {
            cycles: design.compute_cycles(),
            cycles_no_pipelining: design.compute_cycles_no_pipelining(),
            tasks_executed: ops.len(),
            matmul_ops,
            matmul_nops,
            checkpoint_restores: schedule.context_switches(graph),
        };

        // Pre-resolve every metric handle the per-evaluation recording
        // touches, so warm executions perform no registry lookups.
        let m = obs::metrics();
        let eval_counts = vec![
            (m.counter("sim.evals"), 1),
            (m.counter("sim.matmul.ops"), stats.matmul_ops as u64),
            (m.counter("sim.matmul.nops"), stats.matmul_nops as u64),
            (
                m.counter("sim.checkpoint_restores"),
                stats.checkpoint_restores as u64,
            ),
        ];
        let mut eval_hists = Vec::new();
        for stage in Stage::ALL {
            if let Some((start, end)) = schedule.stage_span(graph, stage) {
                eval_hists.push(HistSample {
                    hist: m.histogram(crate::stage_cycles_metric(stage), &CYCLE_BOUNDS),
                    value: end.saturating_sub(start),
                });
            }
        }
        eval_hists.push(HistSample {
            hist: m.histogram("sim.pe_occupancy_pct", &OCCUPANCY_BOUNDS),
            value: (schedule.utilization() * 100.0).round() as u64,
        });

        CompiledProgram {
            id: next_program_id(),
            kernel,
            backend,
            n,
            parents: topo.parents().to_vec(),
            ops,
            mm_ops,
            mm_block,
            stats,
            knobs: *design.knobs(),
            makespan: schedule.makespan(),
            graph: graph.clone(),
            makespans: Mutex::new(HashMap::new()),
            eval_counts,
            eval_hists,
            scratch_reuse: m.counter("sim.scratch.reuse"),
            batch_hit: m.counter("sim.batch_schedule.hit"),
            batch_miss: m.counter("sim.batch_schedule.miss"),
            exec_scalar: m.counter("sim.exec.scalar.evals"),
            exec_lanes: m.counter("sim.exec.lanes.evals"),
        }
    }

    /// Process-unique program id (used for scratch binding).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The robot's link count the program was compiled for.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The kernel the program executes.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// The execution backend batch entry points drive the ops with.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The precomputed per-evaluation statistics.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// The mat-mul block size (1 for kernels without a mat-mul stage).
    pub(crate) fn matmul_block(&self) -> usize {
        self.mm_block
    }

    pub(crate) fn note_scratch_reuse(&self) {
        self.scratch_reuse.add(1);
    }

    /// `true` when `design` lowers to this exact program — cheap
    /// structural validation for cache hits, guarding against
    /// `from_parts` designs that share a key with a generated design but
    /// carry a different schedule.
    pub fn matches(&self, design: &AcceleratorDesign) -> bool {
        self.kernel == design.kernel()
            && self.parents.as_slice() == design.topology().parents()
            && self.knobs == *design.knobs()
            && self.ops.len() == design.schedule().entries().len()
            && self.makespan == design.schedule().makespan()
            && self.stats.cycles == design.compute_cycles()
            && self.mm_ops.len() == design.matmul_plan().map_or(0, |p| p.ops().len())
    }

    pub(crate) fn check_topology(&self, model: &RobotModel) -> Result<(), SimError> {
        if model.topology().parents() != self.parents.as_slice() {
            return Err(SimError::TopologyMismatch);
        }
        Ok(())
    }

    /// Records one evaluation into the global metrics registry through
    /// the handles resolved at compile time (no lookups, no allocation).
    pub(crate) fn record_eval(&self) {
        for (counter, delta) in &self.eval_counts {
            counter.add(*delta);
        }
        for sample in &self.eval_hists {
            sample.hist.record(sample.value);
        }
    }

    /// Bumps the lane-backend evaluation counter (one whole lane group).
    pub(crate) fn note_lane_evals(&self, count: u64) {
        self.exec_lanes.add(count);
    }

    /// Runs one dynamics-gradient evaluation: host-side forward dynamics
    /// and `M⁻¹` into the scratch arena, then the lowered traversal and
    /// mat-mul ops. Warm calls (scratch already bound to this program)
    /// allocate only the returned [`Simulation`]'s output buffers.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] exactly as [`crate::try_simulate`] does.
    pub fn execute_gradient(
        &self,
        model: &RobotModel,
        scratch: &mut SimScratch,
        q: &[f64],
        qd: &[f64],
        tau: &[f64],
    ) -> Result<Simulation, SimError> {
        let mut out = Simulation {
            tau: Vec::new(),
            dqdd_dq: DMat::zeros(0, 0),
            dqdd_dqd: DMat::zeros(0, 0),
            stats: SimStats::default(),
        };
        self.execute_gradient_into(model, scratch, q, qd, tau, &mut out)?;
        Ok(out)
    }

    /// [`Self::execute_gradient`] writing into a caller-owned
    /// [`Simulation`], reusing its buffers when already correctly sized.
    /// A warm call — scratch bound to this program, `out` from a previous
    /// call against it — performs **zero** heap allocation (asserted by a
    /// counting-allocator test).
    ///
    /// # Errors
    ///
    /// As [`Self::execute_gradient`]; on error `out` is untouched or
    /// partially overwritten and must not be read.
    pub fn execute_gradient_into(
        &self,
        model: &RobotModel,
        scratch: &mut SimScratch,
        q: &[f64],
        qd: &[f64],
        tau: &[f64],
        out: &mut Simulation,
    ) -> Result<(), SimError> {
        if self.kernel != KernelKind::DynamicsGradient {
            return Err(SimError::KernelMismatch {
                expected: KernelKind::DynamicsGradient,
                got: self.kernel,
            });
        }
        self.check_topology(model)?;
        let n = self.n;
        check_input("q", q, n)?;
        check_input("qd", qd, n)?;
        check_input("tau", tau, n)?;
        scratch.prepare(self);

        self.host_forward_dynamics(model, scratch, q, qd, tau)?;
        let qdd = std::mem::take(&mut scratch.qdd);
        self.run_traversals(model, scratch, q, qd, &qdd);
        scratch.qdd = qdd;
        self.run_matmul(scratch);
        self.record_eval();
        self.exec_scalar.add(1);

        if out.tau.len() != n {
            out.tau.clear();
            out.tau.resize(n, 0.0);
        }
        out.tau.copy_from_slice(&scratch.cache.0.tau);
        if out.dqdd_dq.rows() != n || out.dqdd_dq.cols() != n {
            out.dqdd_dq = DMat::zeros(n, n);
        }
        if out.dqdd_dqd.rows() != n || out.dqdd_dqd.cols() != n {
            out.dqdd_dqd = DMat::zeros(n, n);
        }
        let c = scratch.c.as_slice();
        let dq = out.dqdd_dq.as_mut_slice();
        let dqd = out.dqdd_dqd.as_mut_slice();
        for i in 0..n {
            let crow = &c[i * 2 * n..(i + 1) * 2 * n];
            dq[i * n..(i + 1) * n].copy_from_slice(&crow[..n]);
            dqd[i * n..(i + 1) * n].copy_from_slice(&crow[n..]);
        }
        out.stats = self.stats;
        Ok(())
    }

    /// Runs a batch of dynamics-gradient evaluations through the
    /// program's [`Self::backend`] and returns the per-step results plus
    /// the memoized replicated-batch makespan.
    ///
    /// Results are identical across backends: the lane backend is
    /// bit-exact per entry, and falls back to the scalar path for
    /// remainder entries and failed lane groups.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyBatch`] for an empty slice, or the first
    /// failing step's error (no partial results).
    pub fn execute_batch(
        &self,
        model: &RobotModel,
        scratch: &mut SimScratch,
        inputs: &[(Vec<f64>, Vec<f64>, Vec<f64>)],
    ) -> Result<(Vec<Simulation>, u64), SimError> {
        let mut outs = Vec::new();
        let makespan = self.execute_batch_into(model, scratch, inputs, &mut outs)?;
        Ok((outs, makespan))
    }

    /// [`Self::execute_batch`] writing into a caller-owned result vector,
    /// reusing its `Simulation` buffers when already correctly sized. A
    /// warm call through the lane backend — scratch bound, `outs` from a
    /// previous same-length call — performs zero heap allocation for the
    /// whole-group entries (asserted by the counting-allocator test).
    ///
    /// # Errors
    ///
    /// As [`Self::execute_batch`]; on error `outs` may be partially
    /// overwritten and must not be read.
    pub fn execute_batch_into(
        &self,
        model: &RobotModel,
        scratch: &mut SimScratch,
        inputs: &[(Vec<f64>, Vec<f64>, Vec<f64>)],
        outs: &mut Vec<Simulation>,
    ) -> Result<u64, SimError> {
        if inputs.is_empty() {
            return Err(SimError::EmptyBatch);
        }
        if outs.len() != inputs.len() {
            outs.resize_with(inputs.len(), || Simulation {
                tau: Vec::new(),
                dqdd_dq: DMat::zeros(0, 0),
                dqdd_dqd: DMat::zeros(0, 0),
                stats: SimStats::default(),
            });
        }
        match self.backend {
            BackendKind::Scalar => {
                crate::exec::Scalar::execute_gradient_batch(self, model, scratch, inputs, outs)?
            }
            BackendKind::Lanes => {
                crate::exec::Lanes::execute_gradient_batch(self, model, scratch, inputs, outs)?
            }
        }
        Ok(self.batched_makespan(inputs.len()))
    }

    /// Runs a batch of inverse-dynamics evaluations (`τ = RNEA(q, q̇, q̈)`
    /// per entry) through the program's [`Self::backend`], returning the
    /// per-entry torques plus the memoized replicated-batch makespan.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyBatch`] for an empty slice, or the first
    /// failing step's error (no partial results).
    pub fn execute_inverse_dynamics_batch(
        &self,
        model: &RobotModel,
        scratch: &mut SimScratch,
        inputs: &[(Vec<f64>, Vec<f64>, Vec<f64>)],
    ) -> Result<(Vec<Vec<f64>>, u64), SimError> {
        if inputs.is_empty() {
            return Err(SimError::EmptyBatch);
        }
        let taus = match self.backend {
            BackendKind::Scalar => {
                crate::exec::Scalar::execute_inverse_dynamics_batch(self, model, scratch, inputs)?
            }
            BackendKind::Lanes => {
                crate::exec::Lanes::execute_inverse_dynamics_batch(self, model, scratch, inputs)?
            }
        };
        Ok((taus, self.batched_makespan(inputs.len())))
    }

    /// The traversal makespan of `steps` replicated evaluations, from the
    /// real list scheduler — computed once per `(program, steps)` and
    /// memoized (`sim.batch_schedule.{hit,miss}`).
    pub fn batched_makespan(&self, steps: usize) -> u64 {
        let mut memo = self.makespans.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&makespan) = memo.get(&steps) {
            self.batch_hit.add(1);
            return makespan;
        }
        self.batch_miss.add(1);
        let replicated = TaskGraph::replicate(&self.graph, steps);
        let cfg =
            roboshape_taskgraph::SchedulerConfig::with_pes(self.knobs.pe_fwd, self.knobs.pe_bwd);
        let schedule = roboshape_taskgraph::schedule(&replicated, &cfg);
        debug_assert!(schedule.validate(&replicated).is_ok());
        let makespan = schedule.makespan();
        memo.insert(steps, makespan);
        makespan
    }

    /// Runs one inverse-dynamics evaluation (`τ = RNEA(q, q̇, q̈)`).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] exactly as
    /// [`crate::try_simulate_inverse_dynamics`] does.
    pub fn execute_inverse_dynamics(
        &self,
        model: &RobotModel,
        scratch: &mut SimScratch,
        q: &[f64],
        qd: &[f64],
        qdd: &[f64],
    ) -> Result<(Vec<f64>, SimStats), SimError> {
        if self.kernel != KernelKind::InverseDynamics {
            return Err(SimError::KernelMismatch {
                expected: KernelKind::InverseDynamics,
                got: self.kernel,
            });
        }
        self.check_topology(model)?;
        let n = self.n;
        check_input("q", q, n)?;
        check_input("qd", qd, n)?;
        check_input("qdd", qdd, n)?;
        scratch.prepare(self);
        self.run_traversals(model, scratch, q, qd, qdd);
        self.record_eval();
        self.exec_scalar.add(1);
        Ok((scratch.cache.0.tau.clone(), self.stats))
    }

    /// Runs one forward-kinematics evaluation (base→link poses).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] exactly as
    /// [`crate::try_simulate_kinematics`] does.
    pub fn execute_kinematics(
        &self,
        model: &RobotModel,
        scratch: &mut SimScratch,
        q: &[f64],
    ) -> Result<(Vec<Xform>, SimStats), SimError> {
        if self.kernel != KernelKind::ForwardKinematics {
            return Err(SimError::KernelMismatch {
                expected: KernelKind::ForwardKinematics,
                got: self.kernel,
            });
        }
        self.check_topology(model)?;
        check_input("q", q, self.n)?;
        scratch.prepare(self);
        for op in &self.ops {
            let Op::FkStep { link, parent } = *op else {
                unreachable!("forward-kinematics programs contain only FkStep ops");
            };
            let l = link as usize;
            let xi = model.joint(l).child_xform(q[l]);
            scratch.poses[l] = if parent >= 0 {
                xi.compose(&scratch.poses[parent as usize])
            } else {
                xi
            };
        }
        self.record_eval();
        self.exec_scalar.add(1);
        Ok((scratch.poses.clone(), self.stats))
    }
}

/// Key of the process-wide program cache: everything that determines a
/// *generated* design's program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ProgramKey {
    parents: Vec<Option<usize>>,
    knobs: AcceleratorKnobs,
    kernel: KernelKind,
    /// Backends get distinct cache entries (and thus distinct program
    /// ids, so scratch arenas rebind when switching backends).
    backend: BackendKind,
}

impl ProgramKey {
    fn of(design: &AcceleratorDesign, backend: BackendKind) -> ProgramKey {
        ProgramKey {
            parents: design.topology().parents().to_vec(),
            knobs: *design.knobs(),
            kernel: design.kernel(),
            backend,
        }
    }
}

fn program_cache() -> &'static RwLock<HashMap<ProgramKey, Arc<CompiledProgram>>> {
    static CACHE: OnceLock<RwLock<HashMap<ProgramKey, Arc<CompiledProgram>>>> = OnceLock::new();
    CACHE.get_or_init(|| {
        // Pre-register the compile/scratch/batch counter family so the
        // metrics snapshot (and the experiments summary) lists them even
        // before the first cache interaction of each kind.
        let m = obs::metrics();
        for name in [
            "sim.compile.hit",
            "sim.compile.miss",
            "sim.scratch.reuse",
            "sim.batch_schedule.hit",
            "sim.batch_schedule.miss",
            "sim.exec.scalar.evals",
            "sim.exec.lanes.evals",
        ] {
            let _ = m.counter(name);
        }
        RwLock::new(HashMap::new())
    })
}

fn compile_counters() -> &'static (Arc<Counter>, Arc<Counter>) {
    static COUNTERS: OnceLock<(Arc<Counter>, Arc<Counter>)> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let m = obs::metrics();
        (m.counter("sim.compile.hit"), m.counter("sim.compile.miss"))
    })
}

/// The process-wide compiled program for `design`, compiling on first use
/// (`sim.compile.{hit,miss}`). Structural validation guards the cache: a
/// `from_parts` design whose schedule differs from the cached program's
/// is recompiled (uncached) rather than served a wrong program.
///
/// Equivalent to [`shared_program_for`] with [`BackendKind::Scalar`].
pub fn shared_program(design: &AcceleratorDesign) -> Arc<CompiledProgram> {
    shared_program_for(design, BackendKind::Scalar)
}

/// The process-wide compiled program for `(design, backend)`. Each
/// backend gets its own cache entry — and therefore its own program id —
/// so scratch arenas bound to one backend's program never serve
/// another's.
pub fn shared_program_for(
    design: &AcceleratorDesign,
    backend: BackendKind,
) -> Arc<CompiledProgram> {
    let cache = program_cache();
    let (hit, miss) = compile_counters();
    let key = ProgramKey::of(design, backend);
    if let Some(found) = cache.read().unwrap_or_else(|e| e.into_inner()).get(&key) {
        if found.matches(design) {
            hit.add(1);
            return Arc::clone(found);
        }
    }
    miss.add(1);
    let program = Arc::new(CompiledProgram::compile_for(design, backend));
    let mut map = cache.write().unwrap_or_else(|e| e.into_inner());
    match map.entry(key) {
        std::collections::hash_map::Entry::Occupied(e) => {
            if e.get().matches(design) {
                // Lost a benign race: share the already-cached program.
                Arc::clone(e.get())
            } else {
                // Structural mismatch (custom `from_parts` schedule):
                // serve the fresh program without poisoning the cache.
                program
            }
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(Arc::clone(&program));
            program
        }
    }
}
