//! Fuzz-style robustness tests: malformed robot descriptions must produce
//! errors, never panics — a robot description file is untrusted input to
//! the framework.

use proptest::prelude::*;
use roboshape_urdf::parse_urdf;

const VALID: &str = r#"
<robot name="fuzz_base">
  <link name="base"/>
  <link name="a">
    <inertial><origin xyz="0 0 -0.2"/><mass value="1.5"/>
      <inertia ixx="0.01" iyy="0.01" izz="0.002"/></inertial>
  </link>
  <link name="b">
    <inertial><origin xyz="0 0 -0.1"/><mass value="0.8"/>
      <inertia ixx="0.005" iyy="0.005" izz="0.001"/></inertial>
  </link>
  <joint name="j1" type="revolute">
    <parent link="base"/><child link="a"/><axis xyz="0 1 0"/>
  </joint>
  <joint name="j2" type="revolute">
    <parent link="a"/><child link="b"/>
    <origin xyz="0 0 -0.4" rpy="0 0.1 0"/><axis xyz="0 1 0"/>
  </joint>
</robot>"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary text never panics the parser.
    #[test]
    fn arbitrary_text_never_panics(input in ".{0,400}") {
        let _ = parse_urdf(&input);
    }

    /// Arbitrary bytes shaped like XML never panic the parser.
    #[test]
    fn xmlish_soup_never_panics(parts in proptest::collection::vec("[<>/=\"a-z0-9 ]{0,20}", 0..24)) {
        let doc = parts.concat();
        let _ = parse_urdf(&doc);
    }

    /// Deleting a random slice of a valid document never panics (and, when
    /// it still parses, yields a structurally valid model).
    #[test]
    fn truncation_mutations_never_panic(start in 0usize..500, len in 0usize..200) {
        let bytes = VALID.as_bytes();
        let s = start.min(bytes.len());
        let e = (start + len).min(bytes.len());
        let mut mutated = Vec::new();
        mutated.extend_from_slice(&bytes[..s]);
        mutated.extend_from_slice(&bytes[e..]);
        let text = String::from_utf8_lossy(&mutated).into_owned();
        if let Ok(model) = parse_urdf(&text) {
            // Any surviving parse must be internally consistent.
            prop_assert!(model.num_links() >= 1);
            for i in 0..model.num_links() {
                if let Some(p) = model.topology().parent(i) {
                    prop_assert!(p < i);
                }
            }
        }
    }

    /// Byte substitutions never panic.
    #[test]
    fn substitution_mutations_never_panic(pos in 0usize..500, byte in 0u8..128) {
        let mut bytes = VALID.as_bytes().to_vec();
        if pos < bytes.len() {
            bytes[pos] = byte;
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_urdf(&text);
    }

    /// Duplicating a random slice never panics.
    #[test]
    fn duplication_mutations_never_panic(start in 0usize..500, len in 1usize..80) {
        let bytes = VALID.as_bytes();
        let s = start.min(bytes.len());
        let e = (start + len).min(bytes.len());
        let mut mutated = Vec::new();
        mutated.extend_from_slice(&bytes[..e]);
        mutated.extend_from_slice(&bytes[s..e]);
        mutated.extend_from_slice(&bytes[e..]);
        let text = String::from_utf8_lossy(&mutated).into_owned();
        let _ = parse_urdf(&text);
    }
}

#[test]
fn the_seed_document_is_valid() {
    let model = parse_urdf(VALID).expect("seed must parse");
    assert_eq!(model.num_links(), 2);
}
