//! Pluggable sources of dynamics gradients.
//!
//! Both downstream consumers in this repository — the iLQR optimizer and
//! the whole-body EKF — need `∂q̈/∂q`, `∂q̈/∂q̇` at a state. This trait lets
//! them run interchangeably on the reference analytical library or on the
//! cycle-level simulation of a generated accelerator, which is precisely
//! the paper's deployment claim: the accelerator is a drop-in gradient
//! engine for motion-control stacks.

use crate::simulate;
use roboshape_arch::AcceleratorDesign;
use roboshape_dynamics::Dynamics;
use roboshape_linalg::DMat;
use roboshape_urdf::RobotModel;

/// Supplies `(∂q̈/∂q, ∂q̈/∂q̇)` at `(q, q̇, τ)`.
pub trait GradientProvider {
    /// Evaluates the gradients.
    fn gradients(&self, robot: &RobotModel, q: &[f64], qd: &[f64], tau: &[f64]) -> (DMat, DMat);
}

/// The reference analytical gradients (paper Alg. 1 on the CPU).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceGradients;

impl GradientProvider for ReferenceGradients {
    fn gradients(&self, robot: &RobotModel, q: &[f64], qd: &[f64], tau: &[f64]) -> (DMat, DMat) {
        let g = Dynamics::new(robot).fd_derivatives(q, qd, tau);
        (g.dqdd_dq, g.dqdd_dqd)
    }
}

/// Gradients computed by the cycle-level simulation of a generated
/// accelerator design.
#[derive(Debug, Clone)]
pub struct AcceleratorGradients<'d> {
    design: &'d AcceleratorDesign,
}

impl<'d> AcceleratorGradients<'d> {
    /// Wraps a generated dynamics-gradient design.
    pub fn new(design: &'d AcceleratorDesign) -> AcceleratorGradients<'d> {
        AcceleratorGradients { design }
    }

    /// The wrapped design.
    pub fn design(&self) -> &'d AcceleratorDesign {
        self.design
    }
}

impl GradientProvider for AcceleratorGradients<'_> {
    fn gradients(&self, robot: &RobotModel, q: &[f64], qd: &[f64], tau: &[f64]) -> (DMat, DMat) {
        let sim = simulate(robot, self.design, q, qd, tau);
        (sim.dqdd_dq, sim.dqdd_dqd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboshape_arch::AcceleratorKnobs;
    use roboshape_robots::{zoo, Zoo};

    #[test]
    fn providers_agree() {
        let robot = zoo(Zoo::Hyq);
        let n = robot.num_links();
        let design = AcceleratorDesign::generate(robot.topology(), AcceleratorKnobs::new(3, 3, 3));
        let q = vec![0.2; n];
        let qd = vec![0.1; n];
        let tau = vec![0.4; n];
        let (rq, rqd) = ReferenceGradients.gradients(&robot, &q, &qd, &tau);
        let accel = AcceleratorGradients::new(&design);
        let (aq, aqd) = accel.gradients(&robot, &q, &qd, &tau);
        assert!(rq.max_abs_diff(&aq).unwrap() < 1e-9);
        assert!(rqd.max_abs_diff(&aqd).unwrap() < 1e-9);
        assert!(std::ptr::eq(accel.design(), &design));
    }
}
