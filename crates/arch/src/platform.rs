//! Target FPGA platforms (paper Sec. 5.5).

use crate::Resources;

/// An FPGA platform's resource envelope.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Platform {
    /// Board/device name.
    pub name: &'static str,
    /// Total LUTs.
    pub luts: f64,
    /// Total DSP blocks.
    pub dsps: f64,
}

impl Platform {
    /// Xilinx VCU118 (XCVU9P): 1 182 000 LUTs, 6 840 DSPs — the paper's
    /// implementation platform.
    pub fn vcu118() -> Platform {
        Platform {
            name: "VCU118 (XCVU9P)",
            luts: 1_182_000.0,
            dsps: 6_840.0,
        }
    }

    /// Xilinx VC707: 303 600 LUTs, 2 800 DSPs — the smaller platform of
    /// the Fig. 16 study.
    pub fn vc707() -> Platform {
        Platform {
            name: "VC707",
            luts: 303_600.0,
            dsps: 2_800.0,
        }
    }

    /// Both study platforms.
    pub fn all() -> [Platform; 2] {
        [Platform::vcu118(), Platform::vc707()]
    }

    /// Whether `r` fits within `threshold` (fraction, e.g. 0.8) of this
    /// platform's resources.
    pub fn fits(&self, r: &Resources, threshold: f64) -> bool {
        r.luts <= self.luts * threshold && r.dsps <= self.dsps * threshold
    }

    /// Utilization fractions `(lut_share, dsp_share)` of `r`.
    pub fn utilization(&self, r: &Resources) -> (f64, f64) {
        (r.luts / self.luts, r.dsps / self.dsps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelopes_match_paper() {
        let vcu = Platform::vcu118();
        assert_eq!(vcu.luts, 1_182_000.0);
        assert_eq!(vcu.dsps, 6_840.0);
        let vc = Platform::vc707();
        assert_eq!(vc.luts, 303_600.0);
        assert_eq!(vc.dsps, 2_800.0);
        assert_eq!(Platform::all().len(), 2);
    }

    #[test]
    fn fits_respects_threshold() {
        let vcu = Platform::vcu118();
        let r = Resources::new(1_000_000.0, 5_000.0);
        assert!(vcu.fits(&r, 1.0));
        assert!(!vcu.fits(&r, 0.8)); // 1.0M > 0.8 × 1.182M
        let small = Resources::new(100_000.0, 100.0);
        assert!(vcu.fits(&small, 0.8));
    }

    #[test]
    fn utilization_fractions() {
        let vcu = Platform::vcu118();
        let (l, d) = vcu.utilization(&Resources::new(591_000.0, 3_420.0));
        assert!((l - 0.5).abs() < 1e-12);
        assert!((d - 0.5).abs() < 1e-12);
    }
}
