//! Offline drop-in subset of the
//! [`parking_lot`](https://crates.io/crates/parking_lot) 0.12 API,
//! backed by `std::sync` primitives.
//!
//! The build environment has no registry access, so this vendored stub
//! supplies the `parking_lot` surface the workspace uses: [`Mutex`] and
//! [`RwLock`] with non-poisoning, non-`Result` lock methods. Poisoned
//! std locks are recovered via [`PoisonError::into_inner`], matching
//! parking_lot's semantics of never poisoning.

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's non-`Result` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-`Result` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
