//! Event-driven networking substrate for the serve tier.
//!
//! Two layers, both dependency-free:
//!
//! * [`poll`] — the readiness poller ([`poll::Poller`], [`poll::Waker`]):
//!   level-triggered `epoll` on Linux, `poll(2)` elsewhere.
//! * [`FrameConn`] — a non-blocking connection speaking the
//!   length-prefixed, checksummed framing of [`crate::proto`]. It owns
//!   the partial-frame reassembly buffer on the read side and a pending
//!   byte queue on the write side, so an event loop can service
//!   thousands of connections from one thread: readable events feed
//!   [`FrameConn::read_frames`], writable events drain
//!   [`FrameConn::flush`], and neither ever blocks.
//!
//! The single-engine [`crate::Server`] and the cluster
//! [`crate::Router`] both build their loops from these pieces; the
//! protocol state machines (ordered replies, pending-request maps,
//! failover) stay in their owners.

pub mod poll;

use crate::proto::{checksum, HEADER_LEN, MAX_FRAME};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};

/// Cap on bytes consumed from one connection per readable event, so a
/// firehose sender cannot starve its neighbours on the same loop
/// (level-triggered polling re-delivers the event while data remains).
const READ_BUDGET: usize = 256 * 1024;

/// Framing violations a [`FrameConn`] can detect while reassembling.
/// Both desynchronise the stream, so the connection must close after
/// any typed reply; the variants let the owner say *why* first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameViolation {
    /// The header declared a body longer than [`MAX_FRAME`].
    TooLarge(u64),
    /// A fully-received body failed its FNV-1a checksum.
    BadChecksum,
}

/// What a read pass produced (besides the delivered frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Connection still healthy; all currently-available bytes consumed
    /// or the per-event budget was reached.
    Open,
    /// Peer closed or the socket errored; no more frames will arrive.
    Closed,
    /// The byte stream violated framing; see [`FrameViolation`].
    Violation(FrameViolation),
}

/// What a flush pass produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushOutcome {
    /// The out-queue is empty; write interest can be dropped.
    Drained,
    /// The socket refused more bytes; keep write interest registered.
    Blocked,
    /// The peer is gone; the owner should drop the connection.
    Closed,
}

/// A non-blocking framed connection (see module docs).
pub struct FrameConn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    out: VecDeque<u8>,
}

impl FrameConn {
    /// Wraps a connected stream, switching it to non-blocking mode with
    /// Nagle disabled.
    ///
    /// # Errors
    ///
    /// Propagates socket-option failures.
    pub fn new(stream: TcpStream) -> io::Result<FrameConn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(FrameConn {
            stream,
            inbuf: Vec::new(),
            out: VecDeque::new(),
        })
    }

    /// The fd to register with a [`poll::Poller`].
    pub fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Reads whatever the socket has (bounded by an internal budget),
    /// reassembles frames, and hands each verified body to `sink`.
    /// Returns how the pass ended; on a violation the owner sends its
    /// typed goodbye and closes (the stream position is unrecoverable).
    pub fn read_frames(&mut self, mut sink: impl FnMut(Vec<u8>)) -> ReadOutcome {
        let mut taken = 0usize;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            // Deliver every complete frame already buffered.
            loop {
                if self.inbuf.len() < HEADER_LEN {
                    break;
                }
                let len = u32::from_le_bytes([
                    self.inbuf[0],
                    self.inbuf[1],
                    self.inbuf[2],
                    self.inbuf[3],
                ]) as usize;
                let expected = u32::from_le_bytes([
                    self.inbuf[4],
                    self.inbuf[5],
                    self.inbuf[6],
                    self.inbuf[7],
                ]);
                if len > MAX_FRAME {
                    return ReadOutcome::Violation(FrameViolation::TooLarge(len as u64));
                }
                if self.inbuf.len() < HEADER_LEN + len {
                    break;
                }
                let body: Vec<u8> = self.inbuf[HEADER_LEN..HEADER_LEN + len].to_vec();
                self.inbuf.drain(..HEADER_LEN + len);
                if checksum(&body) != expected {
                    return ReadOutcome::Violation(FrameViolation::BadChecksum);
                }
                sink(body);
            }
            if taken >= READ_BUDGET {
                return ReadOutcome::Open;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Closed,
                Ok(n) => {
                    taken += n;
                    self.inbuf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Open,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Closed,
            }
        }
    }

    /// Queues already-framed wire bytes (header + body) for sending.
    /// Frames from many completions coalesce here and go out in as few
    /// `write` syscalls as the socket allows.
    pub fn queue_wire(&mut self, wire: &[u8]) {
        self.out.extend(wire);
    }

    /// Whether bytes are waiting to be written (the owner keeps write
    /// interest registered while true).
    pub fn wants_write(&self) -> bool {
        !self.out.is_empty()
    }

    /// Writes as much of the out-queue as the socket accepts.
    pub fn flush(&mut self) -> FlushOutcome {
        while !self.out.is_empty() {
            let (front, _) = self.out.as_slices();
            match self.stream.write(front) {
                Ok(0) => return FlushOutcome::Closed,
                Ok(n) => {
                    self.out.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return FlushOutcome::Blocked,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return FlushOutcome::Closed,
            }
        }
        FlushOutcome::Drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::frame_bytes;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, FrameConn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, FrameConn::new(server).unwrap())
    }

    #[test]
    fn reassembles_partial_frames_across_reads() {
        let (mut client, mut conn) = pair();
        let wire = frame_bytes(b"hello frames");
        // Dribble the frame one byte at a time — a slow sender must
        // never desync the reader or produce a partial body.
        let mut got: Vec<Vec<u8>> = Vec::new();
        for byte in &wire {
            client.write_all(std::slice::from_ref(byte)).unwrap();
            client.flush().unwrap();
            // Give the kernel a moment to move the byte.
            std::thread::sleep(std::time::Duration::from_millis(1));
            match conn.read_frames(|body| got.push(body)) {
                ReadOutcome::Open => {}
                other => panic!("healthy dribble must stay open, got {other:?}"),
            }
        }
        assert_eq!(got, vec![b"hello frames".to_vec()]);
    }

    #[test]
    fn delivers_multiple_frames_from_one_read() {
        let (mut client, mut conn) = pair();
        let mut burst = Vec::new();
        for i in 0..5u8 {
            burst.extend_from_slice(&frame_bytes(&[i; 9]));
        }
        client.write_all(&burst).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let mut got = Vec::new();
        assert_eq!(conn.read_frames(|b| got.push(b)), ReadOutcome::Open);
        assert_eq!(got.len(), 5);
        assert_eq!(got[4], vec![4u8; 9]);
    }

    #[test]
    fn oversized_declared_frame_is_a_violation() {
        let (mut client, mut conn) = pair();
        let mut header = Vec::new();
        header.extend_from_slice(&u32::try_from(MAX_FRAME + 1).unwrap().to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        client.write_all(&header).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(
            conn.read_frames(|_| panic!("no frame should be delivered")),
            ReadOutcome::Violation(FrameViolation::TooLarge(MAX_FRAME as u64 + 1))
        );
    }

    #[test]
    fn corrupted_body_is_a_checksum_violation() {
        let (mut client, mut conn) = pair();
        let mut wire = frame_bytes(b"soon to be damaged");
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        client.write_all(&wire).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(
            conn.read_frames(|_| panic!("corrupt frame must not be delivered")),
            ReadOutcome::Violation(FrameViolation::BadChecksum)
        );
    }

    #[test]
    fn peer_close_reports_closed_after_final_frames() {
        let (mut client, mut conn) = pair();
        client.write_all(&frame_bytes(b"last words")).unwrap();
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(10));
        let mut got = Vec::new();
        assert_eq!(conn.read_frames(|b| got.push(b)), ReadOutcome::Closed);
        assert_eq!(got, vec![b"last words".to_vec()]);
    }

    #[test]
    fn flush_blocks_against_a_slow_reader_then_drains() {
        let (mut client, mut conn) = pair();
        // Queue far more than the socket buffers will take.
        let wire = frame_bytes(&vec![7u8; 64 * 1024]);
        for _ in 0..64 {
            conn.queue_wire(&wire);
        }
        let mut saw_blocked = false;
        for _ in 0..10_000 {
            match conn.flush() {
                FlushOutcome::Drained => break,
                FlushOutcome::Blocked => {
                    saw_blocked = true;
                    // Slow reader catches up a little.
                    let mut sink = [0u8; 32 * 1024];
                    client.read_exact(&mut sink).unwrap();
                }
                FlushOutcome::Closed => panic!("peer is alive"),
            }
        }
        assert!(saw_blocked, "64 queued 64KiB frames must backpressure");
        assert_eq!(conn.flush(), FlushOutcome::Drained);
        assert!(!conn.wants_write());
    }
}
