//! A minimal XML parser, sufficient for URDF files.
//!
//! Supports elements, attributes (single- or double-quoted), self-closing
//! tags, comments, processing instructions / XML declarations, character
//! data (collected but unused by URDF), and the five predefined entities.
//! It does **not** support DTDs, namespaces beyond treating `a:b` as a
//! plain name, or CDATA sections — URDF files in the wild use none of
//! these.

use core::fmt;

/// A parsed XML element.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlElement {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlElement>,
    /// Concatenated character data directly inside this element.
    pub text: String,
}

impl XmlElement {
    /// The value of attribute `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first child element with tag `name`.
    pub fn child(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All child elements with tag `name`.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.children.iter().filter(move |c| c.name == name)
    }
}

/// Error produced by the XML parser, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xml parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XmlError {}

/// Parses a document and returns its root element.
///
/// # Errors
///
/// Returns [`XmlError`] on malformed input (unclosed tags, mismatched
/// closing tags, bad attribute syntax, missing root, trailing garbage).
///
/// # Examples
///
/// ```
/// let root = roboshape_urdf::xml::parse("<a x=\"1\"><b/></a>")?;
/// assert_eq!(root.name, "a");
/// assert_eq!(root.attr("x"), Some("1"));
/// assert_eq!(root.children.len(), 1);
/// # Ok::<(), roboshape_urdf::xml::XmlError>(())
/// ```
pub fn parse(input: &str) -> Result<XmlElement, XmlError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if p.pos < p.input.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> XmlError {
        XmlError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, pat: &str) -> Result<(), XmlError> {
        match self.input[self.pos..]
            .windows(pat.len())
            .position(|w| w == pat.as_bytes())
        {
            Some(i) => {
                self.pos += i + pat.len();
                Ok(())
            }
            None => Err(self.err(&format!("expected `{pat}`"))),
        }
    }

    /// Skips whitespace, comments, and processing instructions.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.pos += 4;
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.pos += 2;
                self.skip_until("?>")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_misc()?;
        if self.starts_with("<!DOCTYPE") {
            self.skip_until(">")?;
            self.skip_misc()?;
        }
        Ok(())
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.pos += 1;
                return Ok(unescape(&raw));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated attribute value"))
    }

    fn parse_element(&mut self) -> Result<XmlElement, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected `<`"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut el = XmlElement {
            name,
            ..Default::default()
        };
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected `>` after `/`"));
                    }
                    self.pos += 1;
                    return Ok(el);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected `=` in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    el.attrs.push((key, value));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        // Content until the matching close tag.
        loop {
            let text_start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'<' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > text_start {
                let chunk = String::from_utf8_lossy(&self.input[text_start..self.pos]);
                let trimmed = chunk.trim();
                if !trimmed.is_empty() {
                    if !el.text.is_empty() {
                        el.text.push(' ');
                    }
                    el.text.push_str(&unescape(trimmed));
                }
            }
            if self.peek().is_none() {
                return Err(self.err("unexpected end of input in element content"));
            }
            if self.starts_with("<!--") {
                self.pos += 4;
                self.skip_until("-->")?;
            } else if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != el.name {
                    return Err(self.err(&format!(
                        "mismatched closing tag `{close}` (expected `{}`)",
                        el.name
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected `>` in closing tag"));
                }
                self.pos += 1;
                return Ok(el);
            } else if self.starts_with("<?") {
                self.pos += 2;
                self.skip_until("?>")?;
            } else {
                el.children.push(self.parse_element()?);
            }
        }
    }
}

fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_document() {
        let root = parse("<robot name=\"x\"><link name=\"a\"/><link name=\"b\"/></robot>").unwrap();
        assert_eq!(root.name, "robot");
        assert_eq!(root.attr("name"), Some("x"));
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children_named("link").count(), 2);
        assert!(root.child("joint").is_none());
    }

    #[test]
    fn xml_declaration_and_comments() {
        let doc = "<?xml version=\"1.0\"?>\n<!-- a robot -->\n<r><!-- inner --><c/></r>\n";
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "r");
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn nested_elements_and_text() {
        let root = parse("<a>hello <b>world</b> tail</a>").unwrap();
        assert_eq!(root.text, "hello tail");
        assert_eq!(root.child("b").unwrap().text, "world");
    }

    #[test]
    fn single_quoted_attributes_and_entities() {
        let root = parse("<a x='1 &amp; 2'/>").unwrap();
        assert_eq!(root.attr("x"), Some("1 & 2"));
    }

    #[test]
    fn doctype_is_skipped() {
        let root = parse("<!DOCTYPE robot><r/>").unwrap();
        assert_eq!(root.name, "r");
    }

    #[test]
    fn mismatched_close_tag_fails() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn unterminated_fails() {
        assert!(parse("<a><b/>").is_err());
        assert!(parse("<a x=\"1>").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn trailing_garbage_fails() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn error_display_contains_offset() {
        let err = parse("<a attr></a>").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn attribute_whitespace_tolerance() {
        let root = parse("<a x = \"1\"   y='2' />").unwrap();
        assert_eq!(root.attr("x"), Some("1"));
        assert_eq!(root.attr("y"), Some("2"));
    }
}
