//! Nonlinear MPC coprocessor: batched dynamics gradients over a trajectory.
//!
//! Optimal motion control evaluates the dynamics gradients at every time
//! step of a trajectory. This example deploys the generated accelerator
//! as a PCIe coprocessor (the paper's Fig. 10 scenario), runs an actual
//! multi-step gradient workload through the cycle-level simulator, and
//! analyzes where the time goes — including the sparse-I/O optimization
//! that skips the mass matrix's structural zeros.
//!
//! Run with: `cargo run --release --example coprocessor_batch`

use roboshape::{Dynamics, IoModel, SparsityPattern};
use roboshape_suite::prelude::*;

fn main() {
    // The paper's conservative per-robot deployments (Sec. 5.1: chosen to
    // keep place-and-route tractable) — Baxter's small PE count is what
    // makes it I/O-bound below.
    let deployments = [
        (Zoo::Iiwa, Constraints::new(7, 7, 7)),
        (Zoo::Hyq, Constraints::new(3, 3, 6)),
        (Zoo::Baxter, Constraints::new(4, 4, 4)),
    ];
    for (which, constraints) in deployments {
        let robot = zoo(which);
        let fw = Framework::from_model(robot.clone());
        let accel = fw.generate(constraints);
        let n = robot.num_links();
        println!("== {} ({} links) ==", robot.name(), n);

        // A short trajectory: integrate forward dynamics explicitly and
        // evaluate gradients with the simulated accelerator at each step.
        let dynamics = Dynamics::new(&robot);
        let steps = 4;
        let dt = 0.01;
        let mut q = vec![0.2; n];
        let mut qd = vec![0.0; n];
        let tau = vec![0.4; n];
        let mut worst = 0.0f64;
        for _ in 0..steps {
            let sim = accel.simulate(&q, &qd, &tau);
            worst = worst.max(sim.verify(&robot, &q, &qd, &tau));
            let qdd = dynamics.forward_dynamics(&q, &qd, &tau);
            for i in 0..n {
                qd[i] += dt * qdd[i];
                q[i] += dt * qd[i];
            }
        }
        println!("  {steps}-step trajectory gradients verified (max error {worst:.2e})");
        assert!(worst < 1e-8);

        // Latency decomposition (paper Fig. 10).
        let rt = accel.roundtrip(steps);
        println!(
            "  compute {:.1} us + I/O {:.1} us + stalls {:.1} us = roundtrip {:.1} us",
            rt.compute.fpga_us,
            rt.io_us,
            rt.stall_us,
            rt.roundtrip_us()
        );
        println!(
            "  vs CPU {:.2}x, vs GPU {:.2}x{}",
            rt.speedup_vs_cpu(),
            rt.speedup_vs_gpu(),
            if rt.speedup_vs_cpu() < 1.0 {
                "  (I/O-bound: slower than CPU)"
            } else {
                ""
            }
        );

        // Sparse I/O (paper Sec. 5.2): skip structural zeros on the link.
        let io = IoModel::new(SparsityPattern::mass_matrix(robot.topology()));
        println!(
            "  matrices are {:.0}% of I/O; sparsity compression gives {:.2}x smaller packets",
            io.matrix_fraction() * 100.0,
            io.reduction()
        );
        println!(
            "  roundtrip with sparse I/O: {:.1} us ({:.2}x vs CPU)\n",
            rt.roundtrip_sparse_us(),
            rt.compute.cpu_us / rt.roundtrip_sparse_us()
        );
    }
}
