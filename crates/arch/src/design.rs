//! A fully-elaborated accelerator design point.

use crate::{AcceleratorKnobs, DseModel, FullDesignModel, Resources, StorageReport};
use roboshape_blocksparse::{BlockMatmulPlan, MatmulLatencyModel, SparsityPattern};
use roboshape_taskgraph::{schedule, Schedule, SchedulerConfig, TaskGraph};
use roboshape_topology::Topology;

/// Which Table 1 kernel a design accelerates. The paper's evaluation
/// builds ∇FD accelerators; the same template lowers the other traversal
/// kernels (Sec. 4: "can flexibly implement accelerators for a broad
/// class of robotics computations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum KernelKind {
    /// Forward-dynamics gradients (paper Alg. 1) — traversals + blocked
    /// mass-matrix multiplication.
    #[default]
    DynamicsGradient,
    /// Plain inverse dynamics (RNEA, Alg. 2) — two traversals, no matrix
    /// stage.
    InverseDynamics,
    /// Forward kinematics — a single forward traversal.
    ForwardKinematics,
}

/// Synthesized-clock model: the paper's critical path runs through the
/// forward-pass input-marshalling logic, so the achievable period scales
/// with the forward schedule's length (Sec. 5.1 closes timing at 18 ns for
/// iiwa and HyQ and 22 ns for Baxter).
///
/// Model: the schedule-table depth per forward PE (total forward-stage
/// tasks ÷ `PEs_fwd`) sets the marshalling mux depth; 18 ns up to 12
/// entries, then +⅔ ns per additional entry — calibrated on the paper's
/// three implementations (iiwa 5 entries / 18 ns, HyQ 12 / 18 ns,
/// Baxter 18 / 22 ns).
pub fn clock_period_ns(fwd_schedule_slots: usize) -> f64 {
    18.0 + (2.0 / 3.0) * fwd_schedule_slots.saturating_sub(12) as f64
}

/// One complete generated accelerator: topology + knobs elaborated into
/// schedules, a blocked mat-mul plan, storage sizing, resource estimates
/// and latency — everything Fig. 7 outputs short of the Verilog text
/// (emitted by `roboshape-codegen`) and the cycle-accurate execution
/// (`roboshape-sim`).
///
/// # Examples
///
/// ```
/// use roboshape_arch::{AcceleratorDesign, AcceleratorKnobs};
/// use roboshape_topology::Topology;
///
/// let topo = Topology::chain(7); // iiwa
/// let design = AcceleratorDesign::generate(&topo, AcceleratorKnobs::symmetric(7, 7));
/// assert!(design.compute_cycles() > 0);
/// assert!(design.full_resources().luts > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct AcceleratorDesign {
    topo: Topology,
    knobs: AcceleratorKnobs,
    kernel: KernelKind,
    graph: TaskGraph,
    schedule: Schedule,
    schedule_no_pipeline: Schedule,
    matmul: Option<BlockMatmulPlan>,
    matmul_model: MatmulLatencyModel,
    storage: StorageReport,
}

impl AcceleratorDesign {
    /// Elaborates a design point for `topo` at the given knob setting.
    ///
    /// # Panics
    ///
    /// Panics if any knob is zero (enforced by [`AcceleratorKnobs`]).
    pub fn generate(topo: &Topology, knobs: AcceleratorKnobs) -> AcceleratorDesign {
        AcceleratorDesign::generate_for_kernel(topo, knobs, KernelKind::DynamicsGradient)
    }

    /// Elaborates a design point for any supported traversal kernel
    /// (paper Table 1): the task graph, schedules and storage follow the
    /// kernel; the blocked mass-matrix stage exists only for the
    /// dynamics-gradient kernel.
    ///
    /// # Panics
    ///
    /// Panics if any knob is zero (enforced by [`AcceleratorKnobs`]).
    pub fn generate_for_kernel(
        topo: &Topology,
        knobs: AcceleratorKnobs,
        kernel: KernelKind,
    ) -> AcceleratorDesign {
        let graph = match kernel {
            KernelKind::DynamicsGradient => TaskGraph::dynamics_gradient(topo),
            KernelKind::InverseDynamics => TaskGraph::inverse_dynamics(topo),
            KernelKind::ForwardKinematics => TaskGraph::forward_kinematics(topo),
        };
        let cfg = SchedulerConfig::with_pes(knobs.pe_fwd, knobs.pe_bwd);
        let sched = schedule(&graph, &cfg);
        let sched_np = schedule(&graph, &cfg.without_pipelining());
        let matmul = (kernel == KernelKind::DynamicsGradient).then(|| {
            // The plan's left operand is M⁻¹, whose pattern fills in
            // relative to M at mid-limb branches.
            let pattern = SparsityPattern::inverse_mass_matrix(topo);
            BlockMatmulPlan::new(
                &pattern,
                2 * topo.len(),
                knobs.block_size,
                knobs.matmul_units.resolve(topo.len()),
            )
        });
        AcceleratorDesign::from_parts(topo.clone(), knobs, kernel, graph, sched, sched_np, matmul)
    }

    /// Assembles a design from already-elaborated parts: the task graph,
    /// both schedules and (for the gradient kernel) the blocked mat-mul
    /// plan. This is the constructor the compilation pipeline uses to
    /// reuse cached artifacts; the parts must have been produced for this
    /// exact `(topo, knobs, kernel)` — mixing parts from different design
    /// points yields a design whose reports disagree with its schedules.
    /// The storage report is derived here (it is cheap relative to
    /// scheduling and depends on all the parts).
    pub fn from_parts(
        topo: Topology,
        knobs: AcceleratorKnobs,
        kernel: KernelKind,
        graph: TaskGraph,
        schedule: Schedule,
        schedule_no_pipeline: Schedule,
        matmul: Option<BlockMatmulPlan>,
    ) -> AcceleratorDesign {
        let storage = StorageReport::for_design(&topo, &knobs, &graph, &schedule);
        AcceleratorDesign {
            topo,
            knobs,
            kernel,
            graph,
            schedule,
            schedule_no_pipeline,
            matmul,
            matmul_model: MatmulLatencyModel::default(),
            storage,
        }
    }

    /// The kernel this design accelerates.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// The robot topology the design was generated for.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The knob setting.
    pub fn knobs(&self) -> &AcceleratorKnobs {
        &self.knobs
    }

    /// The traversal task graph.
    pub fn task_graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The pipelined traversal schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The stage-barrier (non-pipelined) schedule.
    pub fn schedule_without_pipelining(&self) -> &Schedule {
        &self.schedule_no_pipeline
    }

    /// The blocked mass-matrix multiplication plan (present only for the
    /// dynamics-gradient kernel).
    pub fn matmul_plan(&self) -> Option<&BlockMatmulPlan> {
        self.matmul.as_ref()
    }

    /// The storage sizing report (Fig. 8 structures).
    pub fn storage(&self) -> &StorageReport {
        &self.storage
    }

    /// Total compute cycles with cross-stage pipelining: traversal
    /// makespan followed by the blocked mat-mul (whose operands are only
    /// complete once the last gradient column retires).
    pub fn compute_cycles(&self) -> u64 {
        self.schedule.makespan() + self.matmul_cycles()
    }

    fn matmul_cycles(&self) -> u64 {
        self.matmul
            .as_ref()
            .map(|m| m.latency(&self.matmul_model))
            .unwrap_or(0)
    }

    /// Total compute cycles with stage barriers ("No Pipelining" in
    /// Fig. 9).
    pub fn compute_cycles_no_pipelining(&self) -> u64 {
        self.schedule_no_pipeline.makespan() + self.matmul_cycles()
    }

    /// The modelled clock period (ns) — see [`clock_period_ns`]. The slot
    /// count is the forward-PE schedule-table depth: total forward-stage
    /// tasks divided by `PEs_fwd`.
    pub fn clock_ns(&self) -> f64 {
        let fwd_tasks = self
            .graph
            .tasks()
            .iter()
            .filter(|t| t.kind.stage().is_forward())
            .count();
        clock_period_ns(fwd_tasks.div_ceil(self.knobs.pe_fwd))
    }

    /// Compute-only latency in microseconds (cycles × period), pipelined.
    pub fn compute_latency_us(&self) -> f64 {
        self.compute_cycles() as f64 * self.clock_ns() * 1e-3
    }

    /// Compute-only latency without pipelining, microseconds.
    pub fn compute_latency_no_pipelining_us(&self) -> f64 {
        self.compute_cycles_no_pipelining() as f64 * self.clock_ns() * 1e-3
    }

    /// Full-design resource estimate (Table 2 model).
    pub fn full_resources(&self) -> Resources {
        FullDesignModel.estimate(self.topo.len(), &self.knobs)
    }

    /// PE-level resource estimate (design-space model of Figs. 12–16).
    pub fn dse_resources(&self) -> Resources {
        DseModel.estimate(self.topo.len(), &self.knobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baxter_like() -> Topology {
        let mut parents = vec![None];
        for _ in 0..2 {
            parents.push(None);
            for _ in 1..7 {
                parents.push(Some(parents.len() - 1));
            }
        }
        Topology::new(parents).unwrap()
    }

    #[test]
    fn clock_model_matches_paper_points() {
        // iiwa (7 links, 7 PEs) and HyQ (12 links, 3 PEs) close at 18 ns;
        // Baxter (15 links, 4 PEs) at 22 ns.
        let iiwa =
            AcceleratorDesign::generate(&Topology::chain(7), AcceleratorKnobs::symmetric(7, 7));
        assert!(
            (iiwa.clock_ns() - 18.0).abs() < 0.01,
            "iiwa {}",
            iiwa.clock_ns()
        );

        let mut hyq_parents = Vec::new();
        for _ in 0..4 {
            hyq_parents.push(None);
            let b = hyq_parents.len() - 1;
            hyq_parents.push(Some(b));
            hyq_parents.push(Some(b + 1));
        }
        let hyq_topo = Topology::new(hyq_parents).unwrap();
        let hyq = AcceleratorDesign::generate(&hyq_topo, AcceleratorKnobs::symmetric(3, 6));
        assert!(
            (hyq.clock_ns() - 18.0).abs() < 0.01,
            "HyQ {}",
            hyq.clock_ns()
        );

        let baxter = AcceleratorDesign::generate(&baxter_like(), AcceleratorKnobs::symmetric(4, 4));
        assert!(
            (baxter.clock_ns() - 22.0).abs() < 1.01,
            "Baxter {}",
            baxter.clock_ns()
        );
    }

    #[test]
    fn pipelined_latency_is_never_worse() {
        for pes in [1, 2, 4, 7] {
            let d = AcceleratorDesign::generate(&baxter_like(), AcceleratorKnobs::new(pes, pes, 4));
            assert!(d.compute_cycles() <= d.compute_cycles_no_pipelining());
        }
    }

    #[test]
    fn schedules_are_valid() {
        let d = AcceleratorDesign::generate(&baxter_like(), AcceleratorKnobs::new(4, 4, 4));
        d.schedule().validate(d.task_graph()).unwrap();
        d.schedule_without_pipelining()
            .validate(d.task_graph())
            .unwrap();
    }

    #[test]
    fn latency_in_expected_units() {
        let d = AcceleratorDesign::generate(&Topology::chain(7), AcceleratorKnobs::symmetric(7, 7));
        let us = d.compute_latency_us();
        // cycles × ~18ns: must land in the microseconds regime.
        assert!(us > 0.5 && us < 500.0, "latency {us} µs");
    }
}
