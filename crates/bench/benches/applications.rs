//! Benchmarks of the application-layer crates built on the framework:
//! collision checking (Fig. 2's other bottleneck), trajectory
//! optimization (the motivating workload), and the host-side
//! topology-exploiting factorization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use roboshape::{Dynamics, TopologyCholesky};
use roboshape_bench::{fixture, implemented};
use roboshape_collision::{CollisionWorld, SphereDecomposition};
use roboshape_linalg::Vec3;
use roboshape_robots::{zoo, Zoo};
use roboshape_trajopt::{optimize, IlqrConfig, ReferenceGradients};
use std::hint::black_box;

fn bench_collision_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("collision_check");
    for which in implemented() {
        let f = fixture(which);
        let spheres = SphereDecomposition::from_model(&f.robot, 3);
        let world = CollisionWorld::new()
            .ignoring_links_within(2)
            .with_obstacle(Vec3::new(0.5, 0.5, -0.5), 0.2);
        g.bench_with_input(BenchmarkId::from_parameter(which.name()), &f, |b, f| {
            b.iter(|| world.check(&f.robot, &spheres, black_box(&f.q)))
        });
    }
    g.finish();
}

fn bench_collision_edge(c: &mut Criterion) {
    let f = fixture(Zoo::Iiwa);
    let spheres = SphereDecomposition::from_model(&f.robot, 3);
    let world = CollisionWorld::new().with_obstacle(Vec3::new(2.0, 0.0, 0.0), 0.2);
    let from = vec![0.0; 7];
    let to = vec![0.5; 7];
    c.bench_function("collision_edge_iiwa", |b| {
        b.iter(|| world.edge_is_free(&f.robot, &spheres, black_box(&from), black_box(&to), 8))
    });
}

fn bench_ilqr_iteration(c: &mut Criterion) {
    // One short solve (2 iterations, small horizon): the per-iteration cost
    // is dominated by the gradient evaluations the paper accelerates.
    let robot = zoo(Zoo::Iiwa);
    let n = robot.num_links();
    let cfg = IlqrConfig {
        horizon: 10,
        iters: 2,
        ..IlqrConfig::default()
    };
    let target = vec![0.2; n];
    let mut g = c.benchmark_group("ilqr_short_solve");
    g.sample_size(10);
    g.bench_function("iiwa", |b| {
        b.iter(|| {
            optimize(
                &robot,
                black_box(&vec![0.0; n]),
                &target,
                &cfg,
                &ReferenceGradients,
            )
        })
    });
    g.finish();
}

fn bench_topology_cholesky(c: &mut Criterion) {
    let mut g = c.benchmark_group("mass_matrix_solve");
    for which in implemented() {
        let f = fixture(which);
        let dyn_ = Dynamics::new(&f.robot);
        let m = dyn_.mass_matrix(&f.q);
        let topo = f.robot.topology().clone();
        let b_vec: Vec<f64> = (0..f.robot.num_links()).map(|i| i as f64 * 0.1).collect();
        g.bench_with_input(
            BenchmarkId::new("topology_ltl", which.name()),
            &(topo, m.clone(), b_vec.clone()),
            |bench, (topo, m, rhs)| {
                bench.iter(|| {
                    TopologyCholesky::new(topo, black_box(m))
                        .unwrap()
                        .solve(rhs)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("dense", which.name()),
            &(m, b_vec),
            |bench, (m, rhs)| {
                bench.iter(|| {
                    roboshape_linalg::Cholesky::new(black_box(m))
                        .unwrap()
                        .solve_vec(rhs)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    applications,
    bench_collision_check,
    bench_collision_edge,
    bench_ilqr_iteration,
    bench_topology_cholesky
);
criterion_main!(applications);
