//! Physics-level integration tests: the dynamics substrate must behave
//! like the physical world it models, not just match its own derivatives.

use roboshape::Dynamics;
use roboshape_linalg::Vec3;
use roboshape_spatial::{Joint, SpatialInertia, Xform};
use roboshape_suite::prelude::*;
use roboshape_urdf::RobotBuilder;

fn double_pendulum() -> roboshape::RobotModel {
    let mut b = RobotBuilder::new("double_pendulum");
    let upper = b.add_link(
        "upper",
        None,
        Joint::revolute(Vec3::unit_y()),
        SpatialInertia::point_like(1.0, Vec3::new(0.0, 0.0, -0.5), 0.0),
    );
    b.add_link(
        "lower",
        Some(upper),
        Joint::revolute(Vec3::unit_y())
            .with_tree_xform(Xform::from_translation(Vec3::new(0.0, 0.0, -1.0))),
        SpatialInertia::point_like(1.0, Vec3::new(0.0, 0.0, -0.5), 0.0),
    );
    b.build()
}

/// Total mechanical energy of the double pendulum at a state.
fn total_energy(dynamics: &Dynamics, q: &[f64], qd: &[f64]) -> f64 {
    let kinetic = dynamics.kinetic_energy(q, qd);
    // Potential energy from forward kinematics: the links' CoM heights.
    let fk = dynamics.forward_kinematics(q);
    let robot = dynamics.model();
    let mut potential = 0.0;
    for i in 0..robot.num_links() {
        let com_local = robot.link(i).inertia.com().expect("massive links");
        let world = fk.x_base[i].transform_point_back(com_local);
        potential += robot.link(i).inertia.mass() * 9.81 * world.z;
    }
    kinetic + potential
}

/// Energy conservation under torque-free motion: integrating the ABA with
/// RK4 must keep total energy nearly constant over a swing.
#[test]
fn double_pendulum_conserves_energy() {
    let robot = double_pendulum();
    let dynamics = Dynamics::new(&robot);
    let mut q = vec![1.2, 0.4];
    let mut qd = vec![0.0, 0.0];
    let tau = vec![0.0, 0.0];
    let e0 = total_energy(&dynamics, &q, &qd);
    let dt = 1e-3;
    for _ in 0..2_000 {
        // RK4 on the (q, qd) state.
        let f = |q: &Vec<f64>, qd: &Vec<f64>| -> (Vec<f64>, Vec<f64>) {
            (qd.clone(), dynamics.aba(q, qd, &tau))
        };
        let (k1q, k1v) = f(&q, &qd);
        let add = |a: &Vec<f64>, b: &Vec<f64>, s: f64| -> Vec<f64> {
            a.iter().zip(b).map(|(x, y)| x + s * y).collect()
        };
        let (k2q, k2v) = f(&add(&q, &k1q, dt / 2.0), &add(&qd, &k1v, dt / 2.0));
        let (k3q, k3v) = f(&add(&q, &k2q, dt / 2.0), &add(&qd, &k2v, dt / 2.0));
        let (k4q, k4v) = f(&add(&q, &k3q, dt), &add(&qd, &k3v, dt));
        for i in 0..2 {
            q[i] += dt / 6.0 * (k1q[i] + 2.0 * k2q[i] + 2.0 * k3q[i] + k4q[i]);
            qd[i] += dt / 6.0 * (k1v[i] + 2.0 * k2v[i] + 2.0 * k3v[i] + k4v[i]);
        }
    }
    let e1 = total_energy(&dynamics, &q, &qd);
    let drift = (e1 - e0).abs() / e0.abs().max(1.0);
    assert!(drift < 1e-5, "energy drifted by {drift:.2e} ({e0} -> {e1})");
    // And it actually moved (this is a swing, not a fixed point).
    assert!(qd.iter().any(|v| v.abs() > 0.1) || (q[0] - 1.2).abs() > 0.1);
}

/// Dropping a robot from rest: every joint acceleration must initially
/// lower the total potential energy (gravity does positive work).
#[test]
fn gravity_lowers_potential_energy() {
    for which in [Zoo::Iiwa, Zoo::Baxter] {
        let robot = zoo(which);
        let n = robot.num_links();
        let dynamics = Dynamics::new(&robot);
        let q: Vec<f64> = (0..n).map(|i| 0.4 * ((i as f64 * 0.7).sin())).collect();
        let qd = vec![0.0; n];
        let qdd = dynamics.aba(&q, &qd, &vec![0.0; n]);
        // Rate of change of potential energy = −q̈ᵀ·(gravity torque) at
        // rest... simpler: after a small free-fall step, energy must not
        // increase and kinetic energy must appear.
        let dt = 1e-3;
        let q2: Vec<f64> = (0..n).map(|i| q[i] + 0.5 * dt * dt * qdd[i]).collect();
        let qd2: Vec<f64> = (0..n).map(|i| dt * qdd[i]).collect();
        let kinetic = dynamics.kinetic_energy(&q2, &qd2);
        assert!(
            kinetic > 0.0,
            "{which:?}: free fall must build kinetic energy"
        );
    }
}

/// ABA and the accelerator-verified ∇FD agree on directional derivatives:
/// a small perturbation of q changes ABA's output as the simulated
/// gradients predict.
#[test]
fn accelerator_gradients_predict_aba_changes() {
    let robot = zoo(Zoo::Hyq);
    let n = robot.num_links();
    let fw = Framework::from_model(robot.clone());
    let accel = fw.generate(Constraints::new(3, 3, 3));
    let dynamics = Dynamics::new(&robot);
    let q = vec![0.3; n];
    let qd = vec![0.1; n];
    let tau = vec![0.4; n];
    let sim = accel.simulate(&q, &qd, &tau);

    let h = 1e-6;
    for j in [0usize, 5, 11] {
        let mut qp = q.clone();
        qp[j] += h;
        let plus = dynamics.aba(&qp, &qd, &tau);
        qp[j] -= 2.0 * h;
        let minus = dynamics.aba(&qp, &qd, &tau);
        for i in 0..n {
            let fd = (plus[i] - minus[i]) / (2.0 * h);
            let predicted = sim.dqdd_dq[(i, j)];
            assert!(
                (fd - predicted).abs() < 1e-4 * (1.0 + fd.abs()),
                "∂q̈[{i}]/∂q[{j}]: fd {fd} vs accelerator {predicted}"
            );
        }
    }
}
