//! Spatial motion and force vectors and their cross products.

use core::ops::{Add, AddAssign, Mul, Neg, Sub};
use roboshape_linalg::{Vec3, Vec6};

/// A spatial *motion* vector (velocity, acceleration, or motion subspace
/// column): angular part `ω` on top, linear part `v` below.
///
/// # Examples
///
/// ```
/// use roboshape_linalg::Vec3;
/// use roboshape_spatial::MotionVec;
/// let v = MotionVec::from_parts(Vec3::unit_z(), Vec3::ZERO);
/// assert_eq!(v.angular(), Vec3::unit_z());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MotionVec(pub Vec6);

/// A spatial *force* vector (force/torque or momentum): moment `n` on top,
/// linear force `f` below.
///
/// # Examples
///
/// ```
/// use roboshape_linalg::Vec3;
/// use roboshape_spatial::ForceVec;
/// let f = ForceVec::from_parts(Vec3::ZERO, Vec3::new(0.0, 0.0, -9.81));
/// assert_eq!(f.linear().z, -9.81);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ForceVec(pub Vec6);

macro_rules! spatial_vec_impl {
    ($t:ident) => {
        impl $t {
            /// The zero vector.
            pub const ZERO: $t = $t(Vec6::ZERO);

            /// Builds from angular (top) and linear (bottom) parts.
            #[inline]
            pub fn from_parts(angular: Vec3, linear: Vec3) -> $t {
                $t(Vec6::from_parts(angular, linear))
            }

            /// Builds from a raw 6-vector.
            #[inline]
            pub fn from_vec6(v: Vec6) -> $t {
                $t(v)
            }

            /// The angular (top) 3-vector.
            #[inline]
            pub fn angular(self) -> Vec3 {
                self.0.angular()
            }

            /// The linear (bottom) 3-vector.
            #[inline]
            pub fn linear(self) -> Vec3 {
                self.0.linear()
            }

            /// The underlying 6-vector.
            #[inline]
            pub fn as_vec6(self) -> Vec6 {
                self.0
            }

            /// Euclidean norm.
            #[inline]
            pub fn norm(self) -> f64 {
                self.0.norm()
            }
        }

        impl Add for $t {
            type Output = $t;
            #[inline]
            fn add(self, o: $t) -> $t {
                $t(self.0 + o.0)
            }
        }

        impl AddAssign for $t {
            #[inline]
            fn add_assign(&mut self, o: $t) {
                self.0 += o.0;
            }
        }

        impl Sub for $t {
            type Output = $t;
            #[inline]
            fn sub(self, o: $t) -> $t {
                $t(self.0 - o.0)
            }
        }

        impl Neg for $t {
            type Output = $t;
            #[inline]
            fn neg(self) -> $t {
                $t(-self.0)
            }
        }

        impl Mul<f64> for $t {
            type Output = $t;
            #[inline]
            fn mul(self, s: f64) -> $t {
                $t(self.0 * s)
            }
        }
    };
}

spatial_vec_impl!(MotionVec);
spatial_vec_impl!(ForceVec);

impl MotionVec {
    /// The scalar pairing `vᵀ f` (instantaneous power when `v` is a velocity
    /// and `f` a force). This pairing is invariant under frame changes.
    #[inline]
    pub fn dot_force(self, f: ForceVec) -> f64 {
        self.0.dot(f.0)
    }
}

/// Spatial motion cross product `v × m` (`crm(v)·m` in Featherstone's
/// notation): the rate of change of a motion vector `m` observed from a
/// frame moving with velocity `v`.
///
/// # Examples
///
/// ```
/// use roboshape_linalg::Vec3;
/// use roboshape_spatial::{cross_motion, MotionVec};
/// let v = MotionVec::from_parts(Vec3::unit_z(), Vec3::ZERO);
/// let m = MotionVec::from_parts(Vec3::unit_x(), Vec3::ZERO);
/// let out = cross_motion(v, m);
/// assert!((out.angular() - Vec3::unit_y()).norm() < 1e-12);
/// ```
pub fn cross_motion(v: MotionVec, m: MotionVec) -> MotionVec {
    let w = v.angular();
    let vl = v.linear();
    MotionVec::from_parts(
        w.cross(m.angular()),
        vl.cross(m.angular()) + w.cross(m.linear()),
    )
}

/// Spatial force cross product `v ×* f` (`crf(v)·f = −crm(v)ᵀ·f`): the rate
/// of change of a force vector `f` observed from a frame moving with
/// velocity `v`.
///
/// # Examples
///
/// ```
/// use roboshape_linalg::Vec3;
/// use roboshape_spatial::{cross_force, ForceVec, MotionVec};
/// let v = MotionVec::from_parts(Vec3::unit_z(), Vec3::ZERO);
/// let f = ForceVec::from_parts(Vec3::ZERO, Vec3::unit_x());
/// let out = cross_force(v, f);
/// assert!((out.linear() - Vec3::unit_y()).norm() < 1e-12);
/// ```
pub fn cross_force(v: MotionVec, f: ForceVec) -> ForceVec {
    let w = v.angular();
    let vl = v.linear();
    ForceVec::from_parts(
        w.cross(f.angular()) + vl.cross(f.linear()),
        w.cross(f.linear()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_v3() -> impl Strategy<Value = Vec3> {
        (-5.0..5.0f64, -5.0..5.0f64, -5.0..5.0f64).prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    fn arb_motion() -> impl Strategy<Value = MotionVec> {
        (arb_v3(), arb_v3()).prop_map(|(a, l)| MotionVec::from_parts(a, l))
    }

    fn arb_force() -> impl Strategy<Value = ForceVec> {
        (arb_v3(), arb_v3()).prop_map(|(a, l)| ForceVec::from_parts(a, l))
    }

    #[test]
    fn parts_roundtrip() {
        let m = MotionVec::from_parts(Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(m.angular(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(m.linear(), Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(m.as_vec6().to_array(), [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = MotionVec::from_parts(Vec3::unit_x(), Vec3::unit_y());
        let b = MotionVec::from_parts(Vec3::unit_y(), Vec3::unit_x());
        assert_eq!((a + b).angular(), Vec3::new(1.0, 1.0, 0.0));
        assert_eq!((a - b).linear(), Vec3::new(-1.0, 1.0, 0.0));
        assert_eq!((a * 2.0).angular(), Vec3::new(2.0, 0.0, 0.0));
        assert_eq!((-a).angular(), Vec3::new(-1.0, 0.0, 0.0));
    }

    #[test]
    fn cross_motion_on_self_is_zero() {
        let v = MotionVec::from_parts(Vec3::new(1.0, -2.0, 0.5), Vec3::new(0.3, 0.1, -4.0));
        assert!(cross_motion(v, v).norm() < 1e-12);
    }

    proptest! {
        #[test]
        fn cross_motion_antisymmetric(a in arb_motion(), b in arb_motion()) {
            let lhs = cross_motion(a, b);
            let rhs = -cross_motion(b, a);
            prop_assert!((lhs - rhs).norm() < 1e-9);
        }

        /// crf(v) = −crm(v)ᵀ, expressed as an inner-product identity:
        /// (v × m)ᵀ f = −mᵀ (v ×* f).
        #[test]
        fn crf_is_negative_transpose_of_crm(v in arb_motion(), m in arb_motion(), f in arb_force()) {
            let lhs = cross_motion(v, m).dot_force(f);
            let rhs = -m.dot_force(cross_force(v, f));
            prop_assert!((lhs - rhs).abs() < 1e-8);
        }

        /// Jacobi-like identity: v × (u × m) − u × (v × m) = (v × u) × m.
        #[test]
        fn crm_bracket_identity(v in arb_motion(), u in arb_motion(), m in arb_motion()) {
            let lhs = cross_motion(v, cross_motion(u, m)) - cross_motion(u, cross_motion(v, m));
            let rhs = cross_motion(cross_motion(v, u), m);
            prop_assert!((lhs - rhs).norm() < 1e-7);
        }
    }
}
