//! Task-graph IR for topology-traversal computations.

use roboshape_topology::Topology;

/// Identifier of a task within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskId(pub usize);

/// The four traversal stages of the dynamics-gradient kernel
/// (paper Fig. 3 / Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Stage {
    /// RNEA forward pass (velocities, accelerations, per-link forces).
    RneaFwd,
    /// RNEA backward pass (force accumulation, torques).
    RneaBwd,
    /// ∇RNEA forward derivative pass.
    GradFwd,
    /// ∇RNEA backward derivative pass.
    GradBwd,
}

impl Stage {
    /// All stages in dataflow order.
    pub const ALL: [Stage; 4] = [
        Stage::RneaFwd,
        Stage::RneaBwd,
        Stage::GradFwd,
        Stage::GradBwd,
    ];

    /// Whether this stage runs on the forward-traversal PEs (`true`) or the
    /// backward-traversal PEs (`false`).
    pub fn is_forward(self) -> bool {
        matches!(self, Stage::RneaFwd | Stage::GradFwd)
    }
}

/// What a task computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TaskKind {
    /// Forward RNEA step for `link` (computes `X`, `v`, `a`, local `f`).
    RneaFwd {
        /// The link whose state is computed.
        link: usize,
    },
    /// Backward RNEA step for `link` (torque + parent force contribution).
    RneaBwd {
        /// The link whose torque is produced.
        link: usize,
    },
    /// Forward derivative step for `link` with respect to joint `seed`
    /// (computes `∂v`, `∂a`, local `∂f` for both `∂/∂q` and `∂/∂q̇`).
    GradFwd {
        /// The link whose derivative state is computed.
        link: usize,
        /// The seed joint the derivative is taken with respect to.
        seed: usize,
    },
    /// Backward derivative step for `link` w.r.t. `seed` (derivative torque
    /// entry `(link, seed)` of `∂τ/∂q` and `∂τ/∂q̇`).
    GradBwd {
        /// The link whose derivative torque is produced.
        link: usize,
        /// The seed joint.
        seed: usize,
    },
}

impl TaskKind {
    /// The stage this task belongs to.
    pub fn stage(self) -> Stage {
        match self {
            TaskKind::RneaFwd { .. } => Stage::RneaFwd,
            TaskKind::RneaBwd { .. } => Stage::RneaBwd,
            TaskKind::GradFwd { .. } => Stage::GradFwd,
            TaskKind::GradBwd { .. } => Stage::GradBwd,
        }
    }

    /// The link the task operates on.
    pub fn link(self) -> usize {
        match self {
            TaskKind::RneaFwd { link }
            | TaskKind::RneaBwd { link }
            | TaskKind::GradFwd { link, .. }
            | TaskKind::GradBwd { link, .. } => link,
        }
    }

    /// The derivative seed, for gradient tasks.
    pub fn seed(self) -> Option<usize> {
        match self {
            TaskKind::GradFwd { seed, .. } | TaskKind::GradBwd { seed, .. } => Some(seed),
            _ => None,
        }
    }
}

/// One node of the task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Task {
    /// What the task computes.
    pub kind: TaskKind,
    /// Tasks that must complete before this one may start.
    pub deps: Vec<TaskId>,
}

/// A dependency graph of traversal tasks for one kernel evaluation.
///
/// Tasks are stored in a valid topological order (every dependency has a
/// smaller id) — guaranteed by the constructors and relied on by the
/// scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskGraph {
    tasks: Vec<Task>,
    limb_of_link: Vec<usize>,
    num_limbs: usize,
}

impl TaskGraph {
    /// Builds the complete traversal task graph of the dynamics-gradient
    /// kernel for `topo`:
    ///
    /// * one `RneaFwd` task per link, depending on the parent's;
    /// * one `RneaBwd` task per link, depending on its `RneaFwd` and its
    ///   children's `RneaBwd`;
    /// * one `GradFwd` task per `(link, seed)` with `seed ⪯ link`,
    ///   depending on the parent's same-seed task and on the link's
    ///   `RneaFwd` (value reuse);
    /// * one `GradBwd` task per `(link, seed)` with `link` and `seed` on a
    ///   common path, depending on the matching `GradFwd` (when it exists),
    ///   the child `GradBwd`s of the same seed, and the link's `RneaBwd`
    ///   (total-force reuse).
    pub fn dynamics_gradient(topo: &Topology) -> TaskGraph {
        let n = topo.len();
        let mut tasks: Vec<Task> = Vec::new();
        let id_of = |tasks: &Vec<Task>, kind: TaskKind| -> Option<TaskId> {
            tasks.iter().position(|t| t.kind == kind).map(TaskId)
        };

        // Stage 1: RNEA forward.
        for link in 0..n {
            let mut deps = Vec::new();
            if let Some(p) = topo.parent(link) {
                deps.push(id_of(&tasks, TaskKind::RneaFwd { link: p }).expect("parent first"));
            }
            tasks.push(Task {
                kind: TaskKind::RneaFwd { link },
                deps,
            });
        }
        // Stage 2: RNEA backward (children first).
        for link in (0..n).rev() {
            let mut deps = vec![id_of(&tasks, TaskKind::RneaFwd { link }).expect("fwd exists")];
            for &c in topo.children(link) {
                deps.push(id_of(&tasks, TaskKind::RneaBwd { link: c }).expect("child first"));
            }
            tasks.push(Task {
                kind: TaskKind::RneaBwd { link },
                deps,
            });
        }
        // Stage 3: gradient forward, per seed, down the seed's subtree.
        for seed in 0..n {
            for link in seed..n {
                if !(link == seed || topo.is_ancestor(seed, link)) {
                    continue;
                }
                let mut deps = vec![id_of(&tasks, TaskKind::RneaFwd { link }).expect("fwd exists")];
                if let Some(p) = topo.parent(link) {
                    if p == seed || topo.is_ancestor(seed, p) {
                        deps.push(
                            id_of(&tasks, TaskKind::GradFwd { link: p, seed })
                                .expect("parent first"),
                        );
                    }
                }
                tasks.push(Task {
                    kind: TaskKind::GradFwd { link, seed },
                    deps,
                });
            }
        }
        // Stage 4: gradient backward, per seed, children first, up to root.
        for seed in 0..n {
            for link in (0..n).rev() {
                if !topo.supports(link, seed) {
                    continue;
                }
                let mut deps = vec![id_of(&tasks, TaskKind::RneaBwd { link }).expect("bwd exists")];
                if let Some(g) = id_of(&tasks, TaskKind::GradFwd { link, seed }) {
                    deps.push(g);
                }
                for &c in topo.children(link) {
                    if let Some(cb) = id_of(&tasks, TaskKind::GradBwd { link: c, seed }) {
                        deps.push(cb);
                    }
                }
                tasks.push(Task {
                    kind: TaskKind::GradBwd { link, seed },
                    deps,
                });
            }
        }
        TaskGraph::with_limbs(tasks, topo)
    }

    /// Builds the task graph of plain inverse dynamics (RNEA only, paper
    /// Alg. 2): one forward and one backward task per link. This is the
    /// Table 1 "inverse dynamics" kernel — the framework's scheduling and
    /// lowering machinery applies to it unchanged (Sec. 4: "can flexibly
    /// implement accelerators for a broad class of robotics
    /// computations").
    pub fn inverse_dynamics(topo: &Topology) -> TaskGraph {
        let n = topo.len();
        let mut tasks: Vec<Task> = Vec::with_capacity(2 * n);
        for link in 0..n {
            let deps = topo
                .parent(link)
                .map(|p| vec![TaskId(p)])
                .unwrap_or_default();
            tasks.push(Task {
                kind: TaskKind::RneaFwd { link },
                deps,
            });
        }
        for link in (0..n).rev() {
            let mut deps = vec![TaskId(link)];
            for &c in topo.children(link) {
                deps.push(TaskId(n + (n - 1 - c)));
            }
            tasks.push(Task {
                kind: TaskKind::RneaBwd { link },
                deps,
            });
        }
        TaskGraph::with_limbs(tasks, topo)
    }

    /// Builds the task graph of forward kinematics (paper Table 1): a
    /// single forward traversal, one task per link. The `RneaFwd` task
    /// kind doubles as the generic "forward link op" here — the PE
    /// datapath is the same spatial-transform hardware.
    pub fn forward_kinematics(topo: &Topology) -> TaskGraph {
        let n = topo.len();
        let tasks = (0..n)
            .map(|link| Task {
                kind: TaskKind::RneaFwd { link },
                deps: topo
                    .parent(link)
                    .map(|p| vec![TaskId(p)])
                    .unwrap_or_default(),
            })
            .collect();
        TaskGraph::with_limbs(tasks, topo)
    }

    /// Merges two task graphs over the *same topology* into one combined
    /// graph with no cross-dependencies — the two kernels compete for the
    /// same PEs and the scheduler interleaves them. This implements the
    /// paper's Sec. 3.3 future-work knob: "dynamically co-schedule
    /// different types of kernels simultaneously on processing elements".
    ///
    /// # Panics
    ///
    /// Panics if the graphs came from topologies of different limb
    /// structure.
    pub fn merge(a: &TaskGraph, b: &TaskGraph) -> TaskGraph {
        assert_eq!(
            (a.limb_of_link.as_slice(), a.num_limbs),
            (b.limb_of_link.as_slice(), b.num_limbs),
            "merged graphs must share a topology"
        );
        let offset = a.tasks.len();
        let mut tasks = a.tasks.clone();
        tasks.extend(b.tasks.iter().map(|t| Task {
            kind: t.kind,
            deps: t.deps.iter().map(|d| TaskId(d.0 + offset)).collect(),
        }));
        TaskGraph {
            tasks,
            limb_of_link: a.limb_of_link.clone(),
            num_limbs: a.num_limbs,
        }
    }

    /// `copies` independent instances of `graph` merged into one (see
    /// [`TaskGraph::merge`]) — the streaming multi-time-step workload of
    /// the paper's Fig. 10: scheduling this measures the *actual* batched
    /// makespan instead of an analytical initiation-interval bound.
    ///
    /// # Panics
    ///
    /// Panics if `copies == 0`.
    pub fn replicate(graph: &TaskGraph, copies: usize) -> TaskGraph {
        assert!(copies > 0, "need at least one copy");
        let mut merged = graph.clone();
        for _ in 1..copies {
            merged = TaskGraph::merge(&merged, graph);
        }
        merged
    }

    fn with_limbs(tasks: Vec<Task>, topo: &Topology) -> TaskGraph {
        // Limb decomposition (depth-first order by construction: limbs are
        // returned sorted by first link, and link indices are depth-first).
        let limbs = topo.limbs();
        let mut limb_of_link = vec![0usize; topo.len()];
        for (m, limb) in limbs.iter().enumerate() {
            for &l in limb {
                limb_of_link[l] = m;
            }
        }
        TaskGraph {
            tasks,
            limb_of_link,
            num_limbs: limbs.len(),
        }
    }

    /// The (depth-first) limb index of a link — the scheduler's
    /// limb-sequential mode walks these in order.
    pub fn limb_of_link(&self, link: usize) -> usize {
        self.limb_of_link[link]
    }

    /// Number of limbs in the underlying topology.
    pub fn num_limbs(&self) -> usize {
        self.num_limbs
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// All tasks in topological order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Ids of the tasks of one stage.
    pub fn stage_tasks(&self, stage: Stage) -> Vec<TaskId> {
        (0..self.tasks.len())
            .filter(|&i| self.tasks[i].kind.stage() == stage)
            .map(TaskId)
            .collect()
    }

    /// Length of the longest dependency chain (in tasks) — the critical
    /// path with unit task costs.
    pub fn critical_path_len(&self) -> usize {
        let mut depth = vec![0usize; self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            depth[i] = 1 + t.deps.iter().map(|d| depth[d.0]).max().unwrap_or(0);
        }
        depth.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Topology {
        Topology::chain(n)
    }

    fn baxter_like() -> Topology {
        let mut parents = vec![None];
        for _ in 0..2 {
            parents.push(None);
            for _ in 1..7 {
                parents.push(Some(parents.len() - 1));
            }
        }
        Topology::new(parents).unwrap()
    }

    #[test]
    fn task_counts_for_chain() {
        // Chain of n: n fwd, n bwd, n(n+1)/2 grad-fwd (all pairs seed ≤
        // link), and grad-bwd covers all supported pairs = n² for a chain.
        let n = 5;
        let g = TaskGraph::dynamics_gradient(&chain(n));
        assert_eq!(g.stage_tasks(Stage::RneaFwd).len(), n);
        assert_eq!(g.stage_tasks(Stage::RneaBwd).len(), n);
        assert_eq!(g.stage_tasks(Stage::GradFwd).len(), n * (n + 1) / 2);
        assert_eq!(g.stage_tasks(Stage::GradBwd).len(), n * n);
        assert_eq!(g.len(), n + n + n * (n + 1) / 2 + n * n);
    }

    #[test]
    fn task_counts_for_baxter() {
        // Baxter: head (1 link) + two 7-chains. Grad tasks per limb only
        // (no cross-limb support).
        let g = TaskGraph::dynamics_gradient(&baxter_like());
        assert_eq!(g.stage_tasks(Stage::RneaFwd).len(), 15);
        assert_eq!(g.stage_tasks(Stage::GradFwd).len(), 1 + 28 + 28);
        assert_eq!(g.stage_tasks(Stage::GradBwd).len(), 1 + 49 + 49);
    }

    #[test]
    fn dependencies_are_topologically_ordered() {
        for topo in [chain(7), baxter_like()] {
            let g = TaskGraph::dynamics_gradient(&topo);
            for (i, t) in g.tasks().iter().enumerate() {
                for d in &t.deps {
                    assert!(d.0 < i, "task {i} depends on later task {}", d.0);
                }
            }
        }
    }

    #[test]
    fn grad_fwd_depends_on_matching_rnea_fwd() {
        let g = TaskGraph::dynamics_gradient(&chain(3));
        for t in g.tasks() {
            if let TaskKind::GradFwd { link, .. } = t.kind {
                let has_value_dep = t
                    .deps
                    .iter()
                    .any(|d| g.task(*d).kind == TaskKind::RneaFwd { link });
                assert!(has_value_dep);
            }
        }
    }

    #[test]
    fn critical_path_scales_with_depth() {
        // For a chain, RNEA fwd alone has depth n; the full kernel's
        // critical path must be at least 2n (down then up) plus grad work.
        let g = TaskGraph::dynamics_gradient(&chain(6));
        assert!(g.critical_path_len() >= 12, "got {}", g.critical_path_len());
        // A star (all links root-attached) parallelizes almost completely.
        let star = Topology::new(vec![None, None, None, None]).unwrap();
        let gs = TaskGraph::dynamics_gradient(&star);
        assert!(
            gs.critical_path_len() <= 4,
            "got {}",
            gs.critical_path_len()
        );
    }

    #[test]
    fn inverse_dynamics_graph_is_two_passes() {
        let t = baxter_like();
        let g = TaskGraph::inverse_dynamics(&t);
        assert_eq!(g.len(), 30);
        assert_eq!(g.stage_tasks(Stage::RneaFwd).len(), 15);
        assert_eq!(g.stage_tasks(Stage::RneaBwd).len(), 15);
        assert!(g.stage_tasks(Stage::GradFwd).is_empty());
        // Deps are topologically consistent.
        for (i, task) in g.tasks().iter().enumerate() {
            for d in &task.deps {
                assert!(d.0 < i);
            }
        }
        // Backward tasks depend on their forward task and their children.
        for task in g.tasks() {
            if let TaskKind::RneaBwd { link } = task.kind {
                assert!(task
                    .deps
                    .iter()
                    .any(|d| g.task(*d).kind == TaskKind::RneaFwd { link }));
                for &c in t.children(link) {
                    assert!(task
                        .deps
                        .iter()
                        .any(|d| g.task(*d).kind == TaskKind::RneaBwd { link: c }));
                }
            }
        }
    }

    #[test]
    fn forward_kinematics_graph_is_one_pass() {
        let t = baxter_like();
        let g = TaskGraph::forward_kinematics(&t);
        assert_eq!(g.len(), 15);
        assert_eq!(g.critical_path_len(), 7); // the arm chain
    }

    #[test]
    fn merged_graphs_combine_both_kernels() {
        let t = baxter_like();
        let fk = TaskGraph::forward_kinematics(&t);
        let grad = TaskGraph::dynamics_gradient(&t);
        let merged = TaskGraph::merge(&grad, &fk);
        assert_eq!(merged.len(), grad.len() + fk.len());
        // Offsets keep dependencies internal to each half.
        for (i, task) in merged.tasks().iter().enumerate() {
            for d in &task.deps {
                assert!(d.0 < i);
                let same_half = (d.0 < grad.len()) == (i < grad.len());
                assert!(same_half, "cross-kernel dependency introduced");
            }
        }
        assert_eq!(merged.num_limbs(), grad.num_limbs());
    }

    #[test]
    #[should_panic(expected = "share a topology")]
    fn merging_different_topologies_panics() {
        let a = TaskGraph::forward_kinematics(&chain(3));
        let b = TaskGraph::forward_kinematics(&chain(4));
        TaskGraph::merge(&a, &b);
    }

    #[test]
    fn kernel_graphs_order_by_work() {
        // FK ⊂ ID ⊂ ∇FD in task count and critical path.
        let t = baxter_like();
        let fk = TaskGraph::forward_kinematics(&t);
        let id = TaskGraph::inverse_dynamics(&t);
        let grad = TaskGraph::dynamics_gradient(&t);
        assert!(fk.len() < id.len() && id.len() < grad.len());
        assert!(fk.critical_path_len() <= id.critical_path_len());
        assert!(id.critical_path_len() <= grad.critical_path_len());
    }

    #[test]
    fn stage_accessors_partition_tasks() {
        let g = TaskGraph::dynamics_gradient(&baxter_like());
        let total: usize = Stage::ALL.iter().map(|&s| g.stage_tasks(s).len()).sum();
        assert_eq!(total, g.len());
        assert!(!g.is_empty());
        assert!(Stage::RneaFwd.is_forward());
        assert!(Stage::GradFwd.is_forward());
        assert!(!Stage::RneaBwd.is_forward());
        assert!(!Stage::GradBwd.is_forward());
    }
}
