//! No-op `Serialize`/`Deserialize` derive macros for the vendored
//! offline `serde` stub (see `vendor/serde`).
//!
//! The workspace only uses serde behind an optional `serde` cargo
//! feature via `#[cfg_attr(feature = "serde", derive(...))]`; no code
//! actually serializes anything. These derives therefore expand to
//! nothing — the blanket trait impls in the stub `serde` crate satisfy
//! any bounds.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` has a blanket impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` has a blanket impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
