//! Event-driven TCP front-end over [`crate::Engine`], plus a blocking
//! [`Client`].
//!
//! Connections are serviced by a **bounded set of event-loop threads**
//! (default one; see [`ServerOptions::loops`]) instead of the previous
//! two-threads-per-connection design, so thousands of concurrent
//! clients cost file descriptors, not stacks. Each loop owns a
//! [`crate::net::poll::Poller`] (epoll on Linux) and a set of
//! non-blocking [`crate::net::FrameConn`]s; engine workers signal
//! request completion through [`Ticket::watch`] callbacks that enqueue a
//! done-marker and poke the loop's [`crate::net::poll::Waker`], so no
//! thread ever parks on an individual request.
//!
//! Responses on one connection are written **in submission order** (the
//! loop keeps a per-connection FIFO of reply slots and flushes only the
//! completed prefix), preserving the pre-cluster protocol contract; a
//! client may pipeline freely. Completed frames from many requests
//! coalesce in the connection's out-buffer and leave in as few `write`
//! syscalls as the socket accepts.
//!
//! Resilience behaviours carried over from the fault-injection layer:
//!
//! * A request frame failing its checksum, or declaring a body above
//!   the cap, gets a **typed** `BadRequest` response (correlation id 0)
//!   before the connection closes — never a silent drop.
//! * Body *decode* errors also get a typed id-0 response, but the
//!   connection stays open (framing is still in sync).
//! * Health probes are answered inline from [`crate::Engine::health`],
//!   bypassing the kernel queues, so readiness checks work even when
//!   every robot's queue is saturated.
//! * Hello (handshake) frames are answered inline with the shard's name
//!   and robot roster — how a router learns what a shard serves.
//! * When the engine runs a chaos [`FaultPlan`], response frames are
//!   damaged on the raw wire bytes (after checksum computation, keyed
//!   by correlation id) — which is exactly what makes the corruption
//!   *detectable and retryable* at the client.

use crate::engine::{Engine, ServeError, ServePayload, ServeRequest, ServeResult, Ticket};
use crate::fault::FaultSite;
use crate::net::poll::{Interest, Poller, WakeRx, Waker, WAKE_TOKEN};
use crate::net::{FlushOutcome, FrameConn, FrameViolation, ReadOutcome};
use crate::proto::{
    decode_any_request, decode_hello_response, decode_response, encode_health_request,
    encode_hello_request, encode_hello_response, encode_request, encode_response, frame_bytes,
    read_frame, write_frame, DecodedRequest, HelloInfo, ProtoError, RequestFrame, ResponseFrame,
};
use crate::{FAULT_CORRUPT_METRIC, OBS_CATEGORY, SHARD_CONNS_METRIC, SHARD_HELLO_METRIC};
use roboshape_obs as obs;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a loop sleeps in `wait` before re-checking shutdown flags.
const TICK: Duration = Duration::from_millis(50);

/// How long shutdown keeps flushing responses to clients that have
/// stopped reading before force-closing their connections.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Poller token of the accept listener (loop 0 only).
const LISTEN_TOKEN: u64 = u64::MAX - 1;

/// Tuning knobs for [`Server::start_with`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Name announced in hello (handshake) responses; shards set their
    /// operator-assigned name here.
    pub shard_name: String,
    /// Event-loop threads servicing connections. One loop comfortably
    /// drives thousands of connections; more only help past one
    /// saturated core.
    pub loops: usize,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            shard_name: "solo".to_string(),
            loops: 1,
        }
    }
}

/// Shutdown phases shared by every loop thread.
struct Shared {
    /// Stop accepting connections and reading new request frames.
    draining: AtomicBool,
    /// Engine is drained: flush what remains and exit.
    stopped: AtomicBool,
    /// Drop everything immediately (crash simulation / `abort`).
    aborted: AtomicBool,
    /// Round-robin cursor assigning accepted connections to loops.
    next_loop: AtomicUsize,
}

/// Cross-thread mailbox of one event loop.
struct LoopHandle {
    waker: Waker,
    inbox: Arc<Mutex<VecDeque<LoopMsg>>>,
}

impl LoopHandle {
    fn post(&self, msg: LoopMsg) {
        self.inbox
            .lock()
            .expect("loop inbox poisoned")
            .push_back(msg);
        self.waker.wake();
    }
}

enum LoopMsg {
    /// A freshly-accepted connection assigned to this loop.
    Adopt(TcpStream),
    /// The ticket behind `(conn token, slot seq)` resolved.
    Done(u64, u64),
}

/// A running TCP front-end. Dropping it does **not** stop the threads;
/// call [`Server::shutdown`] for an orderly stop.
pub struct Server {
    engine: Engine,
    addr: SocketAddr,
    shared: Arc<Shared>,
    handles: Vec<Arc<LoopHandle>>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections against `engine` with default
    /// options.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn start(engine: Engine, addr: impl ToSocketAddrs) -> io::Result<Server> {
        Server::start_with(engine, addr, ServerOptions::default())
    }

    /// As [`Server::start`], with explicit [`ServerOptions`].
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn start_with(
        engine: Engine,
        addr: impl ToSocketAddrs,
        options: ServerOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
            next_loop: AtomicUsize::new(0),
        });
        let n_loops = options.loops.max(1);
        let mut handles = Vec::with_capacity(n_loops);
        let mut wake_rxs = Vec::with_capacity(n_loops);
        for _ in 0..n_loops {
            let (waker, rx) = Waker::new()?;
            handles.push(Arc::new(LoopHandle {
                waker,
                inbox: Arc::new(Mutex::new(VecDeque::new())),
            }));
            wake_rxs.push(rx);
        }
        let handles_arc: Arc<Vec<Arc<LoopHandle>>> = Arc::new(handles.clone());
        let mut threads = Vec::with_capacity(n_loops);
        for (index, rx) in wake_rxs.into_iter().enumerate() {
            let mut event_loop = EventLoop::new(
                engine.clone(),
                options.shard_name.clone(),
                Arc::clone(&shared),
                Arc::clone(&handles_arc),
                index,
                rx,
                if index == 0 {
                    Some(listener.try_clone()?)
                } else {
                    None
                },
            )?;
            threads.push(std::thread::spawn(move || event_loop.run()));
        }
        Ok(Server {
            engine,
            addr: local,
            shared,
            handles,
            threads,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Orderly stop: close the accept loop, stop reading new requests,
    /// drain the engine (every accepted request still gets its response
    /// frame), then join every loop thread.
    pub fn shutdown(mut self) {
        let _span = obs::span(OBS_CATEGORY, "server-shutdown");
        self.shared.draining.store(true, Ordering::SeqCst);
        for handle in &self.handles {
            handle.waker.wake();
        }
        // Engine drain resolves every outstanding ticket; each watch
        // callback lands in its loop's inbox, so responses keep
        // flushing while this blocks.
        self.engine.shutdown();
        self.shared.stopped.store(true, Ordering::SeqCst);
        for handle in &self.handles {
            handle.waker.wake();
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }

    /// Crash-style stop: drop every connection and in-flight request on
    /// the floor, no drain, no goodbye frames. Exists so cluster tests
    /// can kill a shard mid-run and exercise the router's failover path
    /// exactly as a SIGKILL would.
    pub fn abort(mut self) {
        self.shared.aborted.store(true, Ordering::SeqCst);
        self.shared.stopped.store(true, Ordering::SeqCst);
        self.shared.draining.store(true, Ordering::SeqCst);
        for handle in &self.handles {
            handle.waker.wake();
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        // Reap worker threads; resolved results are discarded.
        self.engine.shutdown();
    }
}

/// One reply slot in a connection's submission-order FIFO.
struct Slot {
    seq: u64,
    state: SlotState,
}

enum SlotState {
    /// Awaiting the engine; the watch callback will post `Done`.
    Waiting(Ticket, u64),
    /// Wire bytes ready to enter the out-buffer.
    Ready(Vec<u8>),
    /// Flushed into the out-buffer.
    Sent,
}

struct ConnState {
    conn: FrameConn,
    pending: VecDeque<Slot>,
    next_seq: u64,
    /// Registered poller interest, tracked to avoid redundant syscalls.
    interest: Interest,
    /// Framing violated: stop reading, close once the FIFO flushes.
    closing: bool,
}

struct EventLoop {
    engine: Engine,
    shard_name: String,
    shared: Arc<Shared>,
    handles: Arc<Vec<Arc<LoopHandle>>>,
    index: usize,
    poller: Poller,
    wake_rx: WakeRx,
    listener: Option<TcpListener>,
    conns: HashMap<u64, ConnState>,
    next_token: u64,
}

impl EventLoop {
    #[allow(clippy::too_many_arguments)]
    fn new(
        engine: Engine,
        shard_name: String,
        shared: Arc<Shared>,
        handles: Arc<Vec<Arc<LoopHandle>>>,
        index: usize,
        wake_rx: WakeRx,
        listener: Option<TcpListener>,
    ) -> io::Result<EventLoop> {
        let mut poller = Poller::new()?;
        poller.register(wake_rx.fd(), WAKE_TOKEN, Interest::READABLE)?;
        if let Some(l) = &listener {
            use std::os::unix::io::AsRawFd;
            poller.register(l.as_raw_fd(), LISTEN_TOKEN, Interest::READABLE)?;
        }
        Ok(EventLoop {
            engine,
            shard_name,
            shared,
            handles,
            index,
            poller,
            wake_rx,
            listener,
            conns: HashMap::new(),
            next_token: 0,
        })
    }

    fn run(&mut self) {
        let _span = obs::span(OBS_CATEGORY, "event-loop");
        let mut events = Vec::new();
        let mut drain_deadline: Option<Instant> = None;
        loop {
            if self.shared.aborted.load(Ordering::SeqCst) {
                break;
            }
            if self.shared.stopped.load(Ordering::SeqCst) {
                let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + DRAIN_GRACE);
                self.drain_inbox();
                self.flush_all();
                let unfinished = self
                    .conns
                    .values()
                    .any(|c| !c.pending.is_empty() || c.conn.wants_write());
                if !unfinished || Instant::now() >= deadline {
                    break;
                }
            } else if self.shared.draining.load(Ordering::SeqCst) {
                // Stop taking on new work; completions still arrive.
                if let Some(l) = self.listener.take() {
                    use std::os::unix::io::AsRawFd;
                    let _ = self.poller.deregister(l.as_raw_fd());
                }
                self.park_readers();
            }
            events.clear();
            if self.poller.wait(&mut events, Some(TICK)).is_err() {
                break;
            }
            let drained = core::mem::take(&mut events);
            for event in &drained {
                match event.token {
                    WAKE_TOKEN => self.wake_rx.drain(),
                    LISTEN_TOKEN => self.accept_ready(),
                    token => self.conn_ready(token, event.readable, event.writable, event.hangup),
                }
            }
            events = drained;
            self.drain_inbox();
        }
        let remaining = self.conns.len() as f64;
        if remaining > 0.0 {
            obs::metrics().gauge(SHARD_CONNS_METRIC).add(-remaining);
        }
        self.conns.clear();
    }

    /// Accepts until the listener would block, spreading connections
    /// round-robin over the loop set.
    fn accept_ready(&mut self) {
        loop {
            let accepted = match &self.listener {
                Some(l) => l.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _peer)) => {
                    let target =
                        self.shared.next_loop.fetch_add(1, Ordering::Relaxed) % self.handles.len();
                    if target == self.index {
                        self.adopt(stream);
                    } else {
                        self.handles[target].post(LoopMsg::Adopt(stream));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        let conn = match FrameConn::new(stream) {
            Ok(c) => c,
            Err(_) => return,
        };
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .register(conn.fd(), token, Interest::READABLE)
            .is_err()
        {
            return;
        }
        obs::metrics().gauge(SHARD_CONNS_METRIC).add(1.0);
        self.conns.insert(
            token,
            ConnState {
                conn,
                pending: VecDeque::new(),
                next_seq: 0,
                interest: Interest::READABLE,
                closing: false,
            },
        );
    }

    fn drain_inbox(&mut self) {
        loop {
            let msg = {
                let mut inbox = self.handles[self.index]
                    .inbox
                    .lock()
                    .expect("loop inbox poisoned");
                inbox.pop_front()
            };
            match msg {
                Some(LoopMsg::Adopt(stream)) => {
                    if self.shared.draining.load(Ordering::SeqCst) {
                        continue;
                    }
                    self.adopt(stream);
                }
                Some(LoopMsg::Done(token, seq)) => self.ticket_done(token, seq),
                None => return,
            }
        }
    }

    /// During drain: stop reading request frames, keep write interest.
    fn park_readers(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let conn = self.conns.get_mut(&token).expect("token just listed");
            let want = Interest {
                readable: false,
                writable: conn.conn.wants_write(),
            };
            if conn.interest != want {
                let _ = self.poller.modify(conn.conn.fd(), token, want);
                conn.interest = want;
            }
        }
    }

    fn flush_all(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.advance_conn(token);
        }
    }

    fn conn_ready(&mut self, token: u64, readable: bool, writable: bool, hangup: bool) {
        let draining = self.shared.draining.load(Ordering::SeqCst);
        if readable && !draining {
            let state = match self.conns.get_mut(&token) {
                Some(s) => s,
                None => return,
            };
            if !state.closing {
                let mut bodies = Vec::new();
                let outcome = state.conn.read_frames(|body| bodies.push(body));
                for body in bodies {
                    self.handle_frame(token, body);
                }
                match outcome {
                    ReadOutcome::Open => {}
                    ReadOutcome::Closed => {
                        self.drop_conn(token);
                        return;
                    }
                    ReadOutcome::Violation(v) => self.handle_violation(token, v),
                }
            }
        }
        if hangup && !writable {
            // Peer hung up and nothing more can be written to it.
            if let Some(state) = self.conns.get(&token) {
                if !state.conn.wants_write() {
                    self.drop_conn(token);
                    return;
                }
            }
        }
        self.advance_conn(token);
    }

    fn handle_frame(&mut self, token: u64, body: Vec<u8>) {
        enum Action {
            Submit(u64, ServeRequest),
            Immediate(Vec<u8>),
        }
        let action = match decode_any_request(&body) {
            Ok(DecodedRequest::Kernel(RequestFrame { id, req })) => Action::Submit(id, req),
            Ok(DecodedRequest::Health { id }) => Action::Immediate(encode_response(
                &ResponseFrame::direct(id, Ok(ServePayload::Health(self.engine.health()))),
            )),
            Ok(DecodedRequest::Hello { id }) => {
                obs::metrics().counter(SHARD_HELLO_METRIC).add(1);
                let robots = self
                    .engine
                    .health()
                    .robots
                    .into_iter()
                    .map(|r| r.name)
                    .collect();
                Action::Immediate(encode_hello_response(
                    id,
                    &HelloInfo {
                        shard: self.shard_name.clone(),
                        robots,
                    },
                ))
            }
            Err(e) => Action::Immediate(encode_response(&ResponseFrame::direct(
                0,
                Err(ServeError::BadRequest(e.to_string())),
            ))),
        };
        match action {
            Action::Submit(id, req) => {
                let state = match self.conns.get_mut(&token) {
                    Some(s) => s,
                    None => return,
                };
                let seq = state.next_seq;
                state.next_seq += 1;
                match self.engine.submit(req) {
                    Ok(ticket) => {
                        state.pending.push_back(Slot {
                            seq,
                            state: SlotState::Waiting(ticket.clone(), id),
                        });
                        let handle = Arc::clone(&self.handles[self.index]);
                        ticket.watch(move || handle.post(LoopMsg::Done(token, seq)));
                    }
                    Err(e) => {
                        let body = encode_response(&ResponseFrame::direct(id, Err(e)));
                        let wire = wire_response(&self.engine, id, body);
                        state.pending.push_back(Slot {
                            seq,
                            state: SlotState::Ready(wire),
                        });
                    }
                }
            }
            Action::Immediate(resp_body) => {
                let id = u64::from_le_bytes(resp_body[..8].try_into().expect("id bytes"));
                let wire = wire_response(&self.engine, id, resp_body);
                if let Some(state) = self.conns.get_mut(&token) {
                    let seq = state.next_seq;
                    state.next_seq += 1;
                    state.pending.push_back(Slot {
                        seq,
                        state: SlotState::Ready(wire),
                    });
                }
            }
        }
    }

    fn handle_violation(&mut self, token: u64, violation: FrameViolation) {
        let err = match violation {
            FrameViolation::TooLarge(len) => ProtoError::FrameTooLarge(len),
            FrameViolation::BadChecksum => ProtoError::ChecksumMismatch,
        };
        // Typed goodbye on id 0, then close once the FIFO flushes: the
        // stream position is unrecoverable, but the client learns *why*
        // instead of seeing a bare EOF.
        let body = encode_response(&ResponseFrame::direct(
            0,
            Err(ServeError::BadRequest(err.to_string())),
        ));
        let wire = wire_response(&self.engine, 0, body);
        if let Some(state) = self.conns.get_mut(&token) {
            let seq = state.next_seq;
            state.next_seq += 1;
            state.pending.push_back(Slot {
                seq,
                state: SlotState::Ready(wire),
            });
            state.closing = true;
        }
    }

    fn ticket_done(&mut self, token: u64, seq: u64) {
        let state = match self.conns.get_mut(&token) {
            Some(s) => s,
            // Connection already gone; the result is simply dropped,
            // matching the old writer's behaviour for vanished clients.
            None => return,
        };
        let slot = match state.pending.iter_mut().find(|s| s.seq == seq) {
            Some(s) => s,
            None => return,
        };
        if let SlotState::Waiting(ticket, id) = &slot.state {
            let id = *id;
            let result: ServeResult = ticket.try_take().unwrap_or(Err(ServeError::WorkerCrashed));
            let body = encode_response(&ResponseFrame::direct(id, result));
            slot.state = SlotState::Ready(wire_response(&self.engine, id, body));
        }
        self.advance_conn(token);
    }

    /// Moves the completed prefix of the FIFO into the out-buffer,
    /// flushes, and reconciles poller interest / close state.
    fn advance_conn(&mut self, token: u64) {
        let mut drop_after = false;
        let draining = self.shared.draining.load(Ordering::SeqCst);
        {
            let state = match self.conns.get_mut(&token) {
                Some(s) => s,
                None => return,
            };
            while let Some(front) = state.pending.front_mut() {
                match &mut front.state {
                    SlotState::Ready(wire) => {
                        let bytes = std::mem::take(wire);
                        state.conn.queue_wire(&bytes);
                        front.state = SlotState::Sent;
                        state.pending.pop_front();
                    }
                    SlotState::Sent => {
                        state.pending.pop_front();
                    }
                    SlotState::Waiting(..) => break,
                }
            }
            match state.conn.flush() {
                FlushOutcome::Closed => drop_after = true,
                FlushOutcome::Drained | FlushOutcome::Blocked => {}
            }
            if !drop_after && state.closing && state.pending.is_empty() && !state.conn.wants_write()
            {
                drop_after = true;
            }
            if !drop_after {
                let want = Interest {
                    readable: !state.closing && !draining,
                    writable: state.conn.wants_write(),
                };
                if want != state.interest {
                    if self.poller.modify(state.conn.fd(), token, want).is_err() {
                        drop_after = true;
                    } else {
                        state.interest = want;
                    }
                }
            }
        }
        if drop_after {
            self.drop_conn(token);
        }
    }

    fn drop_conn(&mut self, token: u64) {
        if let Some(state) = self.conns.remove(&token) {
            let _ = self.poller.deregister(state.conn.fd());
            obs::metrics().gauge(SHARD_CONNS_METRIC).add(-1.0);
        }
    }
}

/// Frames a response body and applies deterministic chaos wire
/// corruption, keyed by correlation id exactly as the old writer thread
/// did.
fn wire_response(engine: &Engine, id: u64, body: Vec<u8>) -> Vec<u8> {
    let mut wire = frame_bytes(&body);
    if let Some(plan) = engine.fault_plan() {
        if plan.fires(FaultSite::FrameCorrupt, id) {
            plan.corrupt_wire(id, &mut wire);
            obs::metrics().counter(FAULT_CORRUPT_METRIC).add(1);
        }
    }
    wire
}

/// A blocking client for the serve protocol. Not thread-safe; use one
/// per thread (the load generator does exactly that).
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a running [`Server`] (or router).
    ///
    /// # Errors
    ///
    /// Propagates connection I/O errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, next_id: 0 })
    }

    /// Bounds how long [`Client::recv`] blocks for a frame. The load
    /// generator sets this as its per-request timeout budget so a
    /// truncated (stream-desyncing) frame resolves as a timeout instead
    /// of a hang.
    ///
    /// # Errors
    ///
    /// Propagates socket-option I/O errors.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// The id the next [`Client::send`] will use.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Overrides the next correlation id. A reconnecting client carries
    /// its id sequence forward so retried requests get *fresh* ids —
    /// with deterministic chaos keyed on the id, re-using an id would
    /// deterministically re-trigger the same frame corruption forever.
    pub fn set_next_id(&mut self, id: u64) {
        self.next_id = id;
    }

    /// Sends a request without waiting; returns its correlation id.
    /// Pair with [`Client::recv`] to pipeline.
    ///
    /// # Errors
    ///
    /// Propagates write I/O errors.
    pub fn send(&mut self, req: &ServeRequest) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let body = encode_request(&RequestFrame {
            id,
            req: req.clone(),
        });
        write_frame(&mut self.stream, &body)?;
        Ok(id)
    }

    /// Receives the next response frame. Against a single-engine
    /// [`Server`] responses arrive in submission order; against a
    /// router they arrive in *completion* order — correlate by
    /// [`ResponseFrame::id`].
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` if the server closed the connection; `InvalidData`
    /// for an undecodable, corrupted, or oversized frame.
    pub fn recv(&mut self) -> io::Result<ResponseFrame> {
        let body = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        decode_response(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Round-trips one request.
    ///
    /// # Errors
    ///
    /// As [`Client::send`] and [`Client::recv`].
    pub fn call(&mut self, req: &ServeRequest) -> io::Result<ServeResult> {
        let id = self.send(req)?;
        let frame = self.recv()?;
        debug_assert_eq!(frame.id, id, "single outstanding request");
        Ok(frame.result)
    }

    /// As [`Client::call`], also reporting whether the router answered
    /// from a fallback shard.
    ///
    /// # Errors
    ///
    /// As [`Client::send`] and [`Client::recv`].
    pub fn call_tracked(&mut self, req: &ServeRequest) -> io::Result<ResponseFrame> {
        let id = self.send(req)?;
        let frame = self.recv()?;
        debug_assert_eq!(frame.id, id, "single outstanding request");
        Ok(frame)
    }

    /// Round-trips a health probe.
    ///
    /// # Errors
    ///
    /// I/O errors as [`Client::recv`]; `InvalidData` if the server
    /// answers with something other than a health payload.
    pub fn health(&mut self) -> io::Result<crate::engine::HealthReport> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &encode_health_request(id))?;
        let frame = self.recv()?;
        match frame.result {
            Ok(ServePayload::Health(report)) => Ok(report),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a health payload, got {other:?}"),
            )),
        }
    }

    /// Round-trips a hello handshake: the peer's shard identity and
    /// robot roster. A shard answers with its own name; a router answers
    /// `"router"` with the fleet's merged roster.
    ///
    /// # Errors
    ///
    /// I/O errors as [`Client::recv`]; `InvalidData` if the peer answers
    /// with something other than a hello frame.
    pub fn hello(&mut self) -> io::Result<crate::proto::HelloInfo> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &encode_hello_request(id))?;
        let body = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        let (got, info) = decode_hello_response(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        debug_assert_eq!(got, id, "single outstanding request");
        Ok(info)
    }
}
