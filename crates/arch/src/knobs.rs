//! The generator knobs (paper Fig. 8: `PEs_fwd,bwd`, `size_block`).

/// How many block mat-mul units a design instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MatmulUnits {
    /// One unit per robot link — the paper's Fig. 6c strategy of feeding
    /// nonzero blocks into "parallel per-link PEs". The default for
    /// generated designs.
    PerLink,
    /// A fixed unit count (the Fig. 15 block-size study uses 3).
    Fixed(usize),
}

impl MatmulUnits {
    /// Resolves to a concrete unit count for an `n`-link robot.
    pub fn resolve(self, n: usize) -> usize {
        match self {
            MatmulUnits::PerLink => n.max(1),
            MatmulUnits::Fixed(u) => u,
        }
    }
}

/// The RoboShape generator's tunable parameters for one design point.
///
/// # Examples
///
/// ```
/// use roboshape_arch::AcceleratorKnobs;
///
/// // The paper's iiwa configuration: PEs_fwd,bwd = 7, size_block = 7.
/// let knobs = AcceleratorKnobs::symmetric(7, 7);
/// assert_eq!(knobs.pe_fwd, 7);
/// assert_eq!(knobs.pe_bwd, 7);
/// assert_eq!(knobs.block_size, 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AcceleratorKnobs {
    /// Forward-traversal processing elements.
    pub pe_fwd: usize,
    /// Backward-traversal processing elements.
    pub pe_bwd: usize,
    /// Block size for the mass-matrix multiplication.
    pub block_size: usize,
    /// Block mat-mul unit allocation (per-link by default).
    pub matmul_units: MatmulUnits,
}

impl AcceleratorKnobs {
    /// Creates a knob setting with distinct forward/backward PE counts.
    ///
    /// # Panics
    ///
    /// Panics if any knob is zero.
    pub fn new(pe_fwd: usize, pe_bwd: usize, block_size: usize) -> AcceleratorKnobs {
        assert!(
            pe_fwd > 0 && pe_bwd > 0 && block_size > 0,
            "knobs must be positive"
        );
        AcceleratorKnobs {
            pe_fwd,
            pe_bwd,
            block_size,
            matmul_units: MatmulUnits::PerLink,
        }
    }

    /// The paper's Table 2 style setting: `PEs_fwd = PEs_bwd = pes`.
    ///
    /// # Panics
    ///
    /// Panics if any knob is zero.
    pub fn symmetric(pes: usize, block_size: usize) -> AcceleratorKnobs {
        AcceleratorKnobs::new(pes, pes, block_size)
    }

    /// Overrides the mat-mul unit count with a fixed value.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`.
    pub fn with_matmul_units(mut self, units: usize) -> AcceleratorKnobs {
        assert!(units > 0, "knobs must be positive");
        self.matmul_units = MatmulUnits::Fixed(units);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let k = AcceleratorKnobs::new(3, 5, 4);
        assert_eq!((k.pe_fwd, k.pe_bwd, k.block_size), (3, 5, 4));
        assert_eq!(k.matmul_units, MatmulUnits::PerLink);
        assert_eq!(k.matmul_units.resolve(12), 12);
        let s = AcceleratorKnobs::symmetric(4, 4).with_matmul_units(5);
        assert_eq!((s.pe_fwd, s.pe_bwd), (4, 4));
        assert_eq!(s.matmul_units, MatmulUnits::Fixed(5));
        assert_eq!(s.matmul_units.resolve(12), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_knob_panics() {
        AcceleratorKnobs::new(0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_units_panics() {
        AcceleratorKnobs::symmetric(1, 1).with_matmul_units(0);
    }
}
