//! Workspace-wide observability: tracing spans and a metrics registry.
//!
//! The paper's methodology rests on *deterministic, inspectable* cycle
//! counts ("we leverage the deterministic runtime in clock cycles of our
//! design", Sec. 5.2) — and trusting any performance work on the
//! reproduction requires the same inspectability for the software that
//! produces those counts. This crate is the substrate every hot layer of
//! the workspace reports through (see `docs/ARCHITECTURE.md` for where
//! spans and metrics attach):
//!
//! * **Spans** — [`span`] returns an RAII [`SpanGuard`]; guards nest via
//!   a thread-local span stack (parent/child links survive into the
//!   emitted [`SpanRecord`]s) and carry monotonic nanosecond timestamps
//!   measured from one process-wide epoch, so spans from different
//!   threads land on one comparable timeline.
//! * **Sinks** — span records are delivered to a process-wide [`Sink`]
//!   ([`set_sink`]/[`clear_sink`]). The default is disabled tracing: no
//!   sink, and [`span`] compiles down to a single relaxed atomic load
//!   (see [`enabled`]), so instrumentation left in hot paths costs
//!   nothing measurable when tracing is off. [`ChromeTraceSink`] records
//!   everything and renders Chrome `trace_event` JSON loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//! * **Metrics** — [`metrics`] returns the global [`MetricsRegistry`] of
//!   named [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s, all
//!   with lock-free atomic hot paths (the registry lock is only taken to
//!   resolve a name to a handle; call sites cache the `Arc` handle).
//!   [`MetricsSnapshot`] renders a flat JSON document (`--metrics`) or a
//!   one-screen text summary (`experiments all`).
//! * **JSON** — [`json`] holds the dependency-free writer/validator the
//!   sinks use (the workspace vendors no serde implementation).
//!
//! Entry points: [`span`] + [`SpanGuard`] for tracing, [`metrics`] +
//! [`MetricsRegistry`] for metrics, [`set_sink`] + [`ChromeTraceSink`]
//! for capture.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//!
//! let sink = Arc::new(roboshape_obs::ChromeTraceSink::new());
//! roboshape_obs::set_sink(sink.clone());
//! {
//!     let _outer = roboshape_obs::span("demo", "outer");
//!     let _inner = roboshape_obs::span("demo", "inner"); // child of outer
//! }
//! roboshape_obs::clear_sink();
//! let trace = sink.to_chrome_json();
//! assert!(trace.contains("\"traceEvents\""));
//! roboshape_obs::json::validate(&trace).unwrap();
//!
//! let evals = roboshape_obs::metrics().counter("demo.evals");
//! evals.add(2);
//! assert!(evals.get() >= 2);
//! ```

#![deny(missing_docs)]

pub mod json;
mod metrics;
mod sink;
mod span;

pub use metrics::{
    metrics, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use sink::{ChromeTraceSink, CollectingSink, CounterRecord, NoopSink, Sink, SpanRecord};
pub use span::{now_ns, span, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Whether a sink is installed. A single relaxed load — the entire cost
/// of a [`span`] call while tracing is disabled.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static RwLock<Option<Arc<dyn Sink>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Sink>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// `true` while a [`Sink`] is installed. Instrumentation wrapping work
/// that exists *only* to be observed (e.g. assembling span argument
/// strings) should check this first; [`span`] already does.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the process-wide span sink and enables tracing.
///
/// Replaces any previously installed sink; spans already in flight are
/// delivered to whichever sink is installed when their guard drops.
pub fn set_sink(sink: Arc<dyn Sink>) {
    *sink_slot().write().unwrap_or_else(|e| e.into_inner()) = Some(sink);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Removes the installed sink (if any) and disables tracing, returning
/// span emission to its near-zero disabled cost.
pub fn clear_sink() {
    ENABLED.store(false, Ordering::Relaxed);
    *sink_slot().write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Delivers a finished span record to the installed sink, if tracing is
/// enabled. [`SpanGuard`] calls this on drop; manual instrumentation that
/// assembles its own [`SpanRecord`]s (e.g. replaying buffered events) may
/// call it directly.
pub fn emit_span(record: &SpanRecord) {
    if !enabled() {
        return;
    }
    if let Some(sink) = sink_slot()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
    {
        sink.span(record);
    }
}

/// Delivers a counter increment to the installed sink, if tracing is
/// enabled (Chrome traces render these as counter tracks). This is about
/// *trace capture*; the queryable totals live in [`metrics`] regardless.
pub fn emit_counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    if let Some(sink) = sink_slot()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
    {
        sink.counter(name, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests in this module (and doctests elsewhere) mutate the global
    /// sink; serialize them.
    pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_emits_nothing() {
        let _l = test_lock();
        clear_sink();
        let collector = Arc::new(CollectingSink::new());
        {
            let _s = span("test", "dropped");
        }
        assert!(!enabled());
        assert_eq!(collector.spans().len(), 0);
    }

    #[test]
    fn spans_nest_within_a_thread() {
        let _l = test_lock();
        let collector = Arc::new(CollectingSink::new());
        set_sink(collector.clone());
        {
            let _outer = span("test", "outer");
            {
                let _inner = span("test", "inner");
            }
            let _sibling = span("test", "sibling");
        }
        clear_sink();
        let spans = collector.spans();
        assert_eq!(spans.len(), 3);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let sibling = spans.iter().find(|s| s.name == "sibling").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(sibling.parent, Some(outer.id));
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn span_nesting_is_independent_across_threads() {
        let _l = test_lock();
        let collector = Arc::new(CollectingSink::new());
        set_sink(collector.clone());
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    let _outer = span("test", if t % 2 == 0 { "even" } else { "odd" });
                    for _ in 0..8 {
                        let _inner = span("test", "leaf");
                    }
                });
            }
        });
        clear_sink();
        let spans = collector.spans();
        assert_eq!(spans.len(), 4 + 4 * 8);
        // Each leaf's parent is an outer span *on its own thread*.
        for leaf in spans.iter().filter(|s| s.name == "leaf") {
            let parent = spans
                .iter()
                .find(|s| Some(s.id) == leaf.parent)
                .expect("leaf has a recorded parent");
            assert_eq!(parent.thread, leaf.thread);
            assert_ne!(parent.name, "leaf");
        }
        // Thread ids are distinct per spawned thread.
        let mut threads: Vec<u64> = spans
            .iter()
            .filter(|s| s.name != "leaf")
            .map(|s| s.thread)
            .collect();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), 4);
    }

    #[test]
    fn sink_swap_under_concurrency_loses_no_wellformedness() {
        let _l = test_lock();
        let a = Arc::new(CollectingSink::new());
        let b = Arc::new(CollectingSink::new());
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let _s = span("swap", "work");
                        std::hint::spin_loop();
                    }
                });
            }
            for _ in 0..200 {
                set_sink(a.clone());
                set_sink(b.clone());
                clear_sink();
            }
            stop.store(true, Ordering::Relaxed);
        });
        clear_sink();
        // No panics, and every record that landed anywhere is complete.
        for s in a.spans().iter().chain(b.spans().iter()) {
            assert_eq!(s.name, "work");
            assert_eq!(s.cat, "swap");
            assert!(s.id > 0);
        }
    }

    #[test]
    fn emit_counter_reaches_the_sink() {
        let _l = test_lock();
        let collector = Arc::new(CollectingSink::new());
        set_sink(collector.clone());
        emit_counter("test.hits", 3);
        emit_counter("test.hits", 2);
        clear_sink();
        emit_counter("test.hits", 100); // dropped: tracing disabled
        let counters = collector.counters();
        assert_eq!(counters.len(), 2);
        assert_eq!(counters[0].name, "test.hits");
        assert_eq!(counters[0].delta + counters[1].delta, 5);
    }
}
