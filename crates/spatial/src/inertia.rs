//! Spatial (6×6) rigid-body inertia.

use crate::{ForceVec, MotionVec};
use roboshape_linalg::{Mat3, Mat6, Vec3};

/// The spatial inertia of a rigid link, expressed at the link frame origin.
///
/// Stored compactly as `(m, h, I)` where `m` is the mass, `h = m·c` the
/// first moment of mass (`c` = centre of mass in link coordinates) and `I`
/// the 3×3 rotational inertia about the link frame origin. As a 6×6 matrix:
///
/// ```text
/// I = [ I    ĥ  ]
///     [ ĥᵀ   m·1 ]
/// ```
///
/// # Examples
///
/// ```
/// use roboshape_linalg::{Mat3, Vec3};
/// use roboshape_spatial::{MotionVec, SpatialInertia};
///
/// // A 2 kg point mass 0.5 m along x.
/// let inertia = SpatialInertia::from_mass_com_inertia(
///     2.0,
///     Vec3::new(0.5, 0.0, 0.0),
///     Mat3::zero(),
/// );
/// // Pure linear acceleration along x costs m·a of force.
/// let f = inertia.apply(MotionVec::from_parts(Vec3::ZERO, Vec3::unit_x()));
/// assert!((f.linear().x - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpatialInertia {
    mass: f64,
    h: Vec3,
    i_origin: Mat3,
}

impl SpatialInertia {
    /// The zero inertia (massless link).
    #[inline]
    pub fn zero() -> SpatialInertia {
        SpatialInertia {
            mass: 0.0,
            h: Vec3::ZERO,
            i_origin: Mat3::zero(),
        }
    }

    /// Builds from mass, centre-of-mass position `c` (link coordinates) and
    /// the rotational inertia about the *centre of mass*. The stored
    /// rotational inertia is shifted to the frame origin with the parallel
    /// axis theorem: `I_o = I_c + m·ĉ·ĉᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `mass` is negative.
    #[inline]
    pub fn from_mass_com_inertia(mass: f64, com: Vec3, inertia_com: Mat3) -> SpatialInertia {
        assert!(mass >= 0.0, "mass must be non-negative");
        let c_skew = com.skew();
        let shift = (c_skew * c_skew.transpose()) * mass;
        SpatialInertia {
            mass,
            h: com * mass,
            i_origin: inertia_com + shift,
        }
    }

    /// A solid-sphere-like link used in tests and synthetic robots:
    /// mass `m` at `com`, isotropic rotational inertia `i` about the CoM.
    #[inline]
    pub fn point_like(mass: f64, com: Vec3, i: f64) -> SpatialInertia {
        SpatialInertia::from_mass_com_inertia(mass, com, Mat3::diagonal(Vec3::new(i, i, i)))
    }

    /// Link mass.
    #[inline]
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// First moment of mass `h = m·c`.
    #[inline]
    pub fn first_moment(&self) -> Vec3 {
        self.h
    }

    /// Centre of mass, when the link has mass.
    #[inline]
    pub fn com(&self) -> Option<Vec3> {
        if self.mass > 0.0 {
            Some(self.h * (1.0 / self.mass))
        } else {
            None
        }
    }

    /// Rotational inertia about the link frame origin.
    #[inline]
    pub fn rotational(&self) -> Mat3 {
        self.i_origin
    }

    /// Rotational inertia about the centre of mass (inverse of the parallel
    /// axis shift applied at construction): `I_c = I_o − m·ĉ·ĉᵀ`. Returns
    /// the origin inertia unchanged for massless links.
    #[inline]
    pub fn rotational_about_com(&self) -> Mat3 {
        match self.com() {
            Some(c) => {
                let cs = c.skew();
                self.i_origin - (cs * cs.transpose()) * self.mass
            }
            None => self.i_origin,
        }
    }

    /// The full 6×6 spatial inertia matrix.
    #[inline]
    pub fn to_mat6(&self) -> Mat6 {
        let h_skew = self.h.skew();
        Mat6::from_blocks(
            self.i_origin,
            h_skew,
            h_skew.transpose(),
            Mat3::identity() * self.mass,
        )
    }

    /// Applies the inertia to a motion vector: `f = I·v` (momentum from
    /// velocity, or the `I·a` term of the Newton–Euler equation).
    #[inline]
    pub fn apply(&self, v: MotionVec) -> ForceVec {
        let w = v.angular();
        let l = v.linear();
        ForceVec::from_parts(
            self.i_origin * w + self.h.cross(l),
            l * self.mass - self.h.cross(w),
        )
    }

    /// Sum of two inertias expressed in the same frame (composite bodies —
    /// the CRBA accumulation step).
    #[inline]
    pub fn add(&self, other: &SpatialInertia) -> SpatialInertia {
        SpatialInertia {
            mass: self.mass + other.mass,
            h: self.h + other.h,
            i_origin: self.i_origin + other.i_origin,
        }
    }

    /// Transforms the inertia from frame A into frame B given `x = ᴮXᴬ`:
    /// `I_B = X⁻ᵀ I_A X⁻¹` (used when accumulating composite inertias up
    /// the tree in the CRBA).
    #[inline]
    pub fn transform(&self, x: &crate::Xform) -> SpatialInertia {
        // Work with explicit blocks: E (rotation A→B), r (B origin in A).
        let e = x.rotation();
        let r = x.translation();
        // New mass is invariant; the CoM position maps as c_B = E (c_A − r).
        let mass = self.mass;
        let h_b = e * (self.h - r * mass);
        // Rotational inertia about the new origin, derived from the block
        // expansion of X⁻ᵀ I X⁻¹ (verified against that congruence in the
        // tests): shift within A coordinates, then rotate:
        //   I_shifted = I_A + m·r̂·r̂ᵀ + ĥ·r̂ + r̂·ĥ
        let r_skew = r.skew();
        let h_skew = self.h.skew();
        let shifted = self.i_origin
            + (r_skew * r_skew.transpose()) * mass
            + (h_skew * r_skew)
            + (r_skew * h_skew);
        let i_b = e * shifted * e.transpose();
        SpatialInertia {
            mass,
            h: h_b,
            i_origin: i_b,
        }
    }

    /// Kinetic energy `½ vᵀ I v` of a body moving with velocity `v`.
    #[inline]
    pub fn kinetic_energy(&self, v: MotionVec) -> f64 {
        0.5 * v.dot_force(self.apply(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xform;
    use proptest::prelude::*;

    fn arb_v3(r: f64) -> impl Strategy<Value = Vec3> {
        (-r..r, -r..r, -r..r).prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    fn arb_inertia() -> impl Strategy<Value = SpatialInertia> {
        (0.1..10.0f64, arb_v3(1.0), 0.01..2.0f64)
            .prop_map(|(m, c, i)| SpatialInertia::point_like(m, c, i))
    }

    fn arb_xform() -> impl Strategy<Value = Xform> {
        (arb_v3(1.0), arb_v3(2.0), -3.0..3.0f64).prop_filter_map("axis", |(axis, t, a)| {
            if axis.norm() < 1e-3 {
                None
            } else {
                Some(Xform::from_rotation(axis, a).compose(&Xform::from_translation(t)))
            }
        })
    }

    fn arb_motion() -> impl Strategy<Value = MotionVec> {
        (arb_v3(3.0), arb_v3(3.0)).prop_map(|(a, l)| MotionVec::from_parts(a, l))
    }

    #[test]
    fn point_mass_momentum() {
        let inertia = SpatialInertia::from_mass_com_inertia(3.0, Vec3::ZERO, Mat3::zero());
        let f = inertia.apply(MotionVec::from_parts(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0)));
        assert!((f.linear() - Vec3::new(6.0, 0.0, 0.0)).norm() < 1e-12);
        assert!(f.angular().norm() < 1e-12);
    }

    #[test]
    fn com_roundtrip() {
        let c = Vec3::new(0.1, -0.2, 0.3);
        let inertia = SpatialInertia::point_like(2.5, c, 0.2);
        assert!((inertia.com().unwrap() - c).norm() < 1e-12);
        assert!(SpatialInertia::zero().com().is_none());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mass_panics() {
        SpatialInertia::from_mass_com_inertia(-1.0, Vec3::ZERO, Mat3::zero());
    }

    #[test]
    fn parallel_axis_offset_increases_inertia() {
        let at_origin = SpatialInertia::point_like(1.0, Vec3::ZERO, 0.0);
        let offset = SpatialInertia::point_like(1.0, Vec3::unit_x(), 0.0);
        // Rotation about z: off-origin point mass resists more.
        let spin = MotionVec::from_parts(Vec3::unit_z(), Vec3::ZERO);
        assert!(offset.kinetic_energy(spin) > at_origin.kinetic_energy(spin) + 0.4);
    }

    proptest! {
        #[test]
        fn apply_matches_mat6(inertia in arb_inertia(), v in arb_motion()) {
            let direct = inertia.apply(v);
            let via_matrix = ForceVec::from_vec6(inertia.to_mat6() * v.as_vec6());
            prop_assert!((direct - via_matrix).norm() < 1e-9);
        }

        #[test]
        fn inertia_matrix_is_symmetric(inertia in arb_inertia()) {
            let m = inertia.to_mat6();
            prop_assert!(m.distance(&m.transpose()) < 1e-9);
        }

        #[test]
        fn kinetic_energy_nonnegative(inertia in arb_inertia(), v in arb_motion()) {
            prop_assert!(inertia.kinetic_energy(v) >= -1e-9);
        }

        /// I_B = X⁻ᵀ I_A X⁻¹ as a matrix congruence.
        #[test]
        fn transform_matches_congruence(inertia in arb_inertia(), x in arb_xform()) {
            let direct = inertia.transform(&x).to_mat6();
            let xinv = x.inverse().to_mat6();
            let via_matrix = xinv.transpose() * inertia.to_mat6() * xinv;
            prop_assert!(direct.distance(&via_matrix) < 1e-7);
        }

        /// Kinetic energy is frame-invariant.
        #[test]
        fn energy_invariance(inertia in arb_inertia(), x in arb_xform(), v in arb_motion()) {
            let e_a = inertia.kinetic_energy(v);
            let e_b = inertia.transform(&x).kinetic_energy(x.apply_motion(v));
            prop_assert!((e_a - e_b).abs() < 1e-6 * (1.0 + e_a.abs()));
        }

        #[test]
        fn add_is_linear_in_apply(a in arb_inertia(), b in arb_inertia(), v in arb_motion()) {
            let lhs = a.add(&b).apply(v);
            let rhs = a.apply(v) + b.apply(v);
            prop_assert!((lhs - rhs).norm() < 1e-9);
        }
    }
}
