//! Dynamically-sized dense matrices and vectors.
//!
//! Joint-space quantities (the mass matrix, the dynamics-gradient matrices)
//! have dimension `N` = number of robot links, so they are heap-allocated.
//! Storage is row-major.

use core::fmt;
use core::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dynamically-sized dense column vector.
pub type DVec = Vec<f64>;

/// A dynamically-sized dense matrix, row-major.
///
/// # Examples
///
/// ```
/// use roboshape_linalg::DMat;
/// let m = DMat::identity(3);
/// assert_eq!(m[(1, 1)], 1.0);
/// assert_eq!(m[(0, 1)], 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DMat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// Creates a `rows × cols` matrix of zeros.
    #[inline]
    pub fn zeros(rows: usize, cols: usize) -> DMat {
        DMat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    #[inline]
    pub fn identity(n: usize) -> DMat {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    #[inline]
    pub fn from_rows(rows: &[&[f64]]) -> DMat {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = DMat::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "inconsistent row length in DMat::from_rows");
            for (j, v) in row.iter().enumerate() {
                m[(i, j)] = *v;
            }
        }
        m
    }

    /// Builds a matrix from a function of the index pair.
    #[inline]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> DMat {
        let mut m = DMat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix transpose.
    #[inline]
    pub fn transpose(&self) -> DMat {
        DMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    #[inline]
    pub fn mul_vec(&self, v: &[f64]) -> DVec {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            out[i] = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Matrix–matrix product.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    #[inline]
    pub fn mul_mat(&self, other: &DMat) -> DMat {
        assert_eq!(self.cols, other.rows, "dimension mismatch in mul_mat");
        let mut out = DMat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Returns a copy scaled by `s`.
    #[inline]
    pub fn scaled(&self, s: f64) -> DMat {
        let mut m = self.clone();
        for v in &mut m.data {
            *v *= s;
        }
        m
    }

    /// Maximum absolute entry of `self - other`; `None` when the shapes
    /// differ.
    #[inline]
    pub fn max_abs_diff(&self, other: &DMat) -> Option<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// Maximum absolute entry.
    #[inline]
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).fold(0.0, f64::max)
    }

    /// `true` if the matrix is symmetric within `eps`.
    #[inline]
    pub fn is_symmetric(&self, eps: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > eps {
                    return false;
                }
            }
        }
        true
    }

    /// Count of entries with magnitude above `eps`.
    #[inline]
    pub fn nnz(&self, eps: f64) -> usize {
        self.data.iter().filter(|v| v.abs() > eps).count()
    }

    /// Fraction of entries that are (numerically) zero, in `[0, 1]`.
    #[inline]
    pub fn sparsity(&self, eps: f64) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz(eps) as f64 / self.data.len() as f64
    }

    /// Copies the rectangular block starting at `(r0, c0)` of shape
    /// `(block_rows, block_cols)`, zero-padding past the matrix edge.
    #[inline]
    pub fn block_padded(&self, r0: usize, c0: usize, block_rows: usize, block_cols: usize) -> DMat {
        DMat::from_fn(block_rows, block_cols, |i, j| {
            let (r, c) = (r0 + i, c0 + j);
            if r < self.rows && c < self.cols {
                self[(r, c)]
            } else {
                0.0
            }
        })
    }

    /// Adds `block` into `self` at offset `(r0, c0)`, ignoring entries that
    /// fall past the matrix edge (the inverse of [`DMat::block_padded`]).
    #[inline]
    pub fn add_block(&mut self, r0: usize, c0: usize, block: &DMat) {
        for i in 0..block.rows {
            for j in 0..block.cols {
                let (r, c) = (r0 + i, c0 + j);
                if r < self.rows && c < self.cols {
                    self[(r, c)] += block[(i, j)];
                }
            }
        }
    }

    /// Row-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major data slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

impl Index<(usize, usize)> for DMat {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DMat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &DMat {
    type Output = DMat;
    #[inline]
    fn add(self, o: &DMat) -> DMat {
        assert_eq!((self.rows, self.cols), (o.rows, o.cols), "shape mismatch");
        let mut m = self.clone();
        for (a, b) in m.data.iter_mut().zip(o.data.iter()) {
            *a += b;
        }
        m
    }
}

impl Sub for &DMat {
    type Output = DMat;
    #[inline]
    fn sub(self, o: &DMat) -> DMat {
        assert_eq!((self.rows, self.cols), (o.rows, o.cols), "shape mismatch");
        let mut m = self.clone();
        for (a, b) in m.data.iter_mut().zip(o.data.iter()) {
            *a -= b;
        }
        m
    }
}

impl Mul for &DMat {
    type Output = DMat;
    #[inline]
    fn mul(self, o: &DMat) -> DMat {
        self.mul_mat(o)
    }
}

impl fmt::Display for DMat {
    #[inline]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_mat(max: usize) -> impl Strategy<Value = DMat> {
        (1..=max, 1..=max).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-10.0..10.0f64, r * c).prop_map(move |data| DMat {
                rows: r,
                cols: c,
                data,
            })
        })
    }

    #[test]
    fn identity_times_vector() {
        let m = DMat::identity(4);
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.mul_vec(&v), v);
    }

    #[test]
    fn from_rows_and_index() {
        let m = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = DMat::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn block_padded_pads_with_zeros() {
        let m = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m.block_padded(1, 1, 2, 2);
        assert_eq!(b[(0, 0)], 4.0);
        assert_eq!(b[(0, 1)], 0.0);
        assert_eq!(b[(1, 0)], 0.0);
        assert_eq!(b[(1, 1)], 0.0);
    }

    #[test]
    fn add_block_is_inverse_of_block_padded_inside() {
        let m = DMat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let b = m.block_padded(1, 1, 2, 2);
        let mut acc = DMat::zeros(3, 3);
        acc.add_block(1, 1, &b);
        assert_eq!(acc[(1, 1)], 5.0);
        assert_eq!(acc[(2, 2)], 9.0);
        assert_eq!(acc[(0, 0)], 0.0);
    }

    #[test]
    fn sparsity_of_diagonal() {
        let m = DMat::identity(4);
        assert_eq!(m.nnz(1e-12), 4);
        assert!((m.sparsity(1e-12) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn symmetric_detection() {
        let m = DMat::from_rows(&[&[2.0, 1.0], &[1.0, 5.0]]);
        assert!(m.is_symmetric(1e-12));
        let n = DMat::from_rows(&[&[2.0, 1.0], &[0.0, 5.0]]);
        assert!(!n.is_symmetric(1e-12));
        assert!(!DMat::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn display_renders_rows() {
        let s = format!("{}", DMat::identity(2));
        assert_eq!(s.lines().count(), 2);
    }

    proptest! {
        #[test]
        fn transpose_involution(m in arb_mat(6)) {
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn matmul_associativity(
            (a, b, c) in (1usize..5, 1usize..5, 1usize..5, 1usize..5).prop_flat_map(|(m, n, p, q)| {
                (
                    proptest::collection::vec(-10.0..10.0f64, m * n),
                    proptest::collection::vec(-10.0..10.0f64, n * p),
                    proptest::collection::vec(-10.0..10.0f64, p * q),
                ).prop_map(move |(da, db, dc)| (
                    DMat::from_fn(m, n, |i, j| da[i * n + j]),
                    DMat::from_fn(n, p, |i, j| db[i * p + j]),
                    DMat::from_fn(p, q, |i, j| dc[i * q + j]),
                ))
            })
        ) {
            let lhs = a.mul_mat(&b).mul_mat(&c);
            let rhs = a.mul_mat(&b.mul_mat(&c));
            prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-6);
        }

        #[test]
        fn matmul_transpose_identity(
            (a, b) in (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(m, n, p)| {
                (
                    proptest::collection::vec(-10.0..10.0f64, m * n),
                    proptest::collection::vec(-10.0..10.0f64, n * p),
                ).prop_map(move |(da, db)| (
                    DMat::from_fn(m, n, |i, j| da[i * n + j]),
                    DMat::from_fn(n, p, |i, j| db[i * p + j]),
                ))
            })
        ) {
            let lhs = a.mul_mat(&b).transpose();
            let rhs = b.transpose().mul_mat(&a.transpose());
            prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-8);
        }

        #[test]
        fn identity_is_neutral(m in arb_mat(6)) {
            let i_left = DMat::identity(m.rows());
            let i_right = DMat::identity(m.cols());
            prop_assert!(i_left.mul_mat(&m).max_abs_diff(&m).unwrap() < 1e-12);
            prop_assert!(m.mul_mat(&i_right).max_abs_diff(&m).unwrap() < 1e-12);
        }
    }
}
