//! Bounded earliest-deadline-first request queue.
//!
//! One [`EdfQueue`] per registered robot. `std::sync`'s `Condvar` is used
//! (rather than the vendored `parking_lot`, whose API subset has no
//! condition variable) so workers can block until work arrives.

use crate::engine::{ServeRequest, Ticket};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A request sitting in a robot's queue, with everything needed to
/// execute it and fulfil its ticket.
#[derive(Debug)]
pub(crate) struct Pending {
    /// Absolute deadline; `None` sorts after every concrete deadline.
    pub deadline: Option<Instant>,
    /// Admission sequence number — FIFO tiebreak among equal deadlines.
    pub seq: u64,
    /// The request payload.
    pub req: ServeRequest,
    /// When the request was accepted (for the latency histogram).
    pub enqueued: Instant,
    /// The caller's handle awaiting the result.
    pub ticket: Ticket,
    /// Whether this request holds its robot's half-open circuit-breaker
    /// probe slot (its outcome must be reported back to the breaker).
    pub probe: bool,
}

/// EDF key: earliest deadline first, `None` last, then admission order.
fn urgency(a: &Pending, b: &Pending) -> Ordering {
    let by_deadline = match (a.deadline, b.deadline) {
        (Some(x), Some(y)) => x.cmp(&y),
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => Ordering::Equal,
    };
    by_deadline.then(a.seq.cmp(&b.seq))
}

impl PartialEq for Pending {
    fn eq(&self, other: &Pending) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Pending) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Pending) -> Ordering {
        // `BinaryHeap` is a max-heap; reverse the urgency order so the
        // heap's top is the most urgent request.
        urgency(self, other).reverse()
    }
}

/// A bounded EDF queue with condition-variable hand-off to workers.
pub(crate) struct EdfQueue {
    heap: Mutex<BinaryHeap<Pending>>,
    available: Condvar,
    capacity: usize,
}

impl EdfQueue {
    pub fn new(capacity: usize) -> EdfQueue {
        EdfQueue {
            heap: Mutex::new(BinaryHeap::new()),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits a request, or hands it back if the queue is at capacity
    /// (the caller sheds it — backpressure is explicit, never blocking).
    // The large Err is the point: shedding returns the whole request so
    // the caller can resolve its ticket; boxing would allocate on the
    // hot admission path.
    #[allow(clippy::result_large_err)]
    pub fn try_push(&self, pending: Pending) -> Result<(), Pending> {
        let mut heap = self.heap.lock().expect("serve queue poisoned");
        if heap.len() >= self.capacity {
            return Err(pending);
        }
        heap.push(pending);
        drop(heap);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until work is available (and the engine is not paused),
    /// then pops the EDF head plus up to `max - 1` further ∇FD requests
    /// to coalesce into one batched execution. Returns `None` once
    /// `closed` is set and the queue has drained — the worker's signal
    /// to exit.
    pub fn next_batch(
        &self,
        max: usize,
        paused: &AtomicBool,
        closed: &AtomicBool,
    ) -> Option<Vec<Pending>> {
        let mut heap = self.heap.lock().expect("serve queue poisoned");
        loop {
            let is_closed = closed.load(AtomicOrdering::SeqCst);
            // Shutdown overrides pause so a paused engine still drains.
            let is_paused = paused.load(AtomicOrdering::SeqCst) && !is_closed;
            if !heap.is_empty() && !is_paused {
                break;
            }
            if is_closed && heap.is_empty() {
                return None;
            }
            // Timed wait: flag flips are also notified, but the timeout
            // bounds the window of any missed wakeup.
            let (guard, _) = self
                .available
                .wait_timeout(heap, Duration::from_millis(25))
                .expect("serve queue poisoned");
            heap = guard;
        }
        let first = heap.pop().expect("non-empty by loop invariant");
        // Only independent single-step ∇FD work coalesces; trajectory
        // workloads (rollouts, mixed chains) pop alone, so one long
        // rollout occupies exactly one worker dispatch and the
        // coalescable batches queued behind it drain normally.
        let coalesce = first.req.kind.is_coalescable();
        let mut batch = vec![first];
        while coalesce && batch.len() < max.max(1) {
            match heap.peek() {
                Some(next) if next.req.kind.is_coalescable() => {
                    batch.push(heap.pop().expect("peeked"));
                }
                _ => break,
            }
        }
        Some(batch)
    }

    /// Wakes every worker parked on this queue (pause/close changed).
    pub fn notify_all(&self) {
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeRequest;

    fn pending(seq: u64, deadline_us: Option<u64>, base: Instant) -> Pending {
        Pending {
            deadline: deadline_us.map(|us| base + Duration::from_micros(us)),
            seq,
            req: ServeRequest::gradient("r", vec![], vec![], vec![]),
            enqueued: base,
            ticket: Ticket::new(),
            probe: false,
        }
    }

    #[test]
    fn pops_in_deadline_order_with_fifo_tiebreak() {
        let q = EdfQueue::new(8);
        let base = Instant::now();
        for (seq, dl) in [(0, Some(500)), (1, None), (2, Some(100)), (3, Some(100))] {
            q.try_push(pending(seq, dl, base)).unwrap();
        }
        let paused = AtomicBool::new(false);
        let closed = AtomicBool::new(false);
        let batch = q.next_batch(4, &paused, &closed).unwrap();
        let seqs: Vec<u64> = batch.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![2, 3, 0, 1], "EDF order, None last, FIFO ties");
    }

    #[test]
    fn sheds_when_full_and_drains_after_close() {
        let q = EdfQueue::new(2);
        let base = Instant::now();
        q.try_push(pending(0, None, base)).unwrap();
        q.try_push(pending(1, None, base)).unwrap();
        assert!(q.try_push(pending(2, None, base)).is_err(), "at capacity");

        let paused = AtomicBool::new(false);
        let closed = AtomicBool::new(true);
        assert_eq!(q.next_batch(1, &paused, &closed).unwrap().len(), 1);
        assert_eq!(q.next_batch(1, &paused, &closed).unwrap().len(), 1);
        assert!(q.next_batch(1, &paused, &closed).is_none(), "drained");
    }

    #[test]
    fn equal_deadlines_pop_in_strict_admission_order() {
        let q = EdfQueue::new(16);
        let base = Instant::now();
        // All the same absolute deadline; admission order scrambled
        // relative to seq so a heap bug would show.
        for seq in [5, 1, 9, 3, 7] {
            q.try_push(pending(seq, Some(1_000), base)).unwrap();
        }
        let paused = AtomicBool::new(false);
        let closed = AtomicBool::new(false);
        let batch = q.next_batch(5, &paused, &closed).unwrap();
        let seqs: Vec<u64> = batch.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![1, 3, 5, 7, 9], "FIFO by seq at equal deadlines");
    }

    #[test]
    fn rejection_hands_back_the_newcomer_and_preserves_queue_contents() {
        let q = EdfQueue::new(2);
        let base = Instant::now();
        // Two lax-deadline requests fill the queue; an *urgent* newcomer
        // is still the one rejected — bounded queues never evict.
        q.try_push(pending(0, Some(10_000), base)).unwrap();
        q.try_push(pending(1, Some(20_000), base)).unwrap();
        let bounced = q.try_push(pending(2, Some(1), base)).unwrap_err();
        assert_eq!(bounced.seq, 2, "the newcomer bounces, urgent or not");

        let paused = AtomicBool::new(false);
        let closed = AtomicBool::new(false);
        let batch = q.next_batch(4, &paused, &closed).unwrap();
        let seqs: Vec<u64> = batch.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![0, 1], "queued requests untouched by the shed");
    }

    #[test]
    fn trajectory_requests_pop_alone_and_never_join_gradient_batches() {
        let q = EdfQueue::new(16);
        let base = Instant::now();
        let push = |seq: u64, req: ServeRequest| {
            q.try_push(Pending {
                deadline: Some(base + Duration::from_micros(100 + seq)),
                seq,
                req,
                enqueued: base,
                ticket: Ticket::new(),
                probe: false,
            })
            .unwrap();
        };
        // A rollout lands between two coalescable ∇FD requests.
        push(0, ServeRequest::rollout("r", vec![], vec![], vec![], 4));
        push(1, ServeRequest::gradient("r", vec![], vec![], vec![]));
        push(2, ServeRequest::gradient("r", vec![], vec![], vec![]));

        let paused = AtomicBool::new(false);
        let closed = AtomicBool::new(false);
        // The rollout is most urgent and pops strictly alone …
        let batch = q.next_batch(8, &paused, &closed).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].seq, 0);
        // … while the ∇FD requests behind it still coalesce normally.
        let batch = q.next_batch(8, &paused, &closed).unwrap();
        let seqs: Vec<u64> = batch.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn gradient_batch_stops_at_a_queued_trajectory_request() {
        let q = EdfQueue::new(16);
        let base = Instant::now();
        let push = |seq: u64, req: ServeRequest| {
            q.try_push(Pending {
                deadline: Some(base + Duration::from_micros(100 + seq)),
                seq,
                req,
                enqueued: base,
                ticket: Ticket::new(),
                probe: false,
            })
            .unwrap();
        };
        push(0, ServeRequest::gradient("r", vec![], vec![], vec![]));
        push(1, ServeRequest::mixed("r", vec![], vec![], vec![]));
        push(2, ServeRequest::gradient("r", vec![], vec![], vec![]));

        let paused = AtomicBool::new(false);
        let closed = AtomicBool::new(false);
        let batch = q.next_batch(8, &paused, &closed).unwrap();
        let seqs: Vec<u64> = batch.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![0], "coalescing halts at the mixed request");
        assert_eq!(q.next_batch(8, &paused, &closed).unwrap()[0].seq, 1);
        assert_eq!(q.next_batch(8, &paused, &closed).unwrap()[0].seq, 2);
    }

    #[test]
    fn concurrent_drain_during_shutdown_delivers_every_request_once() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;

        let q = Arc::new(EdfQueue::new(256));
        let base = Instant::now();
        for seq in 0..100 {
            q.try_push(pending(seq, Some(1_000 + seq), base)).unwrap();
        }
        let paused = Arc::new(AtomicBool::new(false));
        let closed = Arc::new(AtomicBool::new(false));
        let popped = Arc::new(AtomicU64::new(0));
        let seen_mask = Arc::new(Mutex::new(vec![0u8; 100]));

        let workers: Vec<_> = (0..4)
            .map(|_| {
                let (q, paused, closed) =
                    (Arc::clone(&q), Arc::clone(&paused), Arc::clone(&closed));
                let (popped, seen) = (Arc::clone(&popped), Arc::clone(&seen_mask));
                std::thread::spawn(move || {
                    while let Some(batch) = q.next_batch(4, &paused, &closed) {
                        let mut mask = seen.lock().unwrap();
                        for p in &batch {
                            mask[p.seq as usize] += 1;
                        }
                        drop(mask);
                        popped.fetch_add(batch.len() as u64, AtomicOrdering::Relaxed);
                    }
                })
            })
            .collect();

        // Close mid-drain: workers already have batches in flight.
        std::thread::sleep(Duration::from_millis(1));
        closed.store(true, AtomicOrdering::SeqCst);
        q.notify_all();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(popped.load(AtomicOrdering::Relaxed), 100, "nothing lost");
        let mask = seen_mask.lock().unwrap();
        assert!(mask.iter().all(|&c| c == 1), "each delivered exactly once");
    }
}
