//! Closed-loop serving throughput over the full zoo: a loopback TCP
//! server fronting the deadline-aware batching engine, driven by the
//! serve crate's load generator. Besides the Criterion timings, one
//! instrumented run writes a machine-readable summary to
//! `BENCH_serve.json` at the repository root.
//!
//! Set `SIM_BENCH_SMOKE=1` to shrink the client and request counts for
//! CI (same switch as the other benches).

use criterion::{criterion_group, criterion_main, Criterion};
use roboshape::KernelKind;
use roboshape_benchrec::record::relative_spread;
use roboshape_benchrec::{BenchRecord, MetricKind};
use roboshape_robots::{zoo, Zoo};
use roboshape_serve::loadgen::{
    run_loadgen, LoadMode, LoadgenConfig, LoadgenReport, RetryPolicy, TargetRobot, Workload,
};
use roboshape_serve::{Engine, EngineConfig, Router, RouterConfig, Server, Shard, ShardSpec};
use std::fs;
use std::hint::black_box;
use std::path::Path;

fn smoke() -> bool {
    std::env::var_os("SIM_BENCH_SMOKE").is_some()
}

/// Loadgen clients for the full-zoo runs.
fn clients() -> usize {
    if smoke() {
        2
    } else {
        4
    }
}

/// Requests per client for the full-zoo runs.
fn requests_per_client() -> usize {
    if smoke() {
        8
    } else {
        16
    }
}

/// Clients for the coalesced and cluster runs (more than the full-zoo
/// runs, so batches actually form and the router has traffic to spread).
fn heavy_clients() -> usize {
    if smoke() {
        4
    } else {
        8
    }
}

/// Requests per client for the coalesced and cluster runs.
fn heavy_requests_per_client() -> usize {
    if smoke() {
        8
    } else {
        32
    }
}

/// One measured load: the best of the three passes plus the relative
/// spread each headline metric showed across those passes — the noise
/// estimate the BenchRecord carries.
struct Measured {
    best: LoadgenReport,
    rps_noise: f64,
    p50_noise: f64,
    p99_noise: f64,
}

impl Measured {
    fn from_passes(passes: Vec<LoadgenReport>) -> Measured {
        let spread = |f: fn(&LoadgenReport) -> f64| {
            relative_spread(&passes.iter().map(f).collect::<Vec<_>>())
        };
        let rps_noise = spread(|r| r.throughput_rps);
        let p50_noise = spread(|r| r.p50_us as f64);
        let p99_noise = spread(|r| r.p99_us as f64);
        let best = passes
            .into_iter()
            .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
            .expect("at least one measured pass");
        Measured {
            best,
            rps_noise,
            p50_noise,
            p99_noise,
        }
    }
}

fn start_server() -> Server {
    start_server_with(EngineConfig::default())
}

fn start_server_with(cfg: EngineConfig) -> Server {
    let engine = Engine::new(cfg);
    for z in Zoo::ALL {
        engine.register(z.name(), zoo(z));
    }
    Server::start(engine, ("127.0.0.1", 0)).expect("bind loopback")
}

/// Closed-loop ∇FD load on a single robot: every client hammers HyQ,
/// so the engine's deadline-aware coalescing actually forms batches of
/// ≥4 and the lane backend's whole-group path carries the traffic.
fn single_robot_config() -> LoadgenConfig {
    LoadgenConfig {
        mode: LoadMode::Closed,
        clients: heavy_clients(),
        requests_per_client: heavy_requests_per_client(),
        robots: vec![TargetRobot {
            name: Zoo::Hyq.name().to_string(),
            links: zoo(Zoo::Hyq).num_links(),
        }],
        workload: Workload::Step(KernelKind::DynamicsGradient),
        deadline: None,
        seed: 2,
        retry: RetryPolicy::none(),
        timeout: None,
    }
}

/// Runs the coalesced single-robot load against one backend and
/// returns the best of three measured passes (thread-scheduling noise
/// on small boxes dwarfs the per-request compute; the best pass is the
/// one where the engine actually stayed busy) plus the pass spreads.
fn run_coalesced(backend: roboshape::BackendKind) -> Measured {
    let server = start_server_with(EngineConfig {
        backend,
        ..EngineConfig::default()
    });
    let cfg = single_robot_config();
    let measured = best_of_three(server.port(), &cfg);
    server.shutdown();
    measured
}

/// The cluster workload: closed-loop full-zoo ∇FD with more clients
/// than the single-engine runs, so the router has traffic to spread.
/// Retries are on (the reference resilient-client configuration) and
/// the run is only accepted with `lost == 0`.
fn cluster_config() -> LoadgenConfig {
    LoadgenConfig {
        clients: heavy_clients(),
        requests_per_client: heavy_requests_per_client(),
        retry: RetryPolicy::default(),
        ..full_zoo_config()
    }
}

/// Three measured passes of `cfg` against `port` after one warm-up
/// pass that binds every worker's arenas; keeps the best pass and the
/// spreads.
fn best_of_three(port: u16, cfg: &LoadgenConfig) -> Measured {
    run_loadgen(("127.0.0.1", port), cfg).expect("warm-up run");
    let passes: Vec<LoadgenReport> = (0..3)
        .map(|_| {
            let report = run_loadgen(("127.0.0.1", port), cfg).expect("measured run");
            assert_eq!(report.lost(), 0, "serve bench lost requests: {report}");
            report
        })
        .collect();
    Measured::from_passes(passes)
}

/// Runs the cluster workload twice — through a 3-shard router and
/// directly against one engine — and returns `(cluster, single)`.
fn run_cluster() -> (Measured, Measured) {
    let cfg = cluster_config();

    let single_server = start_server();
    let single = best_of_three(single_server.port(), &cfg);
    single_server.shutdown();

    let mut shards = Vec::new();
    let mut specs = Vec::new();
    for i in 0..3 {
        let name = format!("s{i}");
        let engine = Engine::new(EngineConfig::default());
        for z in Zoo::ALL {
            engine.register(z.name(), zoo(z));
        }
        let shard = Shard::start(name.clone(), engine, ("127.0.0.1", 0)).expect("bind shard");
        specs.push(ShardSpec {
            name,
            addr: shard.addr(),
        });
        shards.push(shard);
    }
    let router = Router::start(RouterConfig::new(specs), ("127.0.0.1", 0)).expect("bind router");
    let cluster = best_of_three(router.port(), &cfg);
    router.shutdown();
    for shard in shards {
        shard.shutdown();
    }
    (cluster, single)
}

/// Closed-loop mixed-robot ∇FD load: every client cycles through all
/// six zoo robots, issuing the next request as soon as the previous
/// response arrives.
fn full_zoo_config() -> LoadgenConfig {
    LoadgenConfig {
        mode: LoadMode::Closed,
        clients: clients(),
        requests_per_client: requests_per_client(),
        robots: Zoo::ALL
            .iter()
            .map(|&z| TargetRobot {
                name: z.name().to_string(),
                links: zoo(z).num_links(),
            })
            .collect(),
        workload: Workload::Step(KernelKind::DynamicsGradient),
        deadline: None,
        seed: 1,
        retry: RetryPolicy::none(),
        timeout: None,
    }
}

fn write_summary(
    report: &LoadgenReport,
    scalar: &LoadgenReport,
    lanes: &LoadgenReport,
    cluster: &LoadgenReport,
    single: &LoadgenReport,
) {
    let smoke = smoke();
    let robots = Zoo::ALL
        .iter()
        .map(|&z| format!("\"{}\"", z.name()))
        .collect::<Vec<_>>()
        .join(", ");
    let backend = format!("{:?}", EngineConfig::default().backend).to_lowercase();
    let coalesced_cfg = single_robot_config();
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"mode\": \"closed\",\n  \"smoke\": {smoke},\n  \"backend\": \"{backend}\",\n  \"robots\": [{robots}],\n  \"clients\": {clients},\n  \"requests_per_client\": {per_client},\n  \"sent\": {sent},\n  \"ok\": {ok},\n  \"shed\": {shed},\n  \"deadline_exceeded\": {deadline},\n  \"errors\": {errors},\n  \"elapsed_us\": {elapsed},\n  \"throughput_rps\": {rps:.1},\n  \"latency_us\": {{\"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}, \"max\": {max}, \"mean\": {mean:.1}}},\n  \"coalesced\": {{\"robot\": \"{co_robot}\", \"clients\": {co_clients}, \"requests_per_client\": {co_per_client}, \"scalar_rps\": {co_scalar:.1}, \"lanes_rps\": {co_lanes:.1}, \"lanes_speedup\": {co_speedup:.2}, \"lanes_p50_us\": {co_p50}, \"lanes_p99_us\": {co_p99}}},\n  \"cluster\": {{\"shards\": 3, \"clients\": {cl_clients}, \"requests_per_client\": {cl_per_client}, \"aggregate_rps\": {cl_rps:.1}, \"single_engine_rps\": {cl_single:.1}, \"speedup_vs_single\": {cl_speedup:.2}, \"lost\": {cl_lost}, \"rerouted\": {cl_rerouted}, \"p50_us\": {cl_p50}, \"p99_us\": {cl_p99}}}\n}}\n",
        clients = clients(),
        per_client = requests_per_client(),
        sent = report.sent,
        ok = report.ok,
        shed = report.shed,
        deadline = report.deadline_exceeded,
        errors = report.errors,
        elapsed = report.elapsed.as_micros(),
        rps = report.throughput_rps,
        p50 = report.p50_us,
        p90 = report.p90_us,
        p99 = report.p99_us,
        max = report.max_us,
        mean = report.mean_us,
        co_robot = Zoo::Hyq.name(),
        co_clients = coalesced_cfg.clients,
        co_per_client = coalesced_cfg.requests_per_client,
        co_scalar = scalar.throughput_rps,
        co_lanes = lanes.throughput_rps,
        co_speedup = lanes.throughput_rps / scalar.throughput_rps,
        co_p50 = lanes.p50_us,
        co_p99 = lanes.p99_us,
        cl_clients = cluster_config().clients,
        cl_per_client = cluster_config().requests_per_client,
        cl_rps = cluster.throughput_rps,
        cl_single = single.throughput_rps,
        cl_speedup = cluster.throughput_rps / single.throughput_rps,
        cl_lost = cluster.lost(),
        cl_rerouted = cluster.rerouted,
        cl_p50 = cluster.p50_us,
        cl_p99 = cluster.p99_us,
    );
    roboshape::obs::json::validate(&json).expect("summary is well-formed JSON");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    fs::write(path, json).expect("write BENCH_serve.json");
}

/// Emits the regression-gate record into `bench/current/` (see
/// docs/BENCHMARKS.md). Throughputs and latency quantiles gate with
/// their measured pass spreads; counters (`lost`, `rerouted`) ride
/// along as informational context — `lost == 0` is already asserted by
/// the bench itself.
fn write_record(
    report: &Measured,
    scalar: &Measured,
    lanes: &Measured,
    cluster: &Measured,
    single: &Measured,
) {
    let mut rec = BenchRecord::new("serve_throughput", smoke(), cfg!(feature = "simd"));
    rec.push(
        "throughput_rps",
        report.best.throughput_rps,
        report.rps_noise,
    );
    rec.push(
        "latency.p50_us",
        report.best.p50_us as f64,
        report.p50_noise,
    );
    rec.push(
        "latency.p99_us",
        report.best.p99_us as f64,
        report.p99_noise,
    );
    rec.push(
        "coalesced.scalar_rps",
        scalar.best.throughput_rps,
        scalar.rps_noise,
    );
    rec.push(
        "coalesced.lanes_rps",
        lanes.best.throughput_rps,
        lanes.rps_noise,
    );
    rec.push(
        "coalesced.lanes_speedup",
        lanes.best.throughput_rps / scalar.best.throughput_rps,
        lanes.rps_noise + scalar.rps_noise,
    );
    rec.push(
        "coalesced.lanes_p99_us",
        lanes.best.p99_us as f64,
        lanes.p99_noise,
    );
    rec.push(
        "cluster.aggregate_rps",
        cluster.best.throughput_rps,
        cluster.rps_noise,
    );
    rec.push(
        "cluster.single_engine_rps",
        single.best.throughput_rps,
        single.rps_noise,
    );
    rec.push(
        "cluster.speedup_vs_single",
        cluster.best.throughput_rps / single.best.throughput_rps,
        cluster.rps_noise + single.rps_noise,
    );
    rec.push(
        "cluster.p50_us",
        cluster.best.p50_us as f64,
        cluster.p50_noise,
    );
    rec.push(
        "cluster.p99_us",
        cluster.best.p99_us as f64,
        cluster.p99_noise,
    );
    rec.push_kind(
        "cluster.lost",
        cluster.best.lost() as f64,
        0.0,
        MetricKind::Informational,
    );
    rec.push_kind(
        "cluster.rerouted",
        cluster.best.rerouted as f64,
        0.0,
        MetricKind::Informational,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../bench/current/serve_throughput.json"
    );
    rec.save(Path::new(path)).expect("write bench record");
}

fn bench_serve_throughput(c: &mut Criterion) {
    let server = start_server();
    let port = server.port();
    let cfg = full_zoo_config();

    let mut g = c.benchmark_group("serve_throughput");
    g.sample_size(10);
    g.bench_function("closed_loop_full_zoo", |b| {
        b.iter(|| {
            let report = run_loadgen(("127.0.0.1", port), &cfg).expect("loadgen run");
            assert_eq!(
                report.ok,
                (clients() * requests_per_client()) as u64,
                "{report}"
            );
            black_box(report.throughput_rps)
        })
    });
    g.finish();

    // The headline full-zoo numbers: best of three measured passes,
    // same protocol as every other comparison here.
    let report = best_of_three(port, &cfg);
    server.shutdown();
    // The coalesced comparison: same single-robot closed-loop load
    // against a scalar-backend engine and a lane-backend engine.
    let scalar = run_coalesced(roboshape::BackendKind::Scalar);
    let lanes = run_coalesced(roboshape::BackendKind::Lanes);
    assert_eq!(
        scalar.best.ok, lanes.best.ok,
        "both backends must answer everything"
    );
    // The cluster comparison: the same full-zoo load through a 3-shard
    // router versus one engine, measured honestly on this machine.
    let (cluster, single) = run_cluster();
    write_summary(
        &report.best,
        &scalar.best,
        &lanes.best,
        &cluster.best,
        &single.best,
    );
    write_record(&report, &scalar, &lanes, &cluster, &single);
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
