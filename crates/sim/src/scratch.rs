//! Reusable per-worker simulation state: the [`SimScratch`] arena.
//!
//! Every buffer a compiled program touches while executing lives here, so
//! a worker that keeps one `SimScratch` alive pays for allocation once per
//! `(worker, program)` binding instead of once per request. The arena is
//! rebound lazily: executing a program against a scratch bound to a
//! different program reallocates; executing against the same program again
//! reuses every buffer and bumps the `sim.scratch.reuse` counter.
//!
//! # Why no per-evaluation clearing
//!
//! The hot buffers are designed so that a warm evaluation performs *no*
//! O(n²) reset pass:
//!
//! * `cache` (RNEA outputs) and the host-side buffers are fully
//!   overwritten by every evaluation.
//! * `dstate` derivative slots are pure stores: compilation resolves every
//!   read either to a slot written earlier in the same evaluation or to a
//!   constant default, so stale values are never observed.
//! * `dacc` and `f_acc` accumulator slots are *consumed on read*
//!   ([`std::mem::take`]): compilation proves every pushed slot is read
//!   exactly once per evaluation, so reading doubles as the reset.
//! * The sign-folded `B` operand writes the same slot set every
//!   evaluation; untouched slots are structural zeros set at bind time.
//! * The `C` accumulator and the per-op `prod` tile are zeroed just
//!   before use (plain stores, no allocation).

use crate::deriv::{DerivPair, ForcePair};
use crate::program::CompiledProgram;
use roboshape_dynamics::RneaCache;
use roboshape_linalg::DMat;
use roboshape_spatial::{ForceVec, MotionVec, SpatialInertia, Xform};

/// A reusable arena holding every intermediate buffer one accelerator
/// evaluation needs. See the [module docs](self) for the reuse contract.
///
/// Create one per worker thread with [`SimScratch::new`] and pass it to
/// [`CompiledProgram::execute_gradient`] and friends; the program binds
/// (and, when necessary, sizes) the arena itself.
#[derive(Debug)]
pub struct SimScratch {
    /// Id of the program the buffers are currently sized/zeroed for
    /// (`0` = unbound; program ids start at 1).
    bound: u64,
    /// RNEA output storage (Fig. 8c): `X`, `v`, `a`, `f`, `τ` per link.
    pub(crate) cache: RneaCacheBox,
    /// Per-link forces before child accumulation.
    pub(crate) f_local: Vec<ForceVec>,
    /// Child force accumulators, consumed on read by each `RneaBwd` op.
    pub(crate) f_acc: Vec<ForceVec>,
    /// Dense derivative thread state, slot `link · n + seed`.
    pub(crate) dstate: Vec<DerivPair>,
    /// Dense derivative force accumulators, consumed on read.
    pub(crate) dacc: Vec<ForcePair>,
    /// Host-side RNEA/CRBA transforms.
    pub(crate) hxup: Vec<Xform>,
    /// Host-side link velocities (bias pass).
    pub(crate) hv: Vec<MotionVec>,
    /// Host-side link accelerations (bias pass).
    pub(crate) ha: Vec<MotionVec>,
    /// Host-side link forces (bias pass).
    pub(crate) hf: Vec<ForceVec>,
    /// Motion subspaces (CRBA).
    pub(crate) svec: Vec<MotionVec>,
    /// Composite inertias (CRBA).
    pub(crate) ic: Vec<SpatialInertia>,
    /// Bias torques `C(q, q̇)`.
    pub(crate) bias: Vec<f64>,
    /// Forward-dynamics accelerations `q̈` (solved in place).
    pub(crate) qdd: Vec<f64>,
    /// Cholesky solve column.
    pub(crate) ycol: Vec<f64>,
    /// Mass matrix `M(q)` (structural zeros persist across evaluations).
    pub(crate) mass: DMat,
    /// Cholesky factor `L` (lower triangle rewritten per evaluation).
    pub(crate) chol: DMat,
    /// Inverse mass matrix `M⁻¹`.
    pub(crate) minv: DMat,
    /// Sign-folded mat-mul operand: `B[(i, j)] = −∂τᵢ/∂qⱼ`,
    /// `B[(i, j+n)] = −∂τᵢ/∂q̇ⱼ`, written directly by `GradBwd` ops.
    pub(crate) b: DMat,
    /// Mat-mul accumulator: `C = M⁻¹ B`, which *is* `[∂q̈/∂q | ∂q̈/∂q̇]`
    /// thanks to the folded sign.
    pub(crate) c: DMat,
    /// One block×block product tile.
    pub(crate) prod: Vec<f64>,
    /// Forward-kinematics base→link poses.
    pub(crate) poses: Vec<Xform>,
    /// SoA buffers for the lane backend, bound independently (a scratch
    /// arena can serve scalar and lane programs back to back without
    /// thrashing either side's warm state).
    pub(crate) lanes: crate::exec::lanes::LaneArena,
}

/// `RneaCache` wrapper providing a `Default` (the dynamics crate's struct
/// has no `Default` of its own).
#[derive(Debug)]
pub(crate) struct RneaCacheBox(pub(crate) RneaCache);

impl Default for RneaCacheBox {
    fn default() -> Self {
        RneaCacheBox(RneaCache {
            xup: Vec::new(),
            v: Vec::new(),
            a: Vec::new(),
            f: Vec::new(),
            tau: Vec::new(),
            s: Vec::new(),
            vj: Vec::new(),
            h: Vec::new(),
        })
    }
}

impl Default for SimScratch {
    fn default() -> SimScratch {
        SimScratch {
            bound: 0,
            cache: RneaCacheBox::default(),
            f_local: Vec::new(),
            f_acc: Vec::new(),
            dstate: Vec::new(),
            dacc: Vec::new(),
            hxup: Vec::new(),
            hv: Vec::new(),
            ha: Vec::new(),
            hf: Vec::new(),
            svec: Vec::new(),
            ic: Vec::new(),
            bias: Vec::new(),
            qdd: Vec::new(),
            ycol: Vec::new(),
            mass: DMat::zeros(0, 0),
            chol: DMat::zeros(0, 0),
            minv: DMat::zeros(0, 0),
            b: DMat::zeros(0, 0),
            c: DMat::zeros(0, 0),
            prod: Vec::new(),
            poses: Vec::new(),
            lanes: crate::exec::lanes::LaneArena::default(),
        }
    }
}

impl SimScratch {
    /// An unbound arena; the first execution against a program sizes it.
    pub fn new() -> SimScratch {
        SimScratch::default()
    }

    /// `true` when the arena is currently bound to `program` (the next
    /// execution will be allocation-free).
    pub fn is_bound_to(&self, program: &CompiledProgram) -> bool {
        self.bound == program.id()
    }

    /// Binds the arena to `program`: on a rebind every buffer is resized
    /// and reset; on a match this is a no-op apart from the
    /// `sim.scratch.reuse` counter.
    pub(crate) fn prepare(&mut self, program: &CompiledProgram) {
        if self.bound == program.id() {
            program.note_scratch_reuse();
            return;
        }
        let n = program.dim();
        let cache = &mut self.cache.0;
        cache.xup.clear();
        cache.xup.resize(n, Xform::identity());
        cache.v.clear();
        cache.v.resize(n, MotionVec::ZERO);
        cache.a.clear();
        cache.a.resize(n, MotionVec::ZERO);
        cache.f.clear();
        cache.f.resize(n, ForceVec::ZERO);
        cache.tau.clear();
        cache.tau.resize(n, 0.0);
        cache.s.clear();
        cache.s.resize(n, MotionVec::ZERO);
        cache.vj.clear();
        cache.vj.resize(n, MotionVec::ZERO);
        cache.h.clear();
        cache.h.resize(n, ForceVec::ZERO);
        self.f_local.clear();
        self.f_local.resize(n, ForceVec::ZERO);
        self.f_acc.clear();
        self.f_acc.resize(n, ForceVec::ZERO);
        self.dstate.clear();
        self.dstate.resize(n * n, DerivPair::default());
        self.dacc.clear();
        self.dacc.resize(n * n, ForcePair::default());
        self.hxup.clear();
        self.hxup.resize(n, Xform::identity());
        self.hv.clear();
        self.hv.resize(n, MotionVec::ZERO);
        self.ha.clear();
        self.ha.resize(n, MotionVec::ZERO);
        self.hf.clear();
        self.hf.resize(n, ForceVec::ZERO);
        self.svec.clear();
        self.svec.resize(n, MotionVec::ZERO);
        self.ic.clear();
        self.ic.resize(n, SpatialInertia::zero());
        self.bias.clear();
        self.bias.resize(n, 0.0);
        self.qdd.clear();
        self.qdd.resize(n, 0.0);
        self.ycol.clear();
        self.ycol.resize(n, 0.0);
        self.mass = DMat::zeros(n, n);
        self.chol = DMat::zeros(n, n);
        self.minv = DMat::zeros(n, n);
        self.b = DMat::zeros(n, 2 * n);
        self.c = DMat::zeros(n, 2 * n);
        let bl = program.matmul_block();
        self.prod.clear();
        self.prod.resize(bl * bl, 0.0);
        self.poses.clear();
        self.poses.resize(n, Xform::identity());
        self.bound = program.id();
    }
}
