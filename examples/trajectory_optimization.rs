//! Nonlinear optimal control with accelerator-computed gradients.
//!
//! The paper's motivation: dynamics gradients are "a key bottleneck
//! preventing online execution of nonlinear optimal motion control". This
//! example runs the `roboshape-trajopt` iLQR optimizer on the iiwa arm
//! twice — once with the reference analytical gradients, once with every
//! linearization computed by the *simulated RoboShape accelerator* — and
//! shows the two stacks converge identically, with the accelerator's
//! modelled latency budget alongside.
//!
//! Run with: `cargo run --release --example trajectory_optimization`

use roboshape::{single_computation, Constraints, Framework};
use roboshape_suite::prelude::*;
use roboshape_trajopt::{optimize, AcceleratorGradients, IlqrConfig, ReferenceGradients};

fn main() {
    let robot = zoo(Zoo::Iiwa);
    let n = robot.num_links();
    let fw = Framework::from_model(robot.clone());
    let accel = fw.generate(Constraints::new(7, 7, 7));

    let config = IlqrConfig {
        horizon: 40,
        iters: 12,
        ..IlqrConfig::default()
    };
    let target: Vec<f64> = (0..n).map(|i| 0.6 * ((i % 3) as f64 - 1.0)).collect();
    let q0 = vec![0.0; n];

    println!(
        "iLQR on {} ({} links), horizon {}, dt {} s",
        robot.name(),
        n,
        config.horizon,
        config.dt
    );

    // --- Reference gradients.
    let reference = optimize(&robot, &q0, &target, &config, &ReferenceGradients);
    println!(
        "reference gradients:   cost {:.3} -> {:.3} in {} iterations (terminal error {:.3} rad)",
        reference.initial_cost(),
        reference.final_cost(),
        reference.cost_history.len() - 1,
        reference.terminal_error(&target)
    );

    // --- Accelerator gradients: every backward-pass linearization runs
    // through the cycle-level hardware model.
    let provider = AcceleratorGradients::new(accel.design());
    let hw = optimize(&robot, &q0, &target, &config, &provider);
    println!(
        "accelerator gradients: cost {:.3} -> {:.3} in {} iterations (terminal error {:.3} rad)",
        hw.initial_cost(),
        hw.final_cost(),
        hw.cost_history.len() - 1,
        hw.terminal_error(&target)
    );
    let rel = (reference.final_cost() - hw.final_cost()).abs() / reference.final_cost();
    println!("relative cost difference between the two stacks: {rel:.2e}");
    assert!(rel < 1e-6);
    assert!(hw.final_cost() < 0.5 * hw.initial_cost());

    // --- The latency story (paper Fig. 9): gradient evaluations per solve.
    let grad_evals = config.horizon * (hw.cost_history.len() - 1);
    let lat = single_computation(accel.design());
    println!(
        "\nthis solve used {grad_evals} gradient evaluations:\n  CPU    {:.1} ms   GPU {:.1} ms   accelerator {:.1} ms ({:.1}x vs CPU)",
        grad_evals as f64 * lat.cpu_us / 1000.0,
        grad_evals as f64 * lat.gpu_us / 1000.0,
        grad_evals as f64 * lat.fpga_us / 1000.0,
        lat.speedup_vs_cpu()
    );
}
