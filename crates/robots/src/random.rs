//! Synthetic random robots for property-based testing and design-space
//! studies beyond the six paper robots.

use rand::Rng;
use roboshape_linalg::{Mat3, Vec3};
use roboshape_spatial::{Joint, SpatialInertia, Xform};
use roboshape_urdf::{LinkHandle, RobotBuilder, RobotModel};

/// Configuration for [`random_robot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomRobotConfig {
    /// Number of moving links.
    pub links: usize,
    /// Probability that a new link branches off an existing non-tip link
    /// instead of extending the current chain tip.
    pub branch_prob: f64,
    /// Probability that a link hangs directly off the fixed base (extra
    /// limbs, Baxter-style).
    pub new_limb_prob: f64,
    /// Include prismatic joints (otherwise all revolute).
    pub allow_prismatic: bool,
}

impl Default for RandomRobotConfig {
    fn default() -> Self {
        RandomRobotConfig {
            links: 8,
            branch_prob: 0.2,
            new_limb_prob: 0.1,
            allow_prismatic: false,
        }
    }
}

/// Generates a random, well-conditioned robot: a random tree topology with
/// random joint axes, origins, and positive-definite inertias.
///
/// "Well-conditioned" means every link has strictly positive mass and
/// rotational inertia, so the mass matrix is positive-definite and all
/// dynamics algorithms (and their gradients) are well-defined — the
/// property tests in the dynamics and simulator crates rely on this.
///
/// # Panics
///
/// Panics if `config.links == 0`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use roboshape_robots::{random_robot, RandomRobotConfig};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let robot = random_robot(&mut rng, RandomRobotConfig { links: 10, ..Default::default() });
/// assert_eq!(robot.num_links(), 10);
/// ```
pub fn random_robot<R: Rng + ?Sized>(rng: &mut R, config: RandomRobotConfig) -> RobotModel {
    assert!(config.links > 0, "robot must have at least one link");
    let mut b = RobotBuilder::new(format!("random_{}", config.links));
    let mut handles: Vec<LinkHandle> = Vec::new();
    for i in 0..config.links {
        let parent = if handles.is_empty() || rng.gen_bool(config.new_limb_prob) {
            None
        } else if rng.gen_bool(config.branch_prob) {
            Some(handles[rng.gen_range(0..handles.len())])
        } else {
            Some(*handles.last().expect("nonempty checked above"))
        };
        let axis = random_axis(rng);
        let joint = if config.allow_prismatic && rng.gen_bool(0.2) {
            Joint::prismatic(axis)
        } else {
            Joint::revolute(axis)
        };
        let origin = Xform::from_origin(
            Vec3::new(
                rng.gen_range(-0.2..0.2),
                rng.gen_range(-0.2..0.2),
                rng.gen_range(-0.4..-0.05),
            ),
            [
                rng.gen_range(-0.5..0.5),
                rng.gen_range(-0.5..0.5),
                rng.gen_range(-0.5..0.5),
            ],
        );
        let mass = rng.gen_range(0.5..5.0);
        let com = Vec3::new(
            rng.gen_range(-0.05..0.05),
            rng.gen_range(-0.05..0.05),
            rng.gen_range(-0.3..-0.05),
        );
        let i_diag = Vec3::new(
            rng.gen_range(0.01..0.2),
            rng.gen_range(0.01..0.2),
            rng.gen_range(0.01..0.2),
        );
        let inertia = SpatialInertia::from_mass_com_inertia(mass, com, Mat3::diagonal(i_diag));
        let h = b.add_link(
            format!("link{i}"),
            parent,
            joint.with_tree_xform(origin),
            inertia,
        );
        handles.push(h);
    }
    b.build()
}

fn random_axis<R: Rng + ?Sized>(rng: &mut R) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        );
        if v.norm() > 0.3 {
            return v.normalized();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_size() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for n in [1, 3, 9, 20] {
            let r = random_robot(
                &mut rng,
                RandomRobotConfig {
                    links: n,
                    ..Default::default()
                },
            );
            assert_eq!(r.num_links(), n);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = RandomRobotConfig {
            links: 12,
            branch_prob: 0.4,
            ..Default::default()
        };
        let a = random_robot(&mut rand::rngs::StdRng::seed_from_u64(1), cfg);
        let b = random_robot(&mut rand::rngs::StdRng::seed_from_u64(1), cfg);
        assert_eq!(a.topology(), b.topology());
        for i in 0..a.num_links() {
            assert!(
                a.link(i)
                    .inertia
                    .to_mat6()
                    .distance(&b.link(i).inertia.to_mat6())
                    < 1e-15
            );
        }
    }

    #[test]
    fn branching_config_actually_branches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let cfg = RandomRobotConfig {
            links: 30,
            branch_prob: 0.8,
            new_limb_prob: 0.2,
            ..Default::default()
        };
        let r = random_robot(&mut rng, cfg);
        assert!(
            !r.topology().branch_links().is_empty() || r.topology().roots().len() > 1,
            "high branch probability should produce branches"
        );
    }

    #[test]
    fn masses_positive_and_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let r = random_robot(
            &mut rng,
            RandomRobotConfig {
                links: 8,
                allow_prismatic: true,
                ..Default::default()
            },
        );
        for i in 0..r.num_links() {
            assert!(r.link(i).inertia.mass() > 0.0);
        }
        let reparsed = roboshape_urdf::parse_urdf(&roboshape_urdf::write_urdf(&r)).unwrap();
        assert_eq!(reparsed.topology(), r.topology());
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn zero_links_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        random_robot(
            &mut rng,
            RandomRobotConfig {
                links: 0,
                ..Default::default()
            },
        );
    }
}
