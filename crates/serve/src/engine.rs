//! The in-process serving engine: per-robot design pools, supervised
//! worker threads, deadline-aware batching, backpressure, a per-robot
//! circuit breaker with analytical-model degradation, and graceful
//! drain. Chaos (deterministic fault injection) hooks in here too.

use crate::fault::{Admission, CircuitBreaker, CircuitState, FailureOutcome, FaultPlan, FaultSite};
use crate::queue::{EdfQueue, Pending};
use crate::{
    BAD_REQUEST_METRIC, BATCHES_METRIC, BATCH_SIZE_BOUNDS, BATCH_SIZE_METRIC,
    CIRCUIT_CLOSES_METRIC, CIRCUIT_OPEN_METRIC, CIRCUIT_TRIPS_METRIC, CRASHED_METRIC,
    DEADLINE_METRIC, DEGRADED_METRIC, FAULT_CORRUPT_METRIC, FAULT_CRASH_METRIC,
    FAULT_PRESSURE_METRIC, FAULT_STALL_METRIC, LATENCY_BOUNDS_US, LATENCY_METRIC,
    MIXED_REQUESTS_METRIC, OBS_CATEGORY, QUEUE_DEPTH_METRIC, REQUESTS_METRIC, RESPONSES_METRIC,
    ROLLOUT_REQUESTS_METRIC, ROLLOUT_STEPS_METRIC, SHED_METRIC, WORKER_RESTARTS_METRIC,
};
use roboshape_arch::{AcceleratorDesign, AcceleratorKnobs, KernelKind, MatmulUnits};
use roboshape_blocksparse::MatmulLatencyModel;
use roboshape_obs as obs;
use roboshape_pipeline::{PatternKind, Pipeline};
use roboshape_sim::{BackendKind, CompiledProgram, SimError, SimScratch, Simulation};
use roboshape_topology::Topology;
use roboshape_urdf::RobotModel;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing, scheduling, and resilience knobs for an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Bounded per-robot queue depth; a full queue sheds new requests.
    pub queue_capacity: usize,
    /// Maximum ∇FD requests coalesced into one batched execution.
    pub max_batch: usize,
    /// Simulated accelerator instances (worker threads) per robot.
    pub workers_per_robot: usize,
    /// Start with workers paused (requests queue but do not execute
    /// until [`Engine::resume`]) — a test/bench hook that makes batch
    /// coalescing deterministic.
    pub start_paused: bool,
    /// Deadline applied at admission to requests that carry none — the
    /// per-request timeout budget. `None` leaves them best-effort.
    pub default_deadline: Option<Duration>,
    /// Consecutive failures before a robot's circuit trips open.
    pub circuit_threshold: u32,
    /// How long an open circuit waits before half-opening for a probe.
    pub circuit_cooldown: Duration,
    /// Deterministic fault injection; `None` disables chaos entirely.
    pub chaos: Option<crate::fault::FaultConfig>,
    /// Execution backend for the ∇FD and inverse-dynamics programs.
    /// [`BackendKind::Lanes`] executes coalesced batches four requests
    /// per operation (remainders fall back to scalar inside the
    /// backend, bit-identically); forward kinematics always runs the
    /// scalar path.
    pub backend: BackendKind,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            queue_capacity: 64,
            max_batch: 8,
            workers_per_robot: 2,
            start_paused: false,
            default_deadline: None,
            circuit_threshold: 3,
            circuit_cooldown: Duration::from_millis(250),
            chaos: None,
            backend: BackendKind::Lanes,
        }
    }
}

/// Why a request did not produce a payload. Overload, lateness, and
/// worker failure are first-class, typed outcomes — the engine never
/// panics at a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Shed before admission: queue at capacity, or engine shutting down.
    Rejected {
        /// Human-readable shed reason (e.g. `"queue full"`).
        reason: String,
    },
    /// The deadline passed while the request was still queued.
    DeadlineExceeded,
    /// No robot registered under this name.
    UnknownRobot(String),
    /// The request failed validation or simulation (dimension mismatch,
    /// non-finite input, non-positive-definite mass matrix, …).
    BadRequest(String),
    /// The worker executing this request crashed before producing a
    /// result. The request was not completed and is safe to retry; the
    /// supervisor restarts the worker behind the scenes.
    WorkerCrashed,
}

impl ServeError {
    /// Whether a client may safely retry the request. Sheds and worker
    /// crashes are transient (the request never completed); deadline
    /// expiry and validation errors would fail again identically.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Rejected { .. } | ServeError::WorkerCrashed
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected { reason } => write!(f, "rejected: {reason}"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::UnknownRobot(name) => write!(f, "unknown robot: {name}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::WorkerCrashed => write!(f, "worker crashed; retry"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> ServeError {
        ServeError::BadRequest(e.to_string())
    }
}

/// What a request asks the accelerator to run: a single kernel
/// evaluation, or a trajectory-level workload chaining kernels
/// worker-side so one ticket covers the whole horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkKind {
    /// One evaluation of one generated kernel.
    Kernel(KernelKind),
    /// `steps` sequential ∇FD evaluations with the state fed forward
    /// between steps ([`crate::workload::advance`]); MPC-style horizon.
    /// The request's deadline covers the *whole* rollout.
    Rollout {
        /// Horizon length; must be ≥ 1.
        steps: u32,
    },
    /// An ID→∇FD→FK chain on one state: torques from inverse dynamics
    /// feed the gradient kernel, whose state feeds forward kinematics.
    MixedPipeline,
}

impl WorkKind {
    /// The kernel whose accelerator design sizes, schedules, and
    /// (when degraded) prices this work. Trajectory workloads are
    /// gradient-dominated, so they bind to the ∇FD design.
    pub fn design_kernel(self) -> KernelKind {
        match self {
            WorkKind::Kernel(k) => k,
            WorkKind::Rollout { .. } | WorkKind::MixedPipeline => KernelKind::DynamicsGradient,
        }
    }

    /// Whether requests of this kind may coalesce into one batched
    /// execution. Only independent single-step ∇FD evaluations qualify:
    /// rollouts and mixed chains carry sequential dependence, so they
    /// execute alone (and, popped one at a time, cannot starve the
    /// coalescable batches queued around them).
    pub fn is_coalescable(self) -> bool {
        self == WorkKind::Kernel(KernelKind::DynamicsGradient)
    }
}

impl fmt::Display for WorkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkKind::Kernel(k) => write!(f, "{k:?}"),
            WorkKind::Rollout { steps } => write!(f, "Rollout({steps})"),
            WorkKind::MixedPipeline => write!(f, "MixedPipeline"),
        }
    }
}

/// One kernel evaluation request against a registered robot.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Name the robot was registered under.
    pub robot: String,
    /// Which work to run.
    pub kind: WorkKind,
    /// Joint positions (all kernels).
    pub q: Vec<f64>,
    /// Joint velocities (∇FD and inverse dynamics; empty for FK).
    pub qd: Vec<f64>,
    /// Third input: torques `τ` for ∇FD, accelerations `q̈` for inverse
    /// dynamics; empty for FK.
    pub tau: Vec<f64>,
    /// Relative deadline from submission; `None` = best effort (or the
    /// engine's [`EngineConfig::default_deadline`], if set).
    pub deadline: Option<Duration>,
}

impl ServeRequest {
    /// A ∇FD (dynamics-gradient) request.
    pub fn gradient(
        robot: impl Into<String>,
        q: Vec<f64>,
        qd: Vec<f64>,
        tau: Vec<f64>,
    ) -> ServeRequest {
        ServeRequest {
            robot: robot.into(),
            kind: WorkKind::Kernel(KernelKind::DynamicsGradient),
            q,
            qd,
            tau,
            deadline: None,
        }
    }

    /// A trajectory rollout: `steps` sequential ∇FD evaluations with
    /// state fed forward worker-side (`tau` held constant across the
    /// horizon). One ticket, one response carrying the final state.
    pub fn rollout(
        robot: impl Into<String>,
        q: Vec<f64>,
        qd: Vec<f64>,
        tau: Vec<f64>,
        steps: u32,
    ) -> ServeRequest {
        ServeRequest {
            robot: robot.into(),
            kind: WorkKind::Rollout { steps },
            q,
            qd,
            tau,
            deadline: None,
        }
    }

    /// A mixed ID→∇FD→FK chain on one state (`qdd` rides in the third
    /// input slot, as for [`ServeRequest::inverse_dynamics`]).
    pub fn mixed(
        robot: impl Into<String>,
        q: Vec<f64>,
        qd: Vec<f64>,
        qdd: Vec<f64>,
    ) -> ServeRequest {
        ServeRequest {
            robot: robot.into(),
            kind: WorkKind::MixedPipeline,
            q,
            qd,
            tau: qdd,
            deadline: None,
        }
    }

    /// An inverse-dynamics request (`tau` carries `q̈`).
    pub fn inverse_dynamics(
        robot: impl Into<String>,
        q: Vec<f64>,
        qd: Vec<f64>,
        qdd: Vec<f64>,
    ) -> ServeRequest {
        ServeRequest {
            robot: robot.into(),
            kind: WorkKind::Kernel(KernelKind::InverseDynamics),
            q,
            qd,
            tau: qdd,
            deadline: None,
        }
    }

    /// A forward-kinematics request.
    pub fn kinematics(robot: impl Into<String>, q: Vec<f64>) -> ServeRequest {
        ServeRequest {
            robot: robot.into(),
            kind: WorkKind::Kernel(KernelKind::ForwardKinematics),
            q,
            qd: Vec::new(),
            tau: Vec::new(),
            deadline: None,
        }
    }

    /// Sets a relative deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> ServeRequest {
        self.deadline = Some(deadline);
        self
    }
}

/// Health of one registered robot, as reported by [`Engine::health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RobotHealth {
    /// Name the robot was registered under.
    pub name: String,
    /// Its circuit breaker's current state.
    pub circuit: CircuitState,
    /// Worker threads currently alive for this robot. Briefly below the
    /// configured pool size while the supervisor restarts a crash.
    pub workers_alive: u32,
}

/// Engine-wide readiness snapshot: the health endpoint's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// `true` when the engine is accepting work and every registered
    /// robot has at least one live worker.
    pub ready: bool,
    /// Per-robot health, sorted by name.
    pub robots: Vec<RobotHealth>,
}

/// A successful kernel evaluation, as returned to clients.
#[derive(Debug, Clone, PartialEq)]
pub enum ServePayload {
    /// ∇FD outputs: torques plus both gradients (row-major `n × n`).
    Gradient {
        /// RNEA-stage joint torques.
        tau: Vec<f64>,
        /// `∂q̈/∂q`, row-major.
        dqdd_dq: Vec<f64>,
        /// `∂q̈/∂q̇`, row-major.
        dqdd_dqd: Vec<f64>,
        /// Simulated accelerator cycles for this evaluation.
        cycles: u64,
    },
    /// Inverse-dynamics output: `τ = RNEA(q, q̇, q̈)`.
    InverseDynamics {
        /// Joint torques.
        tau: Vec<f64>,
        /// Simulated accelerator cycles.
        cycles: u64,
    },
    /// Forward-kinematics output: base→link poses, 12 values per link
    /// (row-major 3×3 rotation, then translation x/y/z).
    Kinematics {
        /// Flattened poses, `12 × n` values.
        poses: Vec<f64>,
        /// Simulated accelerator cycles.
        cycles: u64,
    },
    /// Rollout output: the final state after `steps` integrations plus
    /// the *last* step's ∇FD outputs (the ones an MPC loop consumes).
    Rollout {
        /// Horizon actually executed.
        steps: u32,
        /// Joint positions after the final step.
        q_final: Vec<f64>,
        /// Joint velocities after the final step.
        qd_final: Vec<f64>,
        /// Last step's RNEA-stage joint torques.
        tau: Vec<f64>,
        /// Last step's `∂q̈/∂q`, row-major.
        dqdd_dq: Vec<f64>,
        /// Last step's `∂q̈/∂q̇`, row-major.
        dqdd_dqd: Vec<f64>,
        /// Simulated accelerator cycles summed over the whole horizon.
        cycles: u64,
    },
    /// Mixed-pipeline output: the ID-stage torques, the ∇FD gradients
    /// they induced, and the FK poses of the input state.
    Mixed {
        /// Inverse-dynamics joint torques (fed to the gradient stage).
        tau: Vec<f64>,
        /// `∂q̈/∂q`, row-major.
        dqdd_dq: Vec<f64>,
        /// `∂q̈/∂q̇`, row-major.
        dqdd_dqd: Vec<f64>,
        /// Flattened base→link poses, 12 values per link.
        poses: Vec<f64>,
        /// Simulated accelerator cycles summed over the three kernels.
        cycles: u64,
    },
    /// Degraded answer from the analytical clock-period model, returned
    /// while the robot's circuit is open: the design's *static* latency
    /// estimate in place of simulated outputs. Clients treat this as a
    /// valid (if lower-fidelity) response, not a retryable failure.
    Degraded {
        /// The kernel the estimate is for.
        kind: KernelKind,
        /// Analytical compute cycles (schedule makespan + mat-muls).
        cycles: u64,
        /// The design's critical-path clock period in nanoseconds.
        clock_ns: f64,
        /// Analytical end-to-end latency estimate in microseconds.
        latency_us: f64,
    },
    /// Health/readiness snapshot (the response to a health probe).
    Health(HealthReport),
}

impl ServePayload {
    /// Simulated accelerator cycles, whatever the kernel. Degraded
    /// answers report the analytical estimate; health probes report 0.
    pub fn cycles(&self) -> u64 {
        match self {
            ServePayload::Gradient { cycles, .. }
            | ServePayload::InverseDynamics { cycles, .. }
            | ServePayload::Kinematics { cycles, .. }
            | ServePayload::Rollout { cycles, .. }
            | ServePayload::Mixed { cycles, .. }
            | ServePayload::Degraded { cycles, .. } => *cycles,
            ServePayload::Health(_) => 0,
        }
    }

    /// Whether this is a degraded (analytical-model) answer.
    pub fn is_degraded(&self) -> bool {
        matches!(self, ServePayload::Degraded { .. })
    }
}

/// The outcome a [`Ticket`] resolves to.
pub type ServeResult = Result<ServePayload, ServeError>;

struct TicketCell {
    slot: Mutex<Option<ServeResult>>,
    cv: Condvar,
    resolved: AtomicBool,
    /// Set *after* the slot is written; [`Ticket::watch`] keys off this
    /// (not `resolved`, which flips before the result is readable).
    published: AtomicBool,
    watcher: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

/// A handle to an in-flight request; resolves exactly once.
#[derive(Clone)]
pub struct Ticket {
    cell: Arc<TicketCell>,
}

impl Ticket {
    pub(crate) fn new() -> Ticket {
        Ticket {
            cell: Arc::new(TicketCell {
                slot: Mutex::new(None),
                cv: Condvar::new(),
                resolved: AtomicBool::new(false),
                published: AtomicBool::new(false),
                watcher: Mutex::new(None),
            }),
        }
    }

    pub(crate) fn fulfill(&self, result: ServeResult) {
        let fulfilled = self.fulfill_if_unresolved(result);
        debug_assert!(fulfilled, "ticket fulfilled twice");
    }

    /// Resolves the ticket unless something already did; returns whether
    /// *this* call resolved it. Crash cleanup uses this so an already-
    /// answered request is never clobbered with `WorkerCrashed`.
    pub(crate) fn fulfill_if_unresolved(&self, result: ServeResult) -> bool {
        if self
            .cell
            .resolved
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return false;
        }
        {
            let mut slot = self.cell.slot.lock().expect("ticket poisoned");
            *slot = Some(result);
            self.cell.cv.notify_all();
        }
        // Publish-then-notify: the flag flips only once the slot holds
        // the result, so a watcher registered concurrently either lands
        // in the mutex (and is taken below) or sees `published` and runs
        // itself — never both, never before the result is readable.
        self.cell.published.store(true, Ordering::SeqCst);
        let watcher = self
            .cell
            .watcher
            .lock()
            .expect("ticket watcher poisoned")
            .take();
        if let Some(callback) = watcher {
            callback();
        }
        true
    }

    /// Blocks until the engine resolves this request.
    pub fn wait(&self) -> ServeResult {
        let mut slot = self.cell.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.cell.cv.wait(slot).expect("ticket poisoned");
        }
    }

    /// Non-blocking probe; `None` while still in flight.
    pub fn try_take(&self) -> Option<ServeResult> {
        self.cell.slot.lock().expect("ticket poisoned").take()
    }

    /// Registers a completion callback, invoked exactly once when the
    /// ticket resolves (immediately, on the caller's thread, if it
    /// already has). After the callback runs, [`Ticket::try_take`] is
    /// guaranteed to return the result. This is how the event-driven
    /// front-end learns of completions without parking a thread per
    /// request: the callback just enqueues a done-marker and pokes the
    /// owning loop's waker, so it must be cheap and must not block.
    ///
    /// Only one watcher is supported; a second registration replaces the
    /// first (the server registers exactly one per ticket).
    pub fn watch(&self, callback: impl FnOnce() + Send + 'static) {
        let mut watcher = self.cell.watcher.lock().expect("ticket watcher poisoned");
        if self.cell.published.load(Ordering::SeqCst) {
            drop(watcher);
            callback();
        } else {
            *watcher = Some(Box::new(callback));
        }
    }
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Ticket(..)")
    }
}

/// Point-in-time snapshot of the engine's own counters (the same events
/// also feed the global `serve.*` metrics, which aggregate across
/// engines; these are per-engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests accepted into a queue.
    pub submitted: u64,
    /// Requests completed with a payload.
    pub completed: u64,
    /// Requests shed at admission (queue full / shutting down).
    pub shed: u64,
    /// Requests expired while queued.
    pub deadline_exceeded: u64,
    /// Requests failing validation or simulation.
    pub bad_requests: u64,
    /// Batched executions dispatched.
    pub batches: u64,
    /// Largest number of requests coalesced into one execution.
    pub largest_batch: u64,
    /// Tickets resolved to [`ServeError::WorkerCrashed`].
    pub crashed: u64,
    /// Requests answered from the analytical model (circuit open).
    pub degraded: u64,
    /// Crashed workers restarted by the supervisor.
    pub worker_restarts: u64,
    /// Circuit-breaker transitions to open (trips and probe re-opens).
    pub circuit_trips: u64,
    /// Requests hit by an injected pre-execution stall.
    pub injected_stalls: u64,
    /// Requests hit by an injected worker crash.
    pub injected_crashes: u64,
    /// Admissions shed as injected queue pressure.
    pub injected_pressure: u64,
}

impl EngineStats {
    /// Total tickets resolved, successfully or not. Excludes `shed`,
    /// which never received a ticket; includes `degraded`, which
    /// resolves at admission.
    pub fn responses(&self) -> u64 {
        self.completed + self.deadline_exceeded + self.bad_requests + self.crashed + self.degraded
    }
}

#[derive(Default)]
struct StatCells {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    bad_requests: AtomicU64,
    batches: AtomicU64,
    largest_batch: AtomicU64,
    crashed: AtomicU64,
    degraded: AtomicU64,
    worker_restarts: AtomicU64,
    circuit_trips: AtomicU64,
    injected_stalls: AtomicU64,
    injected_crashes: AtomicU64,
    injected_pressure: AtomicU64,
}

/// One registered robot: its model, the three kernel designs and their
/// compiled simulation programs, its bounded EDF queue, and its circuit
/// breaker.
struct RobotSlot {
    model: RobotModel,
    designs: HashMap<KernelKind, Arc<AcceleratorDesign>>,
    /// Compiled once at registration (through the pipeline's Programs
    /// stage, so every engine in the process shares one compile per
    /// design); workers execute these against their persistent scratch.
    programs: HashMap<KernelKind, Arc<CompiledProgram>>,
    queue: EdfQueue,
    breaker: CircuitBreaker,
}

/// A worker's persistent scratch arenas, one per kernel so a mixed
/// request stream never thrashes the program↔scratch binding (a rebind
/// reallocates; a bound arena executes allocation-free).
#[derive(Default)]
struct WorkerScratch {
    gradient: SimScratch,
    inverse_dynamics: SimScratch,
    kinematics: SimScratch,
}

impl WorkerScratch {
    fn for_kernel(&mut self, kind: KernelKind) -> &mut SimScratch {
        match kind {
            KernelKind::DynamicsGradient => &mut self.gradient,
            KernelKind::InverseDynamics => &mut self.inverse_dynamics,
            KernelKind::ForwardKinematics => &mut self.kinematics,
        }
    }
}

/// How a worker thread ended.
enum WorkerExit {
    /// Queue drained after close — the orderly way out.
    Drained,
    /// The worker crashed (injected or a real panic) and its in-flight
    /// tickets were resolved to `WorkerCrashed`; needs a restart.
    Crashed,
}

/// What `execute` did with a popped batch.
enum ExecOutcome {
    /// Every live ticket in the batch was resolved.
    Completed,
    /// An injected crash fired: the batch's unresolved tickets are the
    /// caller's to clean up, and the worker must die.
    InjectedCrash,
}

struct WorkerCell {
    robot: String,
    slot: Arc<RobotSlot>,
    handle: JoinHandle<WorkerExit>,
}

#[derive(Default)]
struct Supervision {
    workers: Vec<WorkerCell>,
    supervisor: Option<JoinHandle<()>>,
}

struct EngineInner {
    cfg: EngineConfig,
    plan: Option<FaultPlan>,
    pipeline: Pipeline,
    robots: RwLock<HashMap<String, Arc<RobotSlot>>>,
    supervision: Mutex<Supervision>,
    paused: AtomicBool,
    closed: AtomicBool,
    depth: AtomicU64,
    seq: AtomicU64,
    open_circuits: AtomicU64,
    stats: StatCells,
}

/// The accelerator-as-a-service runtime. Cheap to clone (a handle).
///
/// See the crate docs for the execution model; in short: registered
/// robots get kernel designs built through a warmed
/// [`roboshape_pipeline::Pipeline`] plus a supervised pool of worker
/// threads, and [`Engine::submit`] enqueues work under EDF with explicit
/// shedding, a per-robot circuit breaker, and optional deterministic
/// fault injection.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// An engine sharing the process-wide warmed artifact store (every
    /// engine in the process reuses cached graphs/schedules/plans).
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine::with_pipeline(cfg, Pipeline::with_store(Pipeline::global().store_handle()))
    }

    /// An engine over a caller-supplied pipeline (isolated stores in
    /// tests, or a pre-warmed one in benchmarks).
    pub fn with_pipeline(cfg: EngineConfig, pipeline: Pipeline) -> Engine {
        preregister_metrics();
        Engine {
            inner: Arc::new(EngineInner {
                paused: AtomicBool::new(cfg.start_paused),
                plan: cfg.chaos.map(FaultPlan::new),
                cfg,
                pipeline,
                robots: RwLock::new(HashMap::new()),
                supervision: Mutex::new(Supervision::default()),
                closed: AtomicBool::new(false),
                depth: AtomicU64::new(0),
                seq: AtomicU64::new(0),
                open_circuits: AtomicU64::new(0),
                stats: StatCells::default(),
            }),
        }
    }

    /// The engine's fault plan, when chaos is configured. The server
    /// front-end shares it to corrupt response frames on the wire.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.inner.plan
    }

    /// Registers `model` under `name`: builds its ∇FD, inverse-dynamics
    /// and forward-kinematics designs through the pipeline (topology-
    /// derived default knobs) and spawns its supervised worker pool.
    /// Re-registering an existing name is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Engine::shutdown`].
    pub fn register(&self, name: impl Into<String>, model: RobotModel) {
        let name = name.into();
        let inner = &self.inner;
        assert!(
            !inner.closed.load(Ordering::SeqCst),
            "register after shutdown"
        );
        let _span = obs::span(OBS_CATEGORY, "register");
        if inner
            .robots
            .read()
            .expect("robots poisoned")
            .contains_key(&name)
        {
            return;
        }
        let topo = model.topology().clone();
        let knobs = default_knobs(&inner.pipeline, &topo);
        let kernels = [
            KernelKind::DynamicsGradient,
            KernelKind::InverseDynamics,
            KernelKind::ForwardKinematics,
        ];
        let designs = kernels
            .into_iter()
            .map(|kernel| {
                (
                    kernel,
                    Arc::new(inner.pipeline.design(&topo, knobs, kernel)),
                )
            })
            .collect();
        let programs = kernels
            .into_iter()
            .map(|kernel| {
                // The FK kernel has no batched entry point; keep it on
                // the scalar backend so its cache entry is shared with
                // direct `try_simulate_kinematics` users.
                let backend = match kernel {
                    KernelKind::ForwardKinematics => BackendKind::Scalar,
                    _ => inner.cfg.backend,
                };
                (
                    kernel,
                    inner
                        .pipeline
                        .compiled_program_for(&topo, knobs, kernel, backend),
                )
            })
            .collect();
        let slot = Arc::new(RobotSlot {
            model,
            designs,
            programs,
            queue: EdfQueue::new(inner.cfg.queue_capacity),
            breaker: CircuitBreaker::new(inner.cfg.circuit_threshold, inner.cfg.circuit_cooldown),
        });
        let mut robots = inner.robots.write().expect("robots poisoned");
        if robots.contains_key(&name) {
            return; // lost a register race; the first registration wins
        }
        robots.insert(name.clone(), Arc::clone(&slot));
        drop(robots);
        let mut sup = inner.supervision.lock().expect("supervision poisoned");
        for _ in 0..inner.cfg.workers_per_robot.max(1) {
            sup.workers.push(spawn_worker(
                name.clone(),
                Arc::clone(&self.inner),
                Arc::clone(&slot),
            ));
        }
        if sup.supervisor.is_none() {
            let s_inner = Arc::clone(&self.inner);
            sup.supervisor = Some(std::thread::spawn(move || supervisor_loop(s_inner)));
        }
    }

    /// Names of all registered robots, sorted.
    pub fn robots(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .robots
            .read()
            .expect("robots poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// The design a robot's `kind` requests execute on — lets tests and
    /// benchmarks re-run the exact same accelerator directly and compare
    /// served responses bit-for-bit.
    pub fn design_for(&self, robot: &str, kind: KernelKind) -> Option<Arc<AcceleratorDesign>> {
        self.inner
            .robots
            .read()
            .expect("robots poisoned")
            .get(robot)
            .and_then(|slot| slot.designs.get(&kind).cloned())
    }

    /// Number of links of a registered robot.
    pub fn num_links(&self, robot: &str) -> Option<usize> {
        self.inner
            .robots
            .read()
            .expect("robots poisoned")
            .get(robot)
            .map(|slot| slot.model.num_links())
    }

    /// The circuit-breaker state of a registered robot.
    pub fn circuit_state(&self, robot: &str) -> Option<CircuitState> {
        self.inner
            .robots
            .read()
            .expect("robots poisoned")
            .get(robot)
            .map(|slot| slot.breaker.state())
    }

    /// A readiness snapshot: per-robot circuit state and live worker
    /// count, plus an overall `ready` verdict. This is what the TCP
    /// front-end serves for health probes.
    pub fn health(&self) -> HealthReport {
        // Lock order: robots before supervision (register does the same,
        // though never holding both).
        let robots = self.inner.robots.read().expect("robots poisoned");
        let sup = self.inner.supervision.lock().expect("supervision poisoned");
        let mut report: Vec<RobotHealth> = robots
            .iter()
            .map(|(name, slot)| RobotHealth {
                name: name.clone(),
                circuit: slot.breaker.state(),
                workers_alive: sup
                    .workers
                    .iter()
                    .filter(|w| w.robot == *name && !w.handle.is_finished())
                    .count() as u32,
            })
            .collect();
        drop(sup);
        drop(robots);
        report.sort_by(|a, b| a.name.cmp(&b.name));
        let ready =
            !self.inner.closed.load(Ordering::SeqCst) && report.iter().all(|r| r.workers_alive > 0);
        HealthReport {
            ready,
            robots: report,
        }
    }

    /// Submits a request. `Ok` means the [`Ticket`] will resolve exactly
    /// once (possibly to an error, possibly immediately — a degraded
    /// answer resolves before `submit` returns). `Err` means the request
    /// never entered a queue.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownRobot`] for an unregistered name,
    /// [`ServeError::BadRequest`] for malformed inputs (checked here, at
    /// admission), [`ServeError::Rejected`] when the robot's queue is
    /// full, synthetic queue pressure fires, or the engine is shutting
    /// down.
    pub fn submit(&self, req: ServeRequest) -> Result<Ticket, ServeError> {
        let inner = &self.inner;
        let _span = obs::span(OBS_CATEGORY, "submit");
        if inner.closed.load(Ordering::SeqCst) {
            inner.stats.shed.fetch_add(1, Ordering::Relaxed);
            obs::metrics().counter(SHED_METRIC).add(1);
            return Err(ServeError::Rejected {
                reason: "shutting down".into(),
            });
        }
        let slot = inner
            .robots
            .read()
            .expect("robots poisoned")
            .get(&req.robot)
            .cloned()
            .ok_or_else(|| ServeError::UnknownRobot(req.robot.clone()))?;
        if let Err(e) = validate(&slot.model, &req) {
            inner.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            obs::metrics().counter(BAD_REQUEST_METRIC).add(1);
            return Err(e);
        }
        // The admission sequence number is the key for every engine-side
        // fault decision, so the schedule is a pure function of the seed.
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        if let Some(plan) = inner.plan {
            if plan.fires(FaultSite::QueuePressure, seq) {
                inner
                    .stats
                    .injected_pressure
                    .fetch_add(1, Ordering::Relaxed);
                obs::metrics().counter(FAULT_PRESSURE_METRIC).add(1);
                inner.stats.shed.fetch_add(1, Ordering::Relaxed);
                obs::metrics().counter(SHED_METRIC).add(1);
                return Err(ServeError::Rejected {
                    reason: "chaos: injected queue pressure".into(),
                });
            }
        }
        let probe = match slot.breaker.admit() {
            Admission::Normal => false,
            Admission::Probe => true,
            Admission::Degrade => {
                inner.stats.degraded.fetch_add(1, Ordering::Relaxed);
                obs::metrics().counter(DEGRADED_METRIC).add(1);
                obs::metrics().counter(RESPONSES_METRIC).add(1);
                obs::metrics()
                    .histogram(LATENCY_METRIC, &LATENCY_BOUNDS_US)
                    .record(0);
                let ticket = Ticket::new();
                ticket.fulfill(Ok(degraded_payload(&slot, &req)));
                return Ok(ticket);
            }
        };
        let now = Instant::now();
        let deadline = req.deadline.or(inner.cfg.default_deadline);
        let pending = Pending {
            deadline: deadline.map(|d| now + d),
            seq,
            req,
            enqueued: now,
            ticket: Ticket::new(),
            probe,
        };
        let ticket = pending.ticket.clone();
        // Count the request *before* it becomes visible to workers — a
        // worker may pop and decrement the instant the push lands.
        let depth = inner.depth.fetch_add(1, Ordering::Relaxed) + 1;
        match slot.queue.try_push(pending) {
            Ok(()) => {
                inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
                obs::metrics().counter(REQUESTS_METRIC).add(1);
                obs::metrics().gauge(QUEUE_DEPTH_METRIC).set(depth as f64);
                Ok(ticket)
            }
            Err(_shed) => {
                inner.depth.fetch_sub(1, Ordering::Relaxed);
                inner.stats.shed.fetch_add(1, Ordering::Relaxed);
                obs::metrics().counter(SHED_METRIC).add(1);
                if probe {
                    // The probe never reached a worker; release its slot
                    // (counts as a failed probe — the pool gave no
                    // evidence of health).
                    record_circuit_failure(inner, &slot, true);
                }
                Err(ServeError::Rejected {
                    reason: "queue full".into(),
                })
            }
        }
    }

    /// Pauses workers: accepted requests queue but do not execute.
    pub fn pause(&self) {
        self.inner.paused.store(true, Ordering::SeqCst);
    }

    /// Resumes paused workers.
    pub fn resume(&self) {
        self.inner.paused.store(false, Ordering::SeqCst);
        for slot in self.inner.robots.read().expect("robots poisoned").values() {
            slot.queue.notify_all();
        }
    }

    /// Current per-engine counters.
    pub fn stats(&self) -> EngineStats {
        let s = &self.inner.stats;
        EngineStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            deadline_exceeded: s.deadline_exceeded.load(Ordering::Relaxed),
            bad_requests: s.bad_requests.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            largest_batch: s.largest_batch.load(Ordering::Relaxed),
            crashed: s.crashed.load(Ordering::Relaxed),
            degraded: s.degraded.load(Ordering::Relaxed),
            worker_restarts: s.worker_restarts.load(Ordering::Relaxed),
            circuit_trips: s.circuit_trips.load(Ordering::Relaxed),
            injected_stalls: s.injected_stalls.load(Ordering::Relaxed),
            injected_crashes: s.injected_crashes.load(Ordering::Relaxed),
            injected_pressure: s.injected_pressure.load(Ordering::Relaxed),
        }
    }

    /// Graceful drain: stops admitting, wakes paused workers, executes
    /// everything already queued (every accepted ticket resolves — the
    /// supervisor keeps restarting crashed workers until the drain
    /// completes), then joins the worker pool. Idempotent; later calls
    /// wait for the first one's drain.
    pub fn shutdown(&self) {
        let inner = &self.inner;
        inner.closed.store(true, Ordering::SeqCst);
        let _span = obs::span(OBS_CATEGORY, "shutdown");
        for slot in inner.robots.read().expect("robots poisoned").values() {
            slot.queue.notify_all();
        }
        let supervisor = inner
            .supervision
            .lock()
            .expect("supervision poisoned")
            .supervisor
            .take();
        match supervisor {
            Some(handle) => {
                let _ = handle.join();
            }
            None => {
                // Either nothing was ever registered, or a concurrent
                // shutdown owns the supervisor; wait for its drain.
                loop {
                    let drained = inner
                        .supervision
                        .lock()
                        .expect("supervision poisoned")
                        .workers
                        .is_empty();
                    if drained {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        obs::metrics().gauge(QUEUE_DEPTH_METRIC).set(0.0);
    }
}

/// Touch every resilience metric once so `--metrics` snapshots always
/// contain the full `serve.circuit.*` / `serve.fault.*` vocabulary, even
/// before (or without) any fault firing.
fn preregister_metrics() {
    let m = obs::metrics();
    for name in [
        CRASHED_METRIC,
        DEGRADED_METRIC,
        CIRCUIT_TRIPS_METRIC,
        CIRCUIT_CLOSES_METRIC,
        FAULT_STALL_METRIC,
        FAULT_CRASH_METRIC,
        FAULT_CORRUPT_METRIC,
        FAULT_PRESSURE_METRIC,
        WORKER_RESTARTS_METRIC,
        ROLLOUT_REQUESTS_METRIC,
        ROLLOUT_STEPS_METRIC,
        MIXED_REQUESTS_METRIC,
    ] {
        m.counter(name).add(0);
    }
    m.gauge(CIRCUIT_OPEN_METRIC).set(0.0);
}

fn spawn_worker(robot: String, inner: Arc<EngineInner>, slot: Arc<RobotSlot>) -> WorkerCell {
    let w_inner = Arc::clone(&inner);
    let w_slot = Arc::clone(&slot);
    WorkerCell {
        robot,
        slot,
        handle: std::thread::spawn(move || worker_loop(w_inner, w_slot)),
    }
}

/// Admission-time validation, so malformed requests fail fast with a
/// typed error instead of occupying queue space.
fn validate(model: &RobotModel, req: &ServeRequest) -> Result<(), ServeError> {
    let n = model.num_links();
    let check = |what: &str, values: &[f64]| -> Result<(), ServeError> {
        if values.len() != n {
            return Err(ServeError::BadRequest(format!(
                "{what} dimension mismatch: expected {n}, got {}",
                values.len()
            )));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(ServeError::BadRequest(format!(
                "{what} contains a non-finite value"
            )));
        }
        Ok(())
    };
    check("q", &req.q)?;
    if let WorkKind::Rollout { steps } = req.kind {
        if steps == 0 {
            return Err(ServeError::BadRequest(
                "rollout horizon must be at least 1 step".into(),
            ));
        }
    }
    match req.kind {
        WorkKind::Kernel(KernelKind::ForwardKinematics) => Ok(()),
        WorkKind::Kernel(KernelKind::DynamicsGradient | KernelKind::InverseDynamics)
        | WorkKind::Rollout { .. }
        | WorkKind::MixedPipeline => {
            check("qd", &req.qd)?;
            check("tau", &req.tau)
        }
    }
}

/// Topology-derived default knobs, mirroring the framework's Hybrid
/// heuristic: forward PEs track leaf depth, backward PEs track the
/// largest subtree, and the block size minimises the blocked-mat-mul
/// latency under the default model (computed through the pipeline, so
/// the plans land in the shared store pre-warmed for simulation).
fn default_knobs(pipeline: &Pipeline, topo: &Topology) -> AcceleratorKnobs {
    let m = topo.metrics();
    let n = m.total_links.max(1);
    let model = MatmulLatencyModel::default();
    let units = MatmulUnits::PerLink.resolve(n);
    let block = (1..=n)
        .min_by_key(|&b| {
            pipeline
                .block_plan(topo, PatternKind::InverseMass, 2 * n, b, units)
                .latency(&model)
        })
        .unwrap_or(n);
    AcceleratorKnobs::new(m.max_leaf_depth.max(1), m.max_descendants.max(1), block)
}

/// The degraded answer: the design's analytical latency estimate (clock
/// period × schedule makespan), no simulation involved. Trajectory
/// workloads scale the estimate across their chain: a rollout multiplies
/// the ∇FD estimate by its horizon, a mixed chain sums the three
/// kernels' estimates.
fn degraded_payload(slot: &RobotSlot, req: &ServeRequest) -> ServePayload {
    match req.kind {
        WorkKind::Kernel(kind) => {
            let design = &slot.designs[&kind];
            ServePayload::Degraded {
                kind,
                cycles: design.compute_cycles(),
                clock_ns: design.clock_ns(),
                latency_us: design.compute_latency_us(),
            }
        }
        WorkKind::Rollout { steps } => {
            let design = &slot.designs[&KernelKind::DynamicsGradient];
            ServePayload::Degraded {
                kind: KernelKind::DynamicsGradient,
                cycles: design.compute_cycles() * u64::from(steps),
                clock_ns: design.clock_ns(),
                latency_us: design.compute_latency_us() * f64::from(steps),
            }
        }
        WorkKind::MixedPipeline => {
            let grad = &slot.designs[&KernelKind::DynamicsGradient];
            let (cycles, latency_us) = slot.designs.values().fold((0u64, 0.0), |(c, l), design| {
                (c + design.compute_cycles(), l + design.compute_latency_us())
            });
            ServePayload::Degraded {
                kind: KernelKind::DynamicsGradient,
                cycles,
                clock_ns: grad.clock_ns(),
                latency_us,
            }
        }
    }
}

/// Records a breaker failure and keeps the trip counter and open-robot
/// gauge consistent with the resulting transition.
fn record_circuit_failure(inner: &EngineInner, slot: &RobotSlot, probe: bool) {
    match slot.breaker.on_failure(probe) {
        FailureOutcome::Tripped => {
            inner.stats.circuit_trips.fetch_add(1, Ordering::Relaxed);
            obs::metrics().counter(CIRCUIT_TRIPS_METRIC).add(1);
            let open = inner.open_circuits.fetch_add(1, Ordering::Relaxed) + 1;
            obs::metrics().gauge(CIRCUIT_OPEN_METRIC).set(open as f64);
        }
        FailureOutcome::Reopened => {
            // The gauge never dropped while half-open; count the trip
            // only.
            inner.stats.circuit_trips.fetch_add(1, Ordering::Relaxed);
            obs::metrics().counter(CIRCUIT_TRIPS_METRIC).add(1);
        }
        FailureOutcome::Unchanged => {}
    }
}

/// Records a breaker success; a probe success closing the circuit drops
/// the open-robot gauge and counts a close.
fn record_circuit_success(inner: &EngineInner, slot: &RobotSlot, probe: bool) {
    if slot.breaker.on_success(probe) {
        obs::metrics().counter(CIRCUIT_CLOSES_METRIC).add(1);
        let open = inner
            .open_circuits
            .fetch_sub(1, Ordering::Relaxed)
            .saturating_sub(1);
        obs::metrics().gauge(CIRCUIT_OPEN_METRIC).set(open as f64);
    }
}

/// One simulated accelerator instance: drains the robot's EDF queue
/// until shutdown, coalescing compatible ∇FD requests. Returns how it
/// ended so the supervisor knows whether to restart it.
fn worker_loop(inner: Arc<EngineInner>, slot: Arc<RobotSlot>) -> WorkerExit {
    // Persistent per-worker scratch arenas: after the first request of
    // each kernel, executions reuse the bound buffers (zero allocation in
    // the warm ∇FD path).
    let mut scratch = WorkerScratch::default();
    loop {
        let Some(batch) = slot
            .queue
            .next_batch(inner.cfg.max_batch, &inner.paused, &inner.closed)
        else {
            return WorkerExit::Drained;
        };
        let depth = inner
            .depth
            .fetch_sub(batch.len() as u64, Ordering::Relaxed)
            .saturating_sub(batch.len() as u64);
        obs::metrics().gauge(QUEUE_DEPTH_METRIC).set(depth as f64);
        // Keep enough of each request to clean up after a crash: the
        // ticket, its probe flag, and its enqueue time (for latency).
        let tickets: Vec<(Ticket, bool, Instant)> = batch
            .iter()
            .map(|p| (p.ticket.clone(), p.probe, p.enqueued))
            .collect();
        // A crash abandons this worker's scratch with the thread (a panic
        // mid-evaluation may leave consumed-on-read accumulators dirty);
        // the supervisor's replacement worker starts a fresh arena.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(&inner, &slot, &mut scratch, batch)
        }));
        let crashed = !matches!(outcome, Ok(ExecOutcome::Completed));
        if crashed {
            for (ticket, probe, enqueued) in tickets {
                if ticket.fulfill_if_unresolved(Err(ServeError::WorkerCrashed)) {
                    inner.stats.crashed.fetch_add(1, Ordering::Relaxed);
                    obs::metrics().counter(CRASHED_METRIC).add(1);
                    obs::metrics().counter(RESPONSES_METRIC).add(1);
                    let latency_us = enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    obs::metrics()
                        .histogram(LATENCY_METRIC, &LATENCY_BOUNDS_US)
                        .record(latency_us);
                    record_circuit_failure(&inner, &slot, probe);
                }
            }
            return WorkerExit::Crashed;
        }
    }
}

/// Joins finished workers, restarting crashed ones — **always**, even
/// during shutdown, so a crash mid-drain cannot strand queued tickets.
/// Progress is guaranteed: every crash consumes at least the batch it
/// popped (those tickets resolve to `WorkerCrashed`), and a closed
/// engine admits nothing new. Exits once the engine is closed and the
/// last worker has drained.
fn supervisor_loop(inner: Arc<EngineInner>) {
    loop {
        let closed = inner.closed.load(Ordering::SeqCst);
        {
            let mut sup = inner.supervision.lock().expect("supervision poisoned");
            let mut finished = Vec::new();
            let mut i = 0;
            while i < sup.workers.len() {
                if sup.workers[i].handle.is_finished() {
                    finished.push(sup.workers.remove(i));
                } else {
                    i += 1;
                }
            }
            for cell in finished {
                let crashed = match cell.handle.join() {
                    Ok(WorkerExit::Drained) => false,
                    // A real panic (join error) is treated exactly like
                    // an injected crash: restart.
                    Ok(WorkerExit::Crashed) | Err(_) => true,
                };
                if crashed {
                    inner.stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
                    obs::metrics().counter(WORKER_RESTARTS_METRIC).add(1);
                    let replacement =
                        spawn_worker(cell.robot, Arc::clone(&inner), Arc::clone(&cell.slot));
                    sup.workers.push(replacement);
                }
            }
            if closed && sup.workers.is_empty() {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn execute(
    inner: &EngineInner,
    slot: &RobotSlot,
    scratch: &mut WorkerScratch,
    batch: Vec<Pending>,
) -> ExecOutcome {
    let _span = obs::span(OBS_CATEGORY, "execute");
    let now = Instant::now();
    // Late requests are resolved without spending accelerator cycles.
    let (live, expired): (Vec<Pending>, Vec<Pending>) = batch
        .into_iter()
        .partition(|p| p.deadline.is_none_or(|d| d >= now));
    for p in expired {
        inner
            .stats
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
        obs::metrics().counter(DEADLINE_METRIC).add(1);
        if p.probe {
            // An expired probe is evidence the pool is too slow: release
            // the probe slot as a failure.
            record_circuit_failure(inner, slot, true);
        }
        respond(&p, Err(ServeError::DeadlineExceeded));
    }
    if live.is_empty() {
        return ExecOutcome::Completed;
    }

    // Chaos: stall first (bounded, deterministic per request), then
    // crash. Both are keyed on the admission sequence number, so the
    // schedule is identical across same-seed runs.
    if let Some(plan) = inner.plan {
        let mut stall = Duration::ZERO;
        let mut stalled = 0u64;
        for p in &live {
            if plan.fires(FaultSite::WorkerStall, p.seq) {
                stall += plan.stall_duration(p.seq);
                stalled += 1;
            }
        }
        if stalled > 0 {
            inner
                .stats
                .injected_stalls
                .fetch_add(stalled, Ordering::Relaxed);
            obs::metrics().counter(FAULT_STALL_METRIC).add(stalled);
            std::thread::sleep(stall);
        }
        let crash_marked = live
            .iter()
            .filter(|p| plan.fires(FaultSite::WorkerCrash, p.seq))
            .count() as u64;
        if crash_marked > 0 {
            inner
                .stats
                .injected_crashes
                .fetch_add(crash_marked, Ordering::Relaxed);
            obs::metrics().counter(FAULT_CRASH_METRIC).add(crash_marked);
            // Die before dispatch: the worker loop resolves the batch's
            // tickets to `WorkerCrashed` and the supervisor restarts us.
            return ExecOutcome::InjectedCrash;
        }
    }

    inner.stats.batches.fetch_add(1, Ordering::Relaxed);
    inner
        .stats
        .largest_batch
        .fetch_max(live.len() as u64, Ordering::Relaxed);
    obs::metrics().counter(BATCHES_METRIC).add(1);
    obs::metrics()
        .histogram(BATCH_SIZE_METRIC, &BATCH_SIZE_BOUNDS)
        .record(live.len() as u64);

    dispatch_batch(inner, slot, scratch, &live);
    ExecOutcome::Completed
}

/// The single submit/respond path every kernel shares: try the batched
/// program entry point when the kernel has one and the batch is
/// coalesced, otherwise (or on a failed batched call, so one bad input
/// cannot fail its neighbours) execute request by request. Backend
/// routing lives inside the program: a lane-backend program runs whole
/// groups of four through the SoA path and remainders through scalar,
/// bit-identically.
fn dispatch_batch(
    inner: &EngineInner,
    slot: &RobotSlot,
    scratch: &mut WorkerScratch,
    live: &[Pending],
) {
    let batched: Option<Result<Vec<ServePayload>, SimError>> = if live.len() > 1 {
        // The queue only coalesces [`WorkKind::is_coalescable`] requests,
        // so a multi-request batch is homogeneous single-step work.
        let WorkKind::Kernel(kind) = live[0].req.kind else {
            unreachable!("trajectory workloads pop alone");
        };
        let program = &slot.programs[&kind];
        let arena = scratch.for_kernel(kind);
        let inputs = || -> Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> {
            live.iter()
                .map(|p| (p.req.q.clone(), p.req.qd.clone(), p.req.tau.clone()))
                .collect()
        };
        match kind {
            KernelKind::DynamicsGradient => Some(
                program
                    .execute_batch(&slot.model, arena, &inputs())
                    .map(|(sims, _makespan)| sims.into_iter().map(gradient_payload).collect()),
            ),
            KernelKind::InverseDynamics => Some(
                program
                    .execute_inverse_dynamics_batch(&slot.model, arena, &inputs())
                    .map(|(taus, _makespan)| {
                        let cycles = program.stats().cycles;
                        taus.into_iter()
                            .map(|tau| ServePayload::InverseDynamics { tau, cycles })
                            .collect()
                    }),
            ),
            // FK has no batched entry point.
            KernelKind::ForwardKinematics => None,
        }
    } else {
        None
    };
    match batched {
        Some(Ok(payloads)) => {
            for (p, payload) in live.iter().zip(payloads) {
                finish_ok(inner, slot, p, payload);
            }
        }
        // One bad input fails a whole batched call; fall back to singles
        // so its neighbours still succeed. Kernels without a batched
        // path — and all trajectory workloads — land here directly.
        Some(Err(_)) | None => {
            for p in live {
                let result = execute_single(slot, scratch, p);
                finish(inner, slot, p, result);
            }
        }
    }
}

/// Executes one request through the per-kernel scalar entry points and
/// shapes its payload — the shared fallback of [`dispatch_batch`] and
/// the only path trajectory workloads take.
fn execute_single(
    slot: &RobotSlot,
    scratch: &mut WorkerScratch,
    p: &Pending,
) -> Result<ServePayload, SimError> {
    match p.req.kind {
        WorkKind::Kernel(kind) => {
            let program = &slot.programs[&kind];
            let arena = scratch.for_kernel(kind);
            match kind {
                KernelKind::DynamicsGradient => program
                    .execute_gradient(&slot.model, arena, &p.req.q, &p.req.qd, &p.req.tau)
                    .map(gradient_payload),
                KernelKind::InverseDynamics => program
                    .execute_inverse_dynamics(&slot.model, arena, &p.req.q, &p.req.qd, &p.req.tau)
                    .map(|(tau, stats)| ServePayload::InverseDynamics {
                        tau,
                        cycles: stats.cycles,
                    }),
                KernelKind::ForwardKinematics => program
                    .execute_kinematics(&slot.model, arena, &p.req.q)
                    .map(|(poses, stats)| kinematics_payload(&poses, stats.cycles)),
            }
        }
        WorkKind::Rollout { steps } => execute_rollout(slot, scratch, p, steps),
        WorkKind::MixedPipeline => execute_mixed(slot, scratch, p),
    }
}

/// Runs a whole rollout horizon worker-side: `steps` sequential ∇FD
/// evaluations through the robot's gradient program, feeding the state
/// forward with [`crate::workload::advance`] between steps. The payload
/// carries the final state plus the last step's gradients; cycles are
/// summed across the horizon.
fn execute_rollout(
    slot: &RobotSlot,
    scratch: &mut WorkerScratch,
    p: &Pending,
    steps: u32,
) -> Result<ServePayload, SimError> {
    let program = &slot.programs[&KernelKind::DynamicsGradient];
    let arena = scratch.for_kernel(KernelKind::DynamicsGradient);
    let mut q = p.req.q.clone();
    let mut qd = p.req.qd.clone();
    let mut cycles = 0u64;
    let mut last: Option<Simulation> = None;
    for _ in 0..steps {
        let sim = program.execute_gradient(&slot.model, arena, &q, &qd, &p.req.tau)?;
        cycles += sim.stats.cycles;
        crate::workload::advance(&slot.model, &mut q, &mut qd, &p.req.tau);
        last = Some(sim);
    }
    let sim = last.expect("steps >= 1 validated at admission");
    obs::metrics().counter(ROLLOUT_REQUESTS_METRIC).add(1);
    obs::metrics()
        .counter(ROLLOUT_STEPS_METRIC)
        .add(u64::from(steps));
    Ok(ServePayload::Rollout {
        steps,
        q_final: q,
        qd_final: qd,
        tau: sim.tau.clone(),
        dqdd_dq: flatten_mat(&sim.dqdd_dq),
        dqdd_dqd: flatten_mat(&sim.dqdd_dqd),
        cycles,
    })
}

/// Runs the ID→∇FD→FK chain on one state: inverse dynamics turns the
/// request's `q̈` into torques, those torques drive the gradient kernel,
/// and forward kinematics poses the input configuration. Cycles are
/// summed across the three kernels.
fn execute_mixed(
    slot: &RobotSlot,
    scratch: &mut WorkerScratch,
    p: &Pending,
) -> Result<ServePayload, SimError> {
    let id_program = &slot.programs[&KernelKind::InverseDynamics];
    let id_arena = scratch.for_kernel(KernelKind::InverseDynamics);
    let (tau, id_stats) = id_program.execute_inverse_dynamics(
        &slot.model,
        id_arena,
        &p.req.q,
        &p.req.qd,
        &p.req.tau,
    )?;

    let grad_program = &slot.programs[&KernelKind::DynamicsGradient];
    let grad_arena = scratch.for_kernel(KernelKind::DynamicsGradient);
    let sim = grad_program.execute_gradient(&slot.model, grad_arena, &p.req.q, &p.req.qd, &tau)?;

    let fk_program = &slot.programs[&KernelKind::ForwardKinematics];
    let fk_arena = scratch.for_kernel(KernelKind::ForwardKinematics);
    let (poses, fk_stats) = fk_program.execute_kinematics(&slot.model, fk_arena, &p.req.q)?;

    obs::metrics().counter(MIXED_REQUESTS_METRIC).add(1);
    let ServePayload::Kinematics { poses, .. } = kinematics_payload(&poses, fk_stats.cycles) else {
        unreachable!("kinematics_payload shapes a Kinematics payload");
    };
    Ok(ServePayload::Mixed {
        tau,
        dqdd_dq: flatten_mat(&sim.dqdd_dq),
        dqdd_dqd: flatten_mat(&sim.dqdd_dqd),
        poses,
        cycles: id_stats.cycles + sim.stats.cycles + fk_stats.cycles,
    })
}

/// Row-major flattening of an `n × n` matrix.
fn flatten_mat(m: &roboshape_linalg::DMat) -> Vec<f64> {
    let n = m.rows();
    let mut out = Vec::with_capacity(n * n);
    for r in 0..n {
        for c in 0..n {
            out.push(m[(r, c)]);
        }
    }
    out
}

fn kinematics_payload(poses: &[roboshape_spatial::Xform], cycles: u64) -> ServePayload {
    let mut flat = Vec::with_capacity(poses.len() * 12);
    for x in poses {
        let rot = x.rotation();
        for r in 0..3 {
            for c in 0..3 {
                flat.push(rot.get(r, c));
            }
        }
        let t = x.translation();
        flat.extend_from_slice(&[t.x, t.y, t.z]);
    }
    ServePayload::Kinematics {
        poses: flat,
        cycles,
    }
}

fn gradient_payload(sim: Simulation) -> ServePayload {
    ServePayload::Gradient {
        tau: sim.tau.clone(),
        dqdd_dq: flatten_mat(&sim.dqdd_dq),
        dqdd_dqd: flatten_mat(&sim.dqdd_dqd),
        cycles: sim.stats.cycles,
    }
}

fn finish_ok(inner: &EngineInner, slot: &RobotSlot, p: &Pending, payload: ServePayload) {
    inner.stats.completed.fetch_add(1, Ordering::Relaxed);
    record_circuit_success(inner, slot, p.probe);
    respond(p, Ok(payload));
}

fn finish(
    inner: &EngineInner,
    slot: &RobotSlot,
    p: &Pending,
    result: Result<ServePayload, SimError>,
) {
    match result {
        Ok(payload) => finish_ok(inner, slot, p, payload),
        Err(e) => {
            inner.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            obs::metrics().counter(BAD_REQUEST_METRIC).add(1);
            // A sim error still proves the worker is alive — record a
            // success so a half-open probe releases and the streak
            // resets.
            record_circuit_success(inner, slot, p.probe);
            respond(p, Err(e.into()));
        }
    }
}

fn respond(p: &Pending, result: ServeResult) {
    obs::metrics().counter(RESPONSES_METRIC).add(1);
    let latency_us = p.enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64;
    obs::metrics()
        .histogram(LATENCY_METRIC, &LATENCY_BOUNDS_US)
        .record(latency_us);
    p.ticket.fulfill(result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use roboshape_robots::{zoo, Zoo};
    use roboshape_sim::try_simulate;

    fn engine_with(robot: Zoo, cfg: EngineConfig) -> Engine {
        let engine = Engine::with_pipeline(cfg, Pipeline::new());
        engine.register(robot.name(), zoo(robot));
        engine
    }

    #[test]
    fn gradient_round_trip_matches_direct_simulation() {
        let engine = engine_with(Zoo::Iiwa, EngineConfig::default());
        let n = engine.num_links("iiwa").unwrap();
        let (q, qd, tau) = (vec![0.3; n], vec![0.1; n], vec![0.5; n]);
        let ticket = engine
            .submit(ServeRequest::gradient(
                "iiwa",
                q.clone(),
                qd.clone(),
                tau.clone(),
            ))
            .unwrap();
        let payload = ticket.wait().unwrap();

        let robot = zoo(Zoo::Iiwa);
        let pipeline = Pipeline::new();
        let knobs = default_knobs(&pipeline, robot.topology());
        let design = pipeline.design(robot.topology(), knobs, KernelKind::DynamicsGradient);
        let reference = try_simulate(&robot, &design, &q, &qd, &tau).unwrap();
        match payload {
            ServePayload::Gradient {
                tau: t,
                dqdd_dq,
                cycles,
                ..
            } => {
                assert_eq!(t, reference.tau);
                assert_eq!(dqdd_dq[0], reference.dqdd_dq[(0, 0)]);
                assert_eq!(cycles, reference.stats.cycles);
            }
            other => panic!("wrong payload: {other:?}"),
        }
        engine.shutdown();
        assert_eq!(engine.stats().completed, 1);
    }

    #[test]
    fn unknown_robot_and_bad_dimensions_are_typed_errors() {
        let engine = engine_with(Zoo::Iiwa, EngineConfig::default());
        let err = engine
            .submit(ServeRequest::kinematics("nonexistent", vec![0.0; 7]))
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownRobot(_)));

        let err = engine
            .submit(ServeRequest::gradient(
                "iiwa",
                vec![0.0; 3],
                vec![0.0; 7],
                vec![0.0; 7],
            ))
            .unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "{err}");
        assert!(!err.is_retryable(), "bad requests fail identically again");

        let err = engine
            .submit(ServeRequest::gradient(
                "iiwa",
                vec![f64::NAN; 7],
                vec![0.0; 7],
                vec![0.0; 7],
            ))
            .unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)));
        assert_eq!(engine.stats().bad_requests, 2);
        engine.shutdown();
    }

    #[test]
    fn full_queue_sheds_and_shutdown_drains_accepted_requests() {
        let engine = engine_with(
            Zoo::Iiwa,
            EngineConfig {
                queue_capacity: 2,
                workers_per_robot: 1,
                start_paused: true,
                ..EngineConfig::default()
            },
        );
        let req = || ServeRequest::kinematics("iiwa", vec![0.1; 7]);
        let t1 = engine.submit(req()).unwrap();
        let t2 = engine.submit(req()).unwrap();
        let err = engine.submit(req()).unwrap_err();
        assert!(matches!(err, ServeError::Rejected { .. }), "{err}");
        assert!(err.is_retryable());
        assert_eq!(engine.stats().shed, 1);

        // Graceful drain: both accepted tickets resolve even though the
        // engine was paused the whole time.
        engine.shutdown();
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        assert_eq!(engine.stats().completed, 2);

        let err = engine.submit(req()).unwrap_err();
        assert!(matches!(err, ServeError::Rejected { .. }));
    }

    #[test]
    fn expired_deadline_resolves_to_deadline_exceeded() {
        let engine = engine_with(
            Zoo::Iiwa,
            EngineConfig {
                workers_per_robot: 1,
                start_paused: true,
                ..EngineConfig::default()
            },
        );
        let ticket = engine
            .submit(
                ServeRequest::kinematics("iiwa", vec![0.1; 7])
                    .with_deadline(Duration::from_micros(1)),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        engine.resume();
        assert_eq!(ticket.wait().unwrap_err(), ServeError::DeadlineExceeded);
        assert_eq!(engine.stats().deadline_exceeded, 1);
        engine.shutdown();
    }

    #[test]
    fn default_deadline_budget_applies_to_deadline_free_requests() {
        let engine = engine_with(
            Zoo::Iiwa,
            EngineConfig {
                workers_per_robot: 1,
                start_paused: true,
                default_deadline: Some(Duration::from_micros(1)),
                ..EngineConfig::default()
            },
        );
        let ticket = engine
            .submit(ServeRequest::kinematics("iiwa", vec![0.1; 7]))
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        engine.resume();
        assert_eq!(ticket.wait().unwrap_err(), ServeError::DeadlineExceeded);
        engine.shutdown();
    }

    #[test]
    fn paused_engine_coalesces_gradient_requests_into_batches() {
        let engine = engine_with(
            Zoo::Iiwa,
            EngineConfig {
                workers_per_robot: 1,
                max_batch: 8,
                start_paused: true,
                ..EngineConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| {
                engine
                    .submit(ServeRequest::gradient(
                        "iiwa",
                        vec![0.1 * (i + 1) as f64; 7],
                        vec![0.0; 7],
                        vec![0.4; 7],
                    ))
                    .unwrap()
            })
            .collect();
        engine.resume();
        for t in &tickets {
            assert!(t.wait().is_ok());
        }
        let stats = engine.stats();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.largest_batch, 4, "all four coalesced: {stats:?}");
        assert_eq!(stats.batches, 1);
        engine.shutdown();
    }

    #[test]
    fn injected_crash_resolves_tickets_and_supervisor_restarts_worker() {
        let engine = engine_with(
            Zoo::Iiwa,
            EngineConfig {
                workers_per_robot: 1,
                max_batch: 1,
                circuit_threshold: 100, // keep the circuit out of the way
                chaos: Some(FaultConfig {
                    seed: 11,
                    stall: 0.0,
                    crash: 1.0,
                    corrupt: 0.0,
                    pressure: 0.0,
                }),
                ..EngineConfig::default()
            },
        );
        let ticket = engine
            .submit(ServeRequest::kinematics("iiwa", vec![0.1; 7]))
            .unwrap();
        assert_eq!(ticket.wait().unwrap_err(), ServeError::WorkerCrashed);
        let stats = engine.stats();
        assert_eq!(stats.crashed, 1);
        assert_eq!(stats.injected_crashes, 1);

        // The supervisor brings the worker back.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let health = engine.health();
            if health.robots[0].workers_alive == 1 && engine.stats().worker_restarts >= 1 {
                assert!(health.ready);
                break;
            }
            assert!(Instant::now() < deadline, "worker never restarted");
            std::thread::sleep(Duration::from_millis(2));
        }
        engine.shutdown();
    }

    #[test]
    fn circuit_trips_open_and_serves_degraded_answers() {
        let engine = engine_with(
            Zoo::Iiwa,
            EngineConfig {
                workers_per_robot: 1,
                max_batch: 1,
                circuit_threshold: 2,
                circuit_cooldown: Duration::from_millis(20),
                chaos: Some(FaultConfig {
                    seed: 5,
                    stall: 0.0,
                    crash: 1.0, // every executed request crashes
                    corrupt: 0.0,
                    pressure: 0.0,
                }),
                ..EngineConfig::default()
            },
        );
        let req = || ServeRequest::kinematics("iiwa", vec![0.1; 7]);
        // Two crashes trip the breaker.
        for _ in 0..2 {
            let t = engine.submit(req()).unwrap();
            assert_eq!(t.wait().unwrap_err(), ServeError::WorkerCrashed);
        }
        // The ticket resolves just before the worker records the breaker
        // failure; give that last store a moment.
        let deadline = Instant::now() + Duration::from_secs(5);
        while engine.circuit_state("iiwa") != Some(CircuitState::Open) {
            assert!(Instant::now() < deadline, "breaker never tripped");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(engine.stats().circuit_trips, 1);

        // While open, answers come from the analytical model instantly.
        let payload = engine.submit(req()).unwrap().wait().unwrap();
        match payload {
            ServePayload::Degraded {
                kind,
                cycles,
                clock_ns,
                latency_us,
            } => {
                let design = engine
                    .design_for("iiwa", KernelKind::ForwardKinematics)
                    .unwrap();
                assert_eq!(kind, KernelKind::ForwardKinematics);
                assert_eq!(cycles, design.compute_cycles());
                assert_eq!(clock_ns.to_bits(), design.clock_ns().to_bits());
                assert_eq!(latency_us.to_bits(), design.compute_latency_us().to_bits());
            }
            other => panic!("expected degraded answer, got {other:?}"),
        }
        assert!(engine.stats().degraded >= 1);
        engine.shutdown();
    }

    #[test]
    fn injected_queue_pressure_sheds_with_chaos_reason() {
        let engine = engine_with(
            Zoo::Iiwa,
            EngineConfig {
                chaos: Some(FaultConfig {
                    seed: 1,
                    stall: 0.0,
                    crash: 0.0,
                    corrupt: 0.0,
                    pressure: 1.0,
                }),
                ..EngineConfig::default()
            },
        );
        let err = engine
            .submit(ServeRequest::kinematics("iiwa", vec![0.1; 7]))
            .unwrap_err();
        match err {
            ServeError::Rejected { ref reason } => {
                assert!(reason.contains("chaos"), "{reason}")
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert!(err.is_retryable());
        assert_eq!(engine.stats().injected_pressure, 1);
        engine.shutdown();
    }

    #[test]
    fn same_seed_runs_produce_identical_stats() {
        // Pinned serial execution (one worker, batch size 1, sequential
        // submits) so timing cannot perturb batch composition; under
        // that, two same-seed runs must agree on every counter.
        let run = |seed: u64| -> EngineStats {
            let engine = engine_with(
                Zoo::Iiwa,
                EngineConfig {
                    workers_per_robot: 1,
                    max_batch: 1,
                    circuit_threshold: 1000, // keep breaker state out of it
                    chaos: Some(FaultConfig {
                        seed,
                        stall: 0.05,
                        crash: 0.2,
                        corrupt: 0.0,
                        pressure: 0.2,
                    }),
                    ..EngineConfig::default()
                },
            );
            for _ in 0..40 {
                if let Ok(t) = engine.submit(ServeRequest::kinematics("iiwa", vec![0.1; 7])) {
                    let _ = t.wait();
                }
            }
            engine.shutdown();
            engine.stats()
        };
        let a = run(99);
        let b = run(99);
        assert_eq!(a, b, "same seed, same fault schedule, same counters");
        assert!(a.injected_crashes > 0 && a.injected_pressure > 0, "{a:?}");
    }

    #[test]
    fn rollout_matches_sequential_single_steps() {
        let engine = engine_with(Zoo::Iiwa, EngineConfig::default());
        let n = engine.num_links("iiwa").unwrap();
        let q0 = vec![0.2; n];
        let qd0 = vec![0.05; n];
        let tau = vec![0.4; n];
        let steps = 3u32;

        let ticket = engine
            .submit(ServeRequest::rollout(
                "iiwa",
                q0.clone(),
                qd0.clone(),
                tau.clone(),
                steps,
            ))
            .unwrap();
        let payload = ticket.wait().unwrap();

        // Reference: N sequential single-step ∇FD calls with the state
        // advanced by the shared integrator between steps.
        let model = zoo(Zoo::Iiwa);
        let (mut q, mut qd) = (q0, qd0);
        let mut last = None;
        let mut want_cycles = 0u64;
        for _ in 0..steps {
            let t = engine
                .submit(ServeRequest::gradient(
                    "iiwa",
                    q.clone(),
                    qd.clone(),
                    tau.clone(),
                ))
                .unwrap();
            let step = t.wait().unwrap();
            crate::workload::advance(&model, &mut q, &mut qd, &tau);
            want_cycles += step.cycles();
            last = Some(step);
        }

        match (payload, last.unwrap()) {
            (
                ServePayload::Rollout {
                    steps: got_steps,
                    q_final,
                    qd_final,
                    tau: roll_tau,
                    dqdd_dq,
                    dqdd_dqd,
                    cycles,
                },
                ServePayload::Gradient {
                    tau: step_tau,
                    dqdd_dq: step_dq,
                    dqdd_dqd: step_dqd,
                    ..
                },
            ) => {
                assert_eq!(got_steps, steps);
                assert_eq!(cycles, want_cycles, "cycles sum over the horizon");
                for (a, b) in q_final.iter().zip(&q) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                for (a, b) in qd_final.iter().zip(&qd) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                assert_eq!(roll_tau, step_tau, "final-step torques bit-equal");
                assert_eq!(dqdd_dq, step_dq);
                assert_eq!(dqdd_dqd, step_dqd);
            }
            other => panic!("wrong payloads: {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn zero_step_rollout_is_a_bad_request() {
        let engine = engine_with(Zoo::Iiwa, EngineConfig::default());
        let err = engine
            .submit(ServeRequest::rollout(
                "iiwa",
                vec![0.1; 7],
                vec![0.0; 7],
                vec![0.0; 7],
                0,
            ))
            .unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "{err}");
        engine.shutdown();
    }

    #[test]
    fn mixed_pipeline_chains_id_gradient_and_fk() {
        let engine = engine_with(Zoo::Iiwa, EngineConfig::default());
        let n = engine.num_links("iiwa").unwrap();
        let (q, qd, qdd) = (vec![0.3; n], vec![0.1; n], vec![0.2; n]);
        let ticket = engine
            .submit(ServeRequest::mixed("iiwa", q.clone(), qd.clone(), qdd))
            .unwrap();
        match ticket.wait().unwrap() {
            ServePayload::Mixed {
                tau,
                dqdd_dq,
                dqdd_dqd,
                poses,
                cycles,
            } => {
                assert_eq!(tau.len(), n, "ID stage: one torque per joint");
                assert_eq!(dqdd_dq.len(), n * n);
                assert_eq!(dqdd_dqd.len(), n * n);
                assert!(!poses.is_empty() && poses.len() % n == 0, "FK poses");
                assert!(tau.iter().all(|v| v.is_finite()));
                // Three chained kernels must cost more than any one alone.
                let fk_only = engine
                    .submit(ServeRequest::kinematics("iiwa", q))
                    .unwrap()
                    .wait()
                    .unwrap();
                assert!(cycles > fk_only.cycles(), "chain sums stage cycles");
            }
            other => panic!("wrong payload: {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn rollout_deadline_covers_the_whole_horizon() {
        // A deadline that expires while the rollout is queued fails the
        // whole trajectory, not a prefix of it.
        let engine = engine_with(
            Zoo::Iiwa,
            EngineConfig {
                workers_per_robot: 1,
                start_paused: true,
                ..EngineConfig::default()
            },
        );
        let ticket = engine
            .submit(
                ServeRequest::rollout("iiwa", vec![0.1; 7], vec![0.0; 7], vec![0.2; 7], 8)
                    .with_deadline(Duration::from_micros(1)),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        engine.resume();
        assert_eq!(ticket.wait().unwrap_err(), ServeError::DeadlineExceeded);
        engine.shutdown();
    }

    #[test]
    fn health_reports_ready_with_live_workers() {
        let engine = engine_with(Zoo::Iiwa, EngineConfig::default());
        let health = engine.health();
        assert!(health.ready);
        assert_eq!(health.robots.len(), 1);
        assert_eq!(health.robots[0].name, "iiwa");
        assert_eq!(health.robots[0].circuit, CircuitState::Closed);
        assert_eq!(health.robots[0].workers_alive, 2);
        engine.shutdown();
        assert!(!engine.health().ready, "closed engine is not ready");
    }
}
