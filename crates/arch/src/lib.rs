//! The topology-templated accelerator architecture (paper Sec. 4.4, Fig. 8).
//!
//! RoboShape lowers the scheduled traversal patterns (pattern ①) and
//! blocked matrix plans (pattern ②) onto a *template architecture* with
//! three knobs: the forward- and backward-traversal PE counts and the
//! matrix block size. This crate models everything about that hardware
//! except its cycle-by-cycle behaviour (which lives in `roboshape-sim`):
//!
//! * [`AcceleratorKnobs`] — the generator knobs (`PEs_fwd`, `PEs_bwd`,
//!   `size_block`, mat-mul units);
//! * [`AcceleratorDesign`] — a fully-elaborated design point: schedules,
//!   blocked-mat-mul plan, storage sizing, resource estimates, clock
//!   period, and end-to-end latency;
//! * [`FullDesignModel`] — LUT/DSP cost of a complete design, solved
//!   *exactly* from the paper's Table 2 (three robots, three coefficients
//!   per resource — see DESIGN.md for the derivation);
//! * [`DseModel`] — the PE-level cost model used for the design-space
//!   studies of Figs. 12/13/15/16 (the paper necessarily uses a separate
//!   model there: the VC707 has fewer total LUTs than any Table 2 design);
//! * [`rc_design`] — the Robomorphic Computing baseline generator (naive
//!   per-link parallelism, no branching support), reproducing the paper's
//!   claim that RC cannot scale past the 7-link iiwa on the XCVU9P;
//! * [`Platform`] — FPGA resource envelopes (VCU118/XCVU9P, VC707) with
//!   the 80% usability threshold of Sec. 5.5;
//! * [`clock_period_ns`] — the synthesized-clock model (18–22 ns across
//!   the paper's three implementations, scaling with the forward schedule).

#![warn(missing_docs)]

mod design;
mod knobs;
mod platform;
pub mod power;
mod resources;
mod storage;

pub use design::{clock_period_ns, AcceleratorDesign, KernelKind};
pub use knobs::{AcceleratorKnobs, MatmulUnits};
pub use platform::Platform;
pub use power::{PowerModel, PowerReport};
pub use resources::{rc_resources, DseModel, FullDesignModel, Resources};
pub use storage::StorageReport;

/// Utilization threshold the paper applies when fitting designs onto a
/// platform (Sec. 5.5: "We set the threshold to 80% of total resources").
pub const UTILIZATION_THRESHOLD: f64 = 0.80;

/// RC baseline resources for an `n`-link robot (see [`rc_resources`]).
pub fn rc_design(n: usize) -> Resources {
    rc_resources(n)
}
