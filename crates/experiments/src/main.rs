//! The `experiments` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <name>      print one report (table1..table3, fig4..fig16, verify)
//! experiments all         print every report
//! experiments list        list available reports
//! ```

use roboshape_experiments::all_reports;
use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "list".to_string());
    let reports = match arg.as_str() {
        "all" => all_reports(),
        "list" => {
            println!("available reports:");
            for (name, _) in all_reports_names() {
                println!("  {name}");
            }
            println!("  all");
            return ExitCode::SUCCESS;
        }
        name => {
            let found: Vec<_> = all_reports().into_iter().filter(|(n, _)| *n == name).collect();
            if found.is_empty() {
                eprintln!("unknown report `{name}`; try `experiments list`");
                return ExitCode::FAILURE;
            }
            found
        }
    };
    for (_, body) in reports {
        println!("{body}");
    }
    ExitCode::SUCCESS
}

fn all_reports_names() -> Vec<(&'static str, ())> {
    [
        "table1", "table2", "table3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "ext_kernels", "ext_energy", "ext_soc",
        "ext_scaling", "ext_robomorphic", "ext_coschedule", "ext_ablation", "ext_batch", "ext_throughput", "verify",
    ]
    .iter()
    .map(|n| (*n, ()))
    .collect()
}
