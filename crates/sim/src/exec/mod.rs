//! Pluggable execution backends for [`CompiledProgram`].
//!
//! A compiled program is a substrate-neutral description of the work one
//! accelerator evaluation performs: a flat op array plus the host-side
//! forward-dynamics replication. *How* that work is driven through a CPU
//! is the backend's choice:
//!
//! * [`Scalar`] — the reference path: one evaluation at a time, every
//!   quantity a single `f64`. Batches are a plain loop.
//! * [`Lanes`] — the data-parallel path: four batch entries per
//!   operation, laid out structure-of-arrays so every scalar the single
//!   request path computes becomes one [`roboshape_linalg::f64x4`].
//!   Remainder entries (batch length not a multiple of four) and lane
//!   groups that fail (bad input, non-positive-definite mass matrix)
//!   fall back to the scalar path, reproducing its observable behaviour
//!   exactly.
//!
//! Both backends are **bit-exact**: lane `l` of a `Lanes` group performs
//! the same IEEE-754 operations in the same order as a scalar evaluation
//! of entry `l`, so results compare equal with `==`, not a tolerance
//! (property-tested against the interpreted oracle).
//!
//! Dispatch is static: [`CompiledProgram`] carries a [`BackendKind`] tag
//! assigned at compile time, and the `execute_batch*` entry points match
//! on it once per batch, calling the monomorphized backend — no `dyn`
//! dispatch on the hot path. The `sim.exec.{scalar,lanes}.evals`
//! counters record which backend actually executed each evaluation
//! (fallbacks count as scalar).

pub(crate) mod lanes;
pub(crate) mod scalar;

use crate::program::CompiledProgram;
use crate::{SimError, Simulation};
use roboshape_urdf::RobotModel;

/// One batch entry's inputs: `(q, q̇, τ)` for the dynamics-gradient
/// kernel, `(q, q̇, q̈)` for inverse dynamics.
pub type BatchInput = (Vec<f64>, Vec<f64>, Vec<f64>);

/// Which execution backend a [`CompiledProgram`] drives its ops with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// One evaluation at a time; every quantity a single `f64`.
    #[default]
    Scalar,
    /// Four batch entries per operation, structure-of-arrays; scalar
    /// fallback for remainders and failed lane groups.
    Lanes,
}

impl BackendKind {
    /// All backends, in canonical order.
    pub const ALL: [BackendKind; 2] = [BackendKind::Scalar, BackendKind::Lanes];

    /// Stable lowercase name (CLI values, cache keys, bench labels).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Lanes => "lanes",
        }
    }

    /// Parses a [`Self::name`] string (case-sensitive).
    pub fn parse(s: &str) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|b| b.name() == s)
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A strategy for driving a compiled program's ops through the CPU.
///
/// Implementations are compile-time specialized unit types; the program's
/// batch entry points select one with a single match on
/// [`CompiledProgram::backend`] and call the monomorphized functions
/// directly. The contract every backend must uphold:
///
/// * **Bit-exact results.** Entry `i`'s outputs are `f64`-identical to
///   `CompiledProgram::execute_gradient` (resp.
///   `execute_inverse_dynamics`) on entry `i`'s inputs alone.
/// * **Scalar-loop error behaviour.** On failure, the returned error is
///   the one the scalar per-entry loop would produce first, and exactly
///   the evaluations that loop would have completed before failing are
///   recorded in the metrics.
pub trait ExecBackend {
    /// The tag [`CompiledProgram::backend`] stores for this backend.
    const KIND: BackendKind;

    /// Runs one dynamics-gradient evaluation per batch entry, writing
    /// results into `outs` (same length as `inputs`).
    fn execute_gradient_batch(
        program: &CompiledProgram,
        model: &RobotModel,
        scratch: &mut crate::SimScratch,
        inputs: &[BatchInput],
        outs: &mut [Simulation],
    ) -> Result<(), SimError>;

    /// Runs one inverse-dynamics evaluation per batch entry, returning
    /// the per-entry joint torques.
    fn execute_inverse_dynamics_batch(
        program: &CompiledProgram,
        model: &RobotModel,
        scratch: &mut crate::SimScratch,
        inputs: &[BatchInput],
    ) -> Result<Vec<Vec<f64>>, SimError>;
}

/// The scalar reference backend (see [module docs](self)).
#[derive(Debug, Clone, Copy, Default)]
pub struct Scalar;

/// The four-wide SoA lane backend (see [module docs](self)).
#[derive(Debug, Clone, Copy, Default)]
pub struct Lanes;
