//! Forward-dynamics gradients (paper Alg. 1, ∇FD) — the accelerated kernel.
//!
//! Differentiating `τ = ID(q, q̇, q̈)` at fixed `τ` gives
//! `0 = ∂ID/∂x + M · ∂q̈/∂x`, hence
//!
//! ```text
//! ∂q̈/∂q  = −M⁻¹ · ∂τ/∂q |_(q̈ = FD(q, q̇, τ))
//! ∂q̈/∂q̇ = −M⁻¹ · ∂τ/∂q̇
//! ```
//!
//! — an RNEA, a ∇RNEA (pattern ①), and two `N×N` multiplications by `M⁻¹`
//! (pattern ②), exactly the three accelerator stages of the paper's Fig. 8.

use crate::Dynamics;
use roboshape_linalg::{Cholesky, DMat};

/// The outputs of a forward-dynamics gradient evaluation, exposing every
/// intermediate a caller (or the accelerator) might reuse.
#[derive(Debug, Clone, PartialEq)]
pub struct FdDerivatives {
    /// The joint accelerations `q̈ = FD(q, q̇, τ)`.
    pub qdd: Vec<f64>,
    /// The mass matrix `M(q)`.
    pub mass_matrix: DMat,
    /// Its inverse `M⁻¹` (shares `M`'s block sparsity for independent
    /// limbs).
    pub minv: DMat,
    /// `∂q̈/∂q`.
    pub dqdd_dq: DMat,
    /// `∂q̈/∂q̇`.
    pub dqdd_dqd: DMat,
}

impl Dynamics<'_> {
    /// Forward dynamics gradients (paper Alg. 1).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or a non-positive-definite mass matrix.
    pub fn fd_derivatives(&self, q: &[f64], qd: &[f64], tau: &[f64]) -> FdDerivatives {
        let qdd = self.forward_dynamics(q, qd, tau);
        let mass_matrix = self.mass_matrix(q);
        let minv = Cholesky::new(&mass_matrix)
            .expect("mass matrix must be positive-definite")
            .inverse();
        let id_grads = self.rnea_derivatives(q, qd, &qdd);
        let dqdd_dq = minv.mul_mat(&id_grads.dtau_dq).scaled(-1.0);
        let dqdd_dqd = minv.mul_mat(&id_grads.dtau_dqd).scaled(-1.0);
        FdDerivatives {
            qdd,
            mass_matrix,
            minv,
            dqdd_dq,
            dqdd_dqd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric;
    use roboshape_robots::{random_robot, zoo, RandomRobotConfig, Zoo};

    fn check(robot: &roboshape_urdf::RobotModel, seed: u64, tol: f64) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = robot.num_links();
        let q: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.2..1.2)).collect();
        let qd: Vec<f64> = (0..n).map(|_| rng.gen_range(-0.8..0.8)).collect();
        let tau: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.5..1.5)).collect();
        let dyn_ = Dynamics::new(robot);
        let g = dyn_.fd_derivatives(&q, &qd, &tau);
        let num_dq = numeric::fd_dqdd_dq(&dyn_, &q, &qd, &tau, 1e-6);
        let num_dqd = numeric::fd_dqdd_dqd(&dyn_, &q, &qd, &tau, 1e-6);
        let scale = 1.0 + num_dq.max_abs().max(num_dqd.max_abs());
        let e1 = g.dqdd_dq.max_abs_diff(&num_dq).unwrap();
        let e2 = g.dqdd_dqd.max_abs_diff(&num_dqd).unwrap();
        assert!(
            e1 < tol * scale,
            "{}: dqdd_dq error {e1} scale {scale}",
            robot.name()
        );
        assert!(
            e2 < tol * scale,
            "{}: dqdd_dqd error {e2} scale {scale}",
            robot.name()
        );
    }

    #[test]
    fn matches_finite_differences_on_implemented_robots() {
        for which in Zoo::IMPLEMENTED {
            check(&zoo(which), 42 + which as u64, 2e-4);
        }
    }

    #[test]
    fn matches_finite_differences_on_random_robots() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(555);
        for trial in 0..5 {
            let robot = random_robot(
                &mut rng,
                RandomRobotConfig {
                    links: 3 + trial,
                    branch_prob: 0.3,
                    new_limb_prob: 0.25,
                    allow_prismatic: false,
                },
            );
            check(&robot, 900 + trial as u64, 2e-4);
        }
    }

    #[test]
    fn minv_inherits_block_sparsity() {
        // HyQ's legs are independent: M and M⁻¹ are block-diagonal with the
        // same pattern (inverse of block-diagonal is block-diagonal,
        // paper Sec. 3.2).
        let robot = zoo(Zoo::Hyq);
        let n = robot.num_links();
        let g = Dynamics::new(&robot).fd_derivatives(&vec![0.2; n], &vec![0.1; n], &vec![0.5; n]);
        let topo = robot.topology();
        for i in 0..n {
            for j in 0..n {
                if !topo.supports(i, j) {
                    assert!(
                        g.minv[(i, j)].abs() < 1e-10,
                        "M⁻¹[{i}][{j}] = {} should be (numerically) zero",
                        g.minv[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn outputs_are_consistent() {
        let robot = zoo(Zoo::Iiwa);
        let n = robot.num_links();
        let dyn_ = Dynamics::new(&robot);
        let g = dyn_.fd_derivatives(&vec![0.3; n], &vec![0.0; n], &vec![1.0; n]);
        // M · M⁻¹ = I.
        let eye = roboshape_linalg::DMat::identity(n);
        assert!(g.mass_matrix.mul_mat(&g.minv).max_abs_diff(&eye).unwrap() < 1e-8);
        // qdd matches a direct forward-dynamics call.
        let qdd = dyn_.forward_dynamics(&vec![0.3; n], &vec![0.0; n], &vec![1.0; n]);
        for (direct, grad) in qdd.iter().zip(&g.qdd) {
            assert!((direct - grad).abs() < 1e-12);
        }
    }
}
